//! The checkpoint coordinator.
//!
//! DMTCP runs a coordinator process that user commands (or timers) poke to
//! trigger a checkpoint; every application process runs a checkpoint thread
//! that cooperates in a barrier-phased protocol. Here the coordinator is a
//! shared-state object and each rank holds a [`RankAgent`] that it polls at
//! every application *safe point* (a point with no incomplete nonblocking
//! requests, between two steps of the main loop).
//!
//! # The coordinated quiesce: gather, then rendezvous at the cut
//!
//! A request ("press the button") may be observed by different ranks at
//! *different* safe-point steps, and a naive "everyone stops at their next
//! safe point" deadlocks: a rank parked at step *s* has not yet executed
//! its step-*s* sends, so a peer blocked in a step-*s* receive never
//! reaches its own safe point. Instead the protocol runs in two phases:
//!
//! 1. **Gather** — at its first safe point after the request, each rank
//!    publishes its position and *keeps running* (nothing is withheld, so
//!    every rank makes progress to its next safe point). When the last
//!    rank has published, the **cut** is finalized as the maximum over all
//!    positions, counting ranks already released back into their step body
//!    as `position + 1` (the next step they can stop at).
//! 2. **Rendezvous** — each rank runs forward normally and enters the
//!    checkpoint barrier exactly at the cut step. A rank waiting at the
//!    cut has already executed every send below it (and the transport is
//!    eager), so ranks below the cut never need a waiting rank to make
//!    progress: the rendezvous always forms.
//!
//! Inside the rendezvous, phases proceed over a poisonable barrier:
//! counter exchange (publish per-peer send/receive counts, learn the
//! in-flight deficit), *drain* (performed by the MANA layer through the
//! MPI library itself), image submission, and a final barrier that latches
//! the consumed request epoch and the continue/stop decision.
//!
//! # Scaling to ≥ 512-rank worlds
//!
//! The coordinator is sharded in two ways so a 1024-rank rendezvous does
//! not serialize on single locks:
//!
//! * the rendezvous barrier is a **tree** ([`BarrierTopology`]) beyond 64
//!   ranks: ranks synchronize in groups of `radix`, group leaders meet at
//!   a root cell, and the release cascades back down, bounding every
//!   condvar herd by the radix instead of the world size;
//! * counter and image **staging is striped** over up to 64 independent
//!   locks (`ShardedSlots`), so per-rank submissions before a barrier
//!   contend on `n/64` peers rather than all of them.
//!
//! The safe-point contract this imposes on applications: consecutive safe
//! points on a rank must carry step numbers that increase by exactly one
//! (the unit-step structure every iterative MPI workload has), and all
//! ranks must share the same step structure. Violations are detected and
//! reported as [`CkptError::StepSkew`]/[`CkptError::Overrun`] rather than
//! deadlocking. A rank that finishes its program while a gather is in
//! progress aborts the round (a world image missing a rank is not
//! restorable); a rank that dies mid-rendezvous poisons the barrier so the
//! survivors unwind with [`CkptError::Poisoned`] instead of hanging.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use sanity::lockcheck::{self, TrackedCondvar, TrackedMutex};

use simnet::telemetry::{EventKind, Telemetry};

use crate::image::{ImageError, RankImage, WorldImage};
use crate::replica::{phase_code, BarrierPhase, ReplicaError, ReplicaGroup, ReplicaRecord};

/// Numeric code for a [`CkptMode`] in telemetry event payloads
/// (`0` = continue, `1` = stop).
fn mode_code(mode: CkptMode) -> u64 {
    match mode {
        CkptMode::Continue => 0,
        CkptMode::Stop => 1,
    }
}

/// A consumer of completed world images, attached to the coordinator with
/// [`Coordinator::attach_sink`]. The paradigm case is the asynchronous
/// delta-checkpoint store ([`crate::store::StoreWriter`]): the sink takes
/// ownership of the staged images inside the final rendezvous barrier so
/// the ranks resume computing while the I/O proceeds in the background.
///
/// `submit` must be fast (hand the image to a queue); it may block briefly
/// for backpressure but must never wait on the ranks it was called from.
pub trait ImageSink: Send + Sync {
    /// Take ownership of one completed epoch's world image.
    fn submit(&self, image: WorldImage) -> Result<(), ImageError>;
}

/// What the world should do after the checkpoint is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptMode {
    /// Keep running after the checkpoint (classic periodic checkpointing).
    Continue,
    /// Stop the world after the checkpoint (checkpoint-and-exit; the mode
    /// used for the paper's Fig. 6 cross-vendor restart experiment).
    Stop,
}

/// Why a checkpoint round failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// A participant died mid-round; the protocol barrier was poisoned so
    /// the survivors unwind instead of hanging.
    Poisoned,
    /// A rank's safe-point steps did not increase by exactly one while a
    /// round was active (the application violated the safe-point contract).
    StepSkew {
        /// The step of this rank's previous safe point in the round.
        last: u64,
        /// The step it presented now.
        got: u64,
    },
    /// A rank turned up at a safe point beyond the agreed cut. With the
    /// unit-step contract this cannot happen; seeing it means the contract
    /// was violated in a way the skew check could not catch.
    Overrun {
        /// The agreed cut step.
        cut: u64,
        /// The step the rank presented.
        got: u64,
    },
    /// The attached [`ImageSink`] (the asynchronous checkpoint store)
    /// failed to accept a completed epoch; every participant of the round
    /// observes the same error so the world unwinds consistently.
    Image(ImageError),
    /// The attached replica group could not commit the epoch record to a
    /// quorum: the round aborted atomically (the staged epoch was
    /// discarded, nothing became durable anywhere) and every participant
    /// observes the same error.
    Replica(ReplicaError),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Poisoned => write!(f, "checkpoint round poisoned: a participant died"),
            CkptError::StepSkew { last, got } => write!(
                f,
                "safe-point steps must increase by exactly 1 during a checkpoint round \
                 (previous {last}, got {got})"
            ),
            CkptError::Overrun { cut, got } => {
                write!(
                    f,
                    "rank overran the checkpoint cut (cut {cut}, reached {got})"
                )
            }
            CkptError::Image(e) => write!(f, "checkpoint image sink failed: {e}"),
            CkptError::Replica(e) => write!(f, "replica quorum commit failed: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<ImageError> for CkptError {
    fn from(e: ImageError) -> CkptError {
        CkptError::Image(e)
    }
}

impl From<ReplicaError> for CkptError {
    fn from(e: ReplicaError) -> CkptError {
        CkptError::Replica(e)
    }
}

/// How the rendezvous barrier synchronizes its participants.
///
/// The flat barrier is one counter + condvar: every arrival contends on
/// one lock and the release `notify_all`s every participant at once — a
/// thundering herd that grows linearly with world size. The tree barrier
/// synchronizes ranks in groups of `radix`; the last arriver of each
/// group carries the group's arrival to a root cell, and the release
/// cascades root → group leaders → group members, so each condvar wakes
/// at most `radix − 1` (or `⌈n/radix⌉ − 1`) sleepers and finish() latency
/// grows with the tree depth, not the world size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierTopology {
    /// One shared counter and condvar; every release wakes all N waiters.
    Flat,
    /// Two-level tree with groups of `radix` ranks (clamped to ≥ 2).
    Tree {
        /// Group size; also bounds every wakeup herd.
        radix: usize,
    },
}

impl BarrierTopology {
    /// Default group size for auto-selected tree barriers.
    pub const DEFAULT_RADIX: usize = 32;

    /// The topology [`Coordinator::new`] picks for a world of `nranks`:
    /// flat up to 64 ranks (where one lock is cheapest), a radix-32 tree
    /// beyond that.
    pub fn auto(nranks: usize) -> BarrierTopology {
        if nranks <= 64 {
            BarrierTopology::Flat
        } else {
            BarrierTopology::Tree {
                radix: Self::DEFAULT_RADIX,
            }
        }
    }
}

/// One poisonable arrive/release cell (a counter, a generation, and the
/// condvar its waiters sleep on). Building block for both barrier shapes.
struct WaitCell {
    state: TrackedMutex<CellState>,
    cv: TrackedCondvar,
}

struct CellState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl WaitCell {
    fn new() -> WaitCell {
        WaitCell {
            state: TrackedMutex::named(
                "coord.waitcell",
                CellState {
                    arrived: 0,
                    generation: 0,
                    poisoned: false,
                },
            ),
            cv: TrackedCondvar::new(),
        }
    }

    /// Arrive at the cell. The `n`-th arriver returns `Ok(true)` *without
    /// blocking and without releasing the others* — it must eventually
    /// call [`WaitCell::release`]; everyone else blocks until the release
    /// (returning `Ok(false)`) or a poison (`Err`).
    fn arrive_or_wait(&self, n: usize) -> Result<bool, CkptError> {
        let mut st = self.state.lock().expect("waitcell lock");
        if st.poisoned {
            return Err(CkptError::Poisoned);
        }
        st.arrived += 1;
        if st.arrived == n {
            return Ok(true);
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).expect("waitcell wait");
        }
        if st.poisoned {
            Err(CkptError::Poisoned)
        } else {
            Ok(false)
        }
    }

    /// Release the current generation: reset the arrival count, bump the
    /// generation, and wake every waiter. Called by the `Ok(true)` arriver.
    fn release(&self) {
        let mut st = self.state.lock().expect("waitcell lock");
        st.arrived = 0;
        st.generation += 1;
        self.cv.notify_all();
    }

    fn poison(&self) {
        let mut st = self.state.lock().expect("waitcell lock");
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// A reusable, poisonable rendezvous barrier over all ranks (std's
/// `Barrier` would hang waiters forever when a participant dies), in
/// either flat or tree shape.
struct SyncPoint {
    nranks: usize,
    shape: SyncShape,
}

enum SyncShape {
    Flat(WaitCell),
    Tree {
        radix: usize,
        /// One cell per group of `radix` consecutive ranks.
        groups: Vec<WaitCell>,
        /// The cell the group leaders synchronize on.
        root: WaitCell,
    },
}

impl SyncPoint {
    fn new(nranks: usize, topology: BarrierTopology) -> SyncPoint {
        let shape = match topology {
            BarrierTopology::Flat => SyncShape::Flat(WaitCell::new()),
            BarrierTopology::Tree { radix } => {
                let radix = radix.max(2);
                let ngroups = nranks.max(1).div_ceil(radix);
                SyncShape::Tree {
                    radix,
                    groups: (0..ngroups).map(|_| WaitCell::new()).collect(),
                    root: WaitCell::new(),
                }
            }
        };
        SyncPoint { nranks, shape }
    }

    /// Wait for every rank. Returns `true` on exactly one caller per
    /// generation (the leader).
    fn wait(&self, rank: usize) -> Result<bool, CkptError> {
        // The rank is about to park until the whole world arrives: any
        // tracked guard still held here starves every peer (the PR 6
        // deadlock class). Lockcheck reports it before we block.
        lockcheck::rendezvous_crossing("coord.rendezvous");
        match &self.shape {
            SyncShape::Flat(cell) => {
                let leader = cell.arrive_or_wait(self.nranks)?;
                if leader {
                    cell.release();
                }
                Ok(leader)
            }
            SyncShape::Tree {
                radix,
                groups,
                root,
            } => {
                let g = rank / radix;
                let gsize = (self.nranks - g * radix).min(*radix);
                if !groups[g].arrive_or_wait(gsize)? {
                    // Released by our group leader after the root completed.
                    return Ok(false);
                }
                // Group leader: carry this group's arrival to the root.
                // If the root poisons while we are there, our group members
                // are released by SyncPoint::poison, which poisons every
                // cell.
                let leader = root.arrive_or_wait(groups.len())?;
                if leader {
                    root.release();
                }
                groups[g].release();
                Ok(leader)
            }
        }
    }

    /// Permanently poison the barrier, releasing all waiters with
    /// [`CkptError::Poisoned`].
    fn poison(&self) {
        match &self.shape {
            SyncShape::Flat(cell) => cell.poison(),
            SyncShape::Tree { groups, root, .. } => {
                root.poison();
                for cell in groups {
                    cell.poison();
                }
            }
        }
    }
}

/// Per-rank staging slots sharded over independent locks, so a 1024-rank
/// world submitting counters or images at the rendezvous does not
/// serialize on a single mutex. Rank `r` lives in shard `r % nshards` at
/// slot `r / nshards`.
struct ShardedSlots<T> {
    nranks: usize,
    shards: Vec<TrackedMutex<Vec<Option<T>>>>,
}

impl<T> ShardedSlots<T> {
    /// At most 64 shards; never more than one slot-vector per rank.
    fn new(nranks: usize) -> ShardedSlots<T> {
        let nshards = nranks.clamp(1, 64);
        let shards = (0..nshards)
            .map(|s| {
                let slots = nranks / nshards + usize::from(s < nranks % nshards);
                TrackedMutex::named("coord.shard", (0..slots).map(|_| None).collect())
            })
            .collect();
        ShardedSlots { nranks, shards }
    }

    fn put(&self, rank: usize, value: T) {
        let shard = rank % self.shards.len();
        self.shards[shard].lock().expect("shard lock")[rank / self.shards.len()] = Some(value);
    }

    /// Visit every occupied slot in an unspecified order, one shard lock
    /// at a time. Returns how many slots were occupied.
    fn for_each(&self, mut f: impl FnMut(usize, &T)) -> usize {
        let mut seen = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            let slots = shard.lock().expect("shard lock");
            for (i, slot) in slots.iter().enumerate() {
                if let Some(v) = slot {
                    f(s + i * self.shards.len(), v);
                    seen += 1;
                }
            }
        }
        seen
    }

    /// Take every slot if all are occupied (returned in rank order);
    /// leaves the slots untouched otherwise.
    fn take_all_if_complete(&self) -> Option<Vec<T>> {
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock"))
            .collect();
        if guards.iter().any(|g| g.iter().any(Option::is_none)) {
            return None;
        }
        Some(
            (0..self.nranks)
                .map(|r| {
                    guards[r % self.shards.len()][r / self.shards.len()]
                        .take()
                        .expect("checked complete")
                })
                .collect(),
        )
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("shard lock").fill_with(|| None);
        }
    }
}

/// Where a checkpoint round stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No round in progress.
    Idle,
    /// Collecting each rank's first post-request position.
    Gather,
    /// The cut is agreed; ranks are running forward to it.
    Rendezvous {
        /// The step every rank checkpoints at.
        cut: u64,
        /// This round's epoch (becomes `completed_epoch` on success).
        epoch: u64,
        /// The continue/stop decision, latched when the cut was agreed.
        mode: CkptMode,
    },
    /// The round was abandoned (a rank finished its program first).
    Aborted {
        /// Requests up to this epoch are consumed by the abort.
        epoch: u64,
    },
}

/// One rank's drain bookkeeping: (sent_to, received_from) per-peer counts.
type DrainCounters = (Vec<u64>, Vec<u64>);

struct Round {
    phase: Phase,
    /// Per-rank last safe-point step seen in the current round.
    pos: Vec<Option<u64>>,
    /// Ranks that have resigned (finished their program or died).
    finished: usize,
    /// Ranks that have entered the rendezvous barrier this round. While
    /// zero, a resignation can still abort the round cleanly; once any
    /// rank is inside the barrier, a resignation must poison it.
    entered: usize,
    /// Set by the finish() leader; every participant latches it as its
    /// consumed epoch so no rank re-enters for requests this round served.
    consumed_epoch: u64,
}

struct Shared {
    nranks: usize,
    requested_epoch: AtomicU64,
    mode: TrackedMutex<CkptMode>,
    round: TrackedMutex<Round>,
    sync: SyncPoint,
    /// Per-rank (sent_to, received_from) matrices for the drain protocol.
    counters: ShardedSlots<DrainCounters>,
    images: ShardedSlots<RankImage>,
    completed_epoch: AtomicU64,
    completed_rounds: AtomicU64,
    /// Attached image consumer plus the vendor hint to stamp on forwarded
    /// world images, if any.
    sink: TrackedMutex<Option<(Arc<dyn ImageSink>, String)>>,
    /// First sink failure; latched so every participant of the failing
    /// round (and any later round) unwinds with the same error.
    sink_error: TrackedMutex<Option<ImageError>>,
    /// Attached coordinator replica group, if any. When present, every
    /// completed round's epoch record must reach a quorum of replica logs
    /// before the leader bumps `completed_epoch` or releases the barrier.
    replicas: TrackedMutex<Option<Arc<ReplicaGroup>>>,
    /// First quorum-commit failure; latched like `sink_error` so every
    /// participant of the aborted round unwinds with the same error.
    replica_error: TrackedMutex<Option<ReplicaError>>,
    /// Attached flight recorder, if any. All coordinator protocol events
    /// land on its dedicated coordinator lane, stamped with the latest
    /// virtual clock the ranks have reported through
    /// [`RankAgent::poll_at`].
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl Shared {
    /// Emit a protocol event on the coordinator lane, if a recorder is
    /// attached. Stamped with the most recently observed virtual clock.
    fn emit(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if let Some(tel) = self.telemetry.get() {
            tel.emit(tel.coord_lane(), kind, tel.observed_now(), a, b, c);
        }
    }
}

/// Coordinator handle (cheap to clone; shared across threads).
#[derive(Clone)]
pub struct Coordinator {
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Create a coordinator for a world of `nranks`, with the rendezvous
    /// barrier topology auto-selected by world size
    /// ([`BarrierTopology::auto`]: flat up to 64 ranks, a radix-32 tree
    /// beyond).
    pub fn new(nranks: usize) -> Coordinator {
        Coordinator::with_topology(nranks, BarrierTopology::auto(nranks))
    }

    /// Create a coordinator with an explicit barrier topology (the scale
    /// bench uses this to record the flat-vs-tree finish() latency curves).
    pub fn with_topology(nranks: usize, topology: BarrierTopology) -> Coordinator {
        Coordinator {
            shared: Arc::new(Shared {
                nranks,
                requested_epoch: AtomicU64::new(0),
                mode: TrackedMutex::named("coord.mode", CkptMode::Continue),
                round: TrackedMutex::named(
                    "coord.round",
                    Round {
                        phase: Phase::Idle,
                        pos: (0..nranks).map(|_| None).collect(),
                        finished: 0,
                        entered: 0,
                        consumed_epoch: 0,
                    },
                ),
                sync: SyncPoint::new(nranks, topology),
                counters: ShardedSlots::new(nranks),
                images: ShardedSlots::new(nranks),
                completed_epoch: AtomicU64::new(0),
                completed_rounds: AtomicU64::new(0),
                sink: TrackedMutex::named("coord.sink", None),
                sink_error: TrackedMutex::named("coord.sink_error", None),
                replicas: TrackedMutex::named("coord.replicas", None),
                replica_error: TrackedMutex::named("coord.replica_error", None),
                telemetry: OnceLock::new(),
            }),
        }
    }

    /// Attach an [`ImageSink`]: every completed round's world image is
    /// handed to it (stamped with `vendor_hint`) inside the final barrier
    /// instead of waiting in the staging area for
    /// [`Coordinator::take_world_image`]. This is how the asynchronous
    /// delta-checkpoint store takes ownership of images at the rendezvous
    /// so that ranks resume while the write proceeds.
    pub fn attach_sink(&self, sink: Arc<dyn ImageSink>, vendor_hint: &str) {
        *self.shared.sink.lock().expect("sink lock") = Some((sink, vendor_hint.to_string()));
    }

    /// Attach a [`ReplicaGroup`]: from now on every round's epoch record
    /// is quorum-committed to the replica logs *before* the round's epoch
    /// becomes observable or its image reaches the sink. If the quorum is
    /// unreachable the round aborts atomically — the staged images are
    /// discarded and every participant unwinds with
    /// [`CkptError::Replica`].
    pub fn attach_replicas(&self, group: Arc<ReplicaGroup>) {
        *self.shared.replicas.lock().expect("replicas lock") = Some(group);
    }

    /// The attached replica group, if any.
    pub fn replicas(&self) -> Option<Arc<ReplicaGroup>> {
        self.shared.replicas.lock().expect("replicas lock").clone()
    }

    /// Attach a flight recorder: every protocol transition (requests,
    /// scheduled cuts, gather finalization, rendezvous entries, barrier
    /// phases, epoch seals, resignations, poisons) is emitted as a
    /// structured event on the recorder's coordinator lane. First
    /// attachment wins; later calls are ignored.
    pub fn attach_telemetry(&self, tel: Arc<Telemetry>) {
        let _ = self.shared.telemetry.set(tel);
    }

    /// The attached flight recorder, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.shared.telemetry.get()
    }

    /// World size this coordinator serves.
    pub fn nranks(&self) -> usize {
        self.shared.nranks
    }

    /// Request a checkpoint ("press the button"). Ranks observe it at
    /// their next safe point and run the gather/rendezvous protocol.
    /// Returns the new epoch.
    pub fn request_checkpoint(&self, mode: CkptMode) -> u64 {
        *self.shared.mode.lock().expect("mode lock") = mode;
        let e = self.shared.requested_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.shared
            .emit(EventKind::CkptRequest, e, mode_code(mode), 0);
        e
    }

    /// Schedule a checkpoint at an exact safe-point step (the
    /// policy-driven path). Unlike [`Coordinator::request_checkpoint`],
    /// every rank runs the same policy and calls this at the *same* step,
    /// so no gather is needed: the cut is pinned to `step` exactly.
    /// Idempotent across ranks; the first caller opens the round.
    ///
    /// A rank must call this at its own `step` safe point *before* polling
    /// there. If an asynchronous round is already in progress the call
    /// degrades to a plain request, served by the pending round.
    pub fn schedule_checkpoint_at(&self, step: u64, mode: CkptMode) -> u64 {
        let mut round = self.shared.round.lock().expect("round lock");
        let epoch = {
            *self.shared.mode.lock().expect("mode lock") = mode;
            self.shared.requested_epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        if round.phase == Phase::Idle && round.finished == 0 {
            let round_no = self.shared.completed_rounds.load(Ordering::SeqCst) + 1;
            round.phase = Phase::Rendezvous {
                cut: step,
                epoch: round_no,
                mode,
            };
            round.pos.fill(None);
            self.shared
                .emit(EventKind::CkptScheduled, step, mode_code(mode), round_no);
        }
        epoch
    }

    /// The epoch of the most recently completed checkpoint (0 = none yet).
    pub fn completed_epoch(&self) -> u64 {
        self.shared.completed_epoch.load(Ordering::SeqCst)
    }

    /// How many checkpoint rounds have completed.
    pub fn completed_rounds(&self) -> u64 {
        self.shared.completed_rounds.load(Ordering::SeqCst)
    }

    /// Collect the world image of the last completed checkpoint, if every
    /// rank submitted one. Clears the staging area.
    pub fn take_world_image(&self, vendor_hint: &str) -> Option<WorldImage> {
        let ranks = self.shared.images.take_all_if_complete()?;
        Some(WorldImage::new(vendor_hint.to_string(), ranks))
    }

    /// Create the per-rank agent (called inside each rank's thread).
    pub fn agent(&self, rank: usize) -> RankAgent {
        assert!(rank < self.shared.nranks, "agent rank out of range");
        RankAgent {
            shared: self.shared.clone(),
            rank,
            seen_epoch: 0,
            in_protocol: false,
            resigned: false,
        }
    }
}

/// What [`RankAgent::poll`] decided at a safe point.
pub enum Poll<'a> {
    /// No checkpoint is pending; run on.
    None,
    /// A round is in progress but this rank's turn to checkpoint has not
    /// come; keep running to the next safe point.
    KeepRunning,
    /// This safe point is the cut: run the checkpoint protocol now.
    Enter(CkptSession<'a>),
}

/// A rank's connection to the coordinator (DMTCP's checkpoint thread).
pub struct RankAgent {
    shared: Arc<Shared>,
    rank: usize,
    seen_epoch: u64,
    /// True between entering the rendezvous barrier and finishing; used to
    /// poison the round if this rank dies inside it.
    in_protocol: bool,
    resigned: bool,
}

impl RankAgent {
    /// This agent's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether a checkpoint request exists that this rank has not yet
    /// served. Cheap; a single atomic load.
    #[inline]
    pub fn checkpoint_pending(&self) -> bool {
        self.shared.requested_epoch.load(Ordering::Relaxed) > self.seen_epoch
    }

    /// Like [`RankAgent::poll`], but first reports the rank's current
    /// virtual-clock position to the attached flight recorder, so that
    /// coordinator/store/tier/replica events emitted from clockless
    /// threads are stamped with a virtual time no earlier than the ranks
    /// that caused them. `vclock_ns` only ever advances the observed
    /// clock (a stale value is ignored).
    pub fn poll_at(&mut self, next_step: u64, vclock_ns: u64) -> Result<Poll<'_>, CkptError> {
        if let Some(tel) = self.shared.telemetry.get() {
            tel.observe_time(vclock_ns);
        }
        self.poll(next_step)
    }

    /// Poll at an application safe point. `next_step` is the step about to
    /// execute (and the resume position recorded if the checkpoint happens
    /// here). Must be called at every safe point; while a round is active,
    /// consecutive polls must present steps that increase by exactly one.
    pub fn poll(&mut self, next_step: u64) -> Result<Poll<'_>, CkptError> {
        if !self.checkpoint_pending() {
            return Ok(Poll::None);
        }
        let shared = self.shared.clone();
        let mut round = shared.round.lock().expect("round lock");
        match round.phase {
            Phase::Aborted { epoch } => {
                self.seen_epoch = self.seen_epoch.max(epoch);
                Ok(Poll::None)
            }
            _ if round.finished > 0 => {
                // A rank has left for good: no future round can complete.
                // Consume everything requested so far and run on.
                self.seen_epoch = shared.requested_epoch.load(Ordering::SeqCst);
                Ok(Poll::None)
            }
            Phase::Idle => {
                round.phase = Phase::Gather;
                round.pos.fill(None);
                round.pos[self.rank] = Some(next_step);
                self.gather_or_run(&mut round, next_step)
            }
            Phase::Gather => {
                self.check_step(&round, next_step)?;
                round.pos[self.rank] = Some(next_step);
                self.gather_or_run(&mut round, next_step)
            }
            Phase::Rendezvous { cut, epoch, mode } => {
                self.check_step(&round, next_step)?;
                round.pos[self.rank] = Some(next_step);
                self.at_rendezvous(&mut round, next_step, cut, epoch, mode)
            }
        }
    }

    /// Validate the unit-step contract while a round is active.
    fn check_step(&self, round: &Round, next_step: u64) -> Result<(), CkptError> {
        if let Some(last) = round.pos[self.rank] {
            if next_step != last + 1 {
                return Err(CkptError::StepSkew {
                    last,
                    got: next_step,
                });
            }
        }
        Ok(())
    }

    /// In the gather phase with our position recorded: finalize the cut if
    /// we are the last to publish, then decide our own fate.
    fn gather_or_run(&mut self, round: &mut Round, next_step: u64) -> Result<Poll<'_>, CkptError> {
        if round.pos.iter().any(Option::is_none) {
            // Others still unheard from; keep running (nothing is
            // withheld, so they all reach a safe point).
            return Ok(Poll::KeepRunning);
        }
        // Everyone has published: finalize. A rank other than us may be
        // anywhere inside its current step body, so the earliest step it
        // can still stop at is its last published position + 1.
        let cut = round
            .pos
            .iter()
            .enumerate()
            .map(|(r, p)| p.expect("all published") + u64::from(r != self.rank))
            .max()
            .expect("nranks > 0");
        let epoch = self.shared.completed_rounds.load(Ordering::SeqCst) + 1;
        let mode = *self.shared.mode.lock().expect("mode lock");
        self.shared
            .emit(EventKind::CutFinalized, self.rank as u64, cut, epoch);
        round.phase = Phase::Rendezvous { cut, epoch, mode };
        self.at_rendezvous(round, next_step, cut, epoch, mode)
    }

    /// A round is committed to `cut`; decide what this rank does at
    /// `next_step`.
    fn at_rendezvous(
        &mut self,
        round: &mut Round,
        next_step: u64,
        cut: u64,
        epoch: u64,
        mode: CkptMode,
    ) -> Result<Poll<'_>, CkptError> {
        if next_step < cut {
            Ok(Poll::KeepRunning)
        } else if next_step == cut {
            self.shared
                .emit(EventKind::RendezvousEnter, self.rank as u64, cut, epoch);
            round.entered += 1;
            self.in_protocol = true;
            Ok(Poll::Enter(CkptSession {
                agent: self,
                cut,
                epoch,
                mode,
            }))
        } else {
            Err(CkptError::Overrun {
                cut,
                got: next_step,
            })
        }
    }

    /// Declare that this rank will reach no further safe points (its
    /// program completed or it is unwinding from a failure). Idempotent;
    /// also invoked on drop. A gather in progress is aborted; a rendezvous
    /// in progress is poisoned so waiting peers unwind.
    pub fn resign(&mut self) {
        if self.resigned {
            return;
        }
        self.resigned = true;
        let mut round = self.shared.round.lock().expect("round lock");
        round.finished += 1;
        let mut mid_round_death = false;
        match round.phase {
            Phase::Gather => {
                round.phase = Phase::Aborted {
                    epoch: self.shared.requested_epoch.load(Ordering::SeqCst),
                };
                mid_round_death = true;
            }
            Phase::Rendezvous { epoch, .. } => {
                if round.entered > 0 {
                    // Peers are inside the barrier; without us it can
                    // never fill. Release them with an error.
                    self.shared.emit(EventKind::Poison, epoch, 0, 0);
                    self.shared.sync.poison();
                } else {
                    // Nobody is committed past recall yet (e.g. the cut
                    // landed beyond the program's final safe point):
                    // abandon the round cleanly.
                    round.phase = Phase::Aborted {
                        epoch: self.shared.requested_epoch.load(Ordering::SeqCst),
                    };
                }
                mid_round_death = true;
            }
            Phase::Idle | Phase::Aborted { .. } => {}
        }
        drop(round);
        self.shared.emit(
            EventKind::Resign,
            self.rank as u64,
            self.shared.requested_epoch.load(Ordering::SeqCst),
            mid_round_death as u64,
        );
        if mid_round_death {
            // A rank dying mid-round is a membership change the replicated
            // log should remember. Best-effort: the round is already
            // aborted/poisoned either way, and a failed membership commit
            // must not mask the primary failure the world is unwinding
            // from.
            let replicas = self.shared.replicas.lock().expect("replicas lock").clone();
            if let Some(group) = replicas {
                let _ = group.commit(ReplicaRecord::Membership {
                    rank: self.rank as u64,
                    alive: false,
                });
            }
        }
    }
}

impl Drop for RankAgent {
    fn drop(&mut self) {
        self.resign();
    }
}

/// An in-progress checkpoint on one rank (the rendezvous was reached).
pub struct CkptSession<'a> {
    agent: &'a mut RankAgent,
    cut: u64,
    epoch: u64,
    mode: CkptMode,
}

impl CkptSession<'_> {
    /// The epoch being checkpointed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The agreed cut step (every rank's resume position).
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// This participant's rank.
    pub fn rank(&self) -> usize {
        self.agent.rank
    }

    /// Publish this rank's per-peer counters and learn how many messages
    /// are still in flight *towards* this rank from each peer:
    /// `pending_from[j] = sent_to[j][me] − received_from[me][j]`.
    pub fn exchange_counters(
        &self,
        sent_to: &[u64],
        received_from: &[u64],
    ) -> Result<Vec<u64>, CkptError> {
        let shared = &self.agent.shared;
        shared
            .counters
            .put(self.agent.rank, (sent_to.to_vec(), received_from.to_vec()));
        shared.sync.wait(self.agent.rank)?;
        let mut pending = vec![0u64; shared.nranks];
        let me = self.agent.rank;
        let published = shared.counters.for_each(|j, (sent, _)| {
            pending[j] = sent[me].saturating_sub(received_from[j]);
        });
        debug_assert_eq!(published, shared.nranks, "all ranks published");
        Ok(pending)
    }

    /// Submit this rank's serialized image.
    pub fn submit_image(&self, image: RankImage) {
        self.agent.shared.images.put(self.agent.rank, image);
    }

    /// Final barrier: the checkpoint is globally complete. Latches the
    /// consumed request epoch on every participant and returns the mode
    /// (continue or stop) agreed when the cut was finalized.
    pub fn finish(self) -> Result<CkptMode, CkptError> {
        let shared = self.agent.shared.clone();
        let leader = shared.sync.wait(self.agent.rank)?;
        if leader {
            // Only now is every participant done reading the exchanged
            // counter matrices; clearing any earlier races peers still
            // computing their drain deficits.
            shared.counters.clear();
            // Every participant of the previous round observed its verdict
            // before this round's rendezvous could form, so an aborted
            // round's latched error is stale by now: a fresh round starts
            // with a clean one. (`sink_error`, by contrast, is terminal.)
            *shared.replica_error.lock().expect("replica error lock") = None;
            // Quorum-commit the epoch record before anything about this
            // round becomes observable. The scripted fault hooks model a
            // coordinator leader dying at each barrier phase; the commit
            // itself rides out leader death via election and retry, and
            // only an unreachable quorum aborts the round.
            let replicas = shared.replicas.lock().expect("replicas lock").clone();
            let mut commit_ok = true;
            if let Some(group) = &replicas {
                // Forward the latest rank-reported virtual clock to the
                // replica group so its election/accept events sort after
                // the rendezvous that triggered them.
                if let Some(tel) = shared.telemetry.get() {
                    group.stamp_vnow(tel.observed_now());
                }
                let phase = |p: BarrierPhase| {
                    shared.emit(EventKind::BarrierPhase, phase_code(p), self.epoch, self.cut);
                    group.notify_phase(p);
                };
                phase(BarrierPhase::Arrive);
                let vendor = shared
                    .sink
                    .lock()
                    .expect("sink lock")
                    .as_ref()
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                let record = ReplicaRecord::EpochSeal {
                    epoch: self.epoch,
                    cut: self.cut,
                    stop: self.mode == CkptMode::Stop,
                    vendor,
                };
                phase(BarrierPhase::PreSeal);
                match group.commit(record) {
                    Ok(_) => phase(BarrierPhase::PostSeal),
                    Err(e) => {
                        *shared.replica_error.lock().expect("replica error lock") = Some(e);
                        commit_ok = false;
                    }
                }
            }
            // All participants are parked between the two barriers, and
            // every participant's own requests happened before it entered:
            // reading the request counter here absorbs every request this
            // round can possibly serve.
            let mut round = shared.round.lock().expect("round lock");
            round.consumed_epoch = shared.requested_epoch.load(Ordering::SeqCst);
            round.phase = Phase::Idle;
            round.pos.fill(None);
            round.entered = 0;
            if commit_ok {
                shared.completed_epoch.store(self.epoch, Ordering::SeqCst);
                shared.completed_rounds.fetch_add(1, Ordering::SeqCst);
                shared.emit(
                    EventKind::EpochCommit,
                    self.epoch,
                    self.cut,
                    (self.mode == CkptMode::Stop) as u64,
                );
            }
            drop(round);
            if commit_ok {
                // Hand the completed epoch to the attached sink (the async
                // store). Every rank has submitted its image before reaching
                // the barrier above, so the staging area is complete; the sink
                // takes ownership and the ranks resume while I/O proceeds.
                let sink = shared.sink.lock().expect("sink lock").clone();
                if let Some((sink, vendor_hint)) = sink {
                    if let Some(ranks) = shared.images.take_all_if_complete() {
                        if let Err(e) = sink.submit(WorldImage::new(vendor_hint, ranks)) {
                            shared.emit(EventKind::SinkError, self.epoch, 0, 0);
                            if let Some(tel) = shared.telemetry.get() {
                                tel.note_incident();
                            }
                            *shared.sink_error.lock().expect("sink error lock") = Some(e);
                        }
                    }
                }
            } else {
                // Atomic abort: the quorum never accepted this epoch, so
                // nothing of it may survive — drop the staged images and
                // leave completed_epoch untouched. Restart replays only
                // quorum-committed state.
                shared.images.clear();
            }
            if let Some(group) = &replicas {
                shared.emit(
                    EventKind::BarrierPhase,
                    phase_code(BarrierPhase::Release),
                    self.epoch,
                    self.cut,
                );
                group.notify_phase(BarrierPhase::Release);
            }
        }
        shared.sync.wait(self.agent.rank)?;
        if let Some(e) = shared
            .replica_error
            .lock()
            .expect("replica error lock")
            .clone()
        {
            // The round aborted atomically: no epoch bump, no sink submit,
            // no staged images. Every participant unwinds with one error —
            // but the round itself is over and its request consumed, so
            // the agent must not re-enter it on the next poll. (A later
            // round can commit once the quorum is restored.)
            self.agent.seen_epoch = shared.round.lock().expect("round lock").consumed_epoch;
            self.agent.in_protocol = false;
            return Err(CkptError::Replica(e));
        }
        if let Some(e) = shared.sink_error.lock().expect("sink error lock").clone() {
            // Observed by every participant after the final barrier: the
            // checkpoint was taken but could not be persisted, and the
            // world unwinds with one consistent error.
            return Err(CkptError::Image(e));
        }
        self.agent.seen_epoch = shared.round.lock().expect("round lock").consumed_epoch;
        self.agent.in_protocol = false;
        Ok(self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one rank's side of the protocol: poll at increasing steps
    /// from `start` until a session opens, run it, and return
    /// (cut, mode, steps_polled).
    pub(super) fn run_to_checkpoint(
        agent: &mut RankAgent,
        start: u64,
        sent: &[u64],
        rcvd: &[u64],
    ) -> (u64, CkptMode, u64) {
        let mut step = start;
        loop {
            match agent.poll(step).expect("poll") {
                Poll::None | Poll::KeepRunning => {
                    step += 1;
                    std::thread::yield_now();
                }
                Poll::Enter(session) => {
                    let cut = session.cut();
                    let pending = session.exchange_counters(sent, rcvd).expect("counters");
                    assert!(pending.iter().all(|&p| p == 0), "no traffic in these tests");
                    let rank = session.rank();
                    let n = sent.len();
                    session.submit_image(RankImage::new(rank, n, session.epoch()));
                    let mode = session.finish().expect("finish");
                    return (cut, mode, step - start);
                }
            }
        }
    }

    #[test]
    fn full_protocol_over_threads() {
        let n = 4;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Continue);
        let cuts = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                let cuts = &cuts;
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    assert!(agent.checkpoint_pending());
                    let zeros = vec![0u64; n];
                    let (cut, mode, _) = run_to_checkpoint(&mut agent, 0, &zeros, &zeros);
                    assert_eq!(mode, CkptMode::Continue);
                    assert!(!agent.checkpoint_pending());
                    cuts.lock().unwrap().push(cut);
                });
            }
        });
        let cuts = cuts.into_inner().unwrap();
        assert_eq!(cuts.len(), n);
        assert!(cuts.iter().all(|&c| c == cuts[0]), "uniform cut: {cuts:?}");
        assert_eq!(coord.completed_epoch(), 1);
        assert_eq!(coord.completed_rounds(), 1);
        let world = coord.take_world_image("test").expect("all images staged");
        assert_eq!(world.nranks(), n);
        // Taking again yields nothing: staging was drained.
        assert!(coord.take_world_image("test").is_none());
    }

    #[test]
    fn tree_barrier_full_protocol_uniform_cut() {
        // Odd world size with a tiny radix: groups of 3 with a ragged
        // tail, so leader election, cascade release, and the last short
        // group are all exercised over several back-to-back rounds (the
        // barrier cells must be reusable generation after generation).
        let n = 10;
        let coord = Coordinator::with_topology(n, BarrierTopology::Tree { radix: 3 });
        let cuts = std::sync::Mutex::new(vec![Vec::new(); n]);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                let cuts = &cuts;
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0u64;
                    while step < 120 {
                        // Rank 0 presses the button three times, spaced so
                        // each press lands outside any open round.
                        if rank == 0 && (step == 5 || step == 45 || step == 85) {
                            coord.request_checkpoint(CkptMode::Continue);
                        }
                        match agent.poll(step).expect("poll") {
                            Poll::None | Poll::KeepRunning => {
                                step += 1;
                                std::thread::yield_now();
                            }
                            Poll::Enter(session) => {
                                let cut = session.cut();
                                assert_eq!(cut, step, "entered away from the cut");
                                session.exchange_counters(&zeros, &zeros).expect("exchange");
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("finish");
                                cuts.lock().unwrap()[rank].push(cut);
                                step += 1;
                            }
                        }
                    }
                });
            }
        });
        let cuts = cuts.into_inner().unwrap();
        for per_rank in &cuts {
            assert_eq!(per_rank.len(), 3, "three rounds everywhere: {cuts:?}");
            assert_eq!(per_rank, &cuts[0], "uniform cuts: {cuts:?}");
        }
        assert_eq!(coord.completed_rounds(), 3);
        let world = coord.take_world_image("tree").expect("staged");
        assert_eq!(world.nranks(), n);
    }

    #[test]
    fn tree_barrier_death_mid_rendezvous_poisons_all_groups() {
        // A resignation inside the rendezvous must release waiters in
        // *every* tree group, not only the victim's.
        let n = 6;
        let coord = Coordinator::with_topology(n, BarrierTopology::Tree { radix: 2 });
        coord.request_checkpoint(CkptMode::Continue);
        let committed = std::sync::Barrier::new(n);
        std::thread::scope(|s| {
            for rank in 0..n - 1 {
                let coord = coord.clone();
                let committed = &committed;
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let mut step = 0;
                    let session = loop {
                        match agent.poll(step).expect("poll") {
                            Poll::Enter(session) => break session,
                            _ => {
                                step += 1;
                                std::thread::yield_now();
                            }
                        }
                    };
                    committed.wait();
                    let zeros = vec![0u64; n];
                    let err = session.exchange_counters(&zeros, &zeros).unwrap_err();
                    assert_eq!(err, CkptError::Poisoned, "rank {rank}");
                });
            }
            let coord = coord.clone();
            let committed = &committed;
            s.spawn(move || {
                let mut agent = coord.agent(n - 1);
                // Publish a gather position so the cut can be agreed, then
                // die once every survivor is parked in the barrier.
                agent.poll(0).expect("poll");
                committed.wait();
                agent.resign();
            });
        });
    }

    #[test]
    fn topology_auto_switches_at_64_ranks() {
        assert_eq!(BarrierTopology::auto(48), BarrierTopology::Flat);
        assert_eq!(BarrierTopology::auto(64), BarrierTopology::Flat);
        assert_eq!(
            BarrierTopology::auto(65),
            BarrierTopology::Tree {
                radix: BarrierTopology::DEFAULT_RADIX
            }
        );
    }

    #[test]
    fn sharded_slots_roundtrip_and_clear() {
        let slots: ShardedSlots<u64> = ShardedSlots::new(130);
        for r in 0..130 {
            slots.put(r, r as u64 * 3);
        }
        let mut seen = [false; 130];
        let n = slots.for_each(|rank, v| {
            assert_eq!(*v, rank as u64 * 3);
            seen[rank] = true;
        });
        assert_eq!(n, 130);
        assert!(seen.iter().all(|&s| s));
        let all = slots.take_all_if_complete().expect("complete");
        assert_eq!(all.len(), 130);
        assert!(all.iter().enumerate().all(|(r, &v)| v == r as u64 * 3));
        // Drained: a second take reports incomplete.
        assert!(slots.take_all_if_complete().is_none());
        slots.put(7, 1);
        assert!(slots.take_all_if_complete().is_none());
        slots.clear();
        assert_eq!(slots.for_each(|_, _| {}), 0);
    }

    #[test]
    fn counter_deficit_computed_from_peer_matrices() {
        let n = 4;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Continue);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let mut step = 0;
                    let session = loop {
                        match agent.poll(step).expect("poll") {
                            Poll::Enter(session) => break session,
                            _ => {
                                step += 1;
                                std::thread::yield_now();
                            }
                        }
                    };
                    // Rank r has sent r messages to each peer; rank 2
                    // pretends it missed one message from rank 3.
                    let sent = vec![rank as u64; n];
                    let mut rcvd: Vec<u64> = (0..n).map(|j| j as u64).collect();
                    if rank == 2 {
                        rcvd[3] = 2;
                    }
                    let pending = session.exchange_counters(&sent, &rcvd).expect("counters");
                    for (j, &p) in pending.iter().enumerate() {
                        let expect = if rank == 2 && j == 3 { 1 } else { 0 };
                        assert_eq!(p, expect, "rank {rank} peer {j}");
                    }
                    session.submit_image(RankImage::new(rank, n, session.epoch()));
                    session.finish().expect("finish");
                });
            }
        });
    }

    #[test]
    fn stop_mode_propagates() {
        let n = 2;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Stop);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let (_, mode, _) = run_to_checkpoint(&mut agent, 0, &zeros, &zeros);
                    assert_eq!(mode, CkptMode::Stop);
                });
            }
        });
    }

    #[test]
    fn skewed_start_positions_meet_at_max_cut() {
        // Ranks first observe the request at different steps; the cut is
        // the max and everyone checkpoints there.
        let n = 3;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Continue);
        let cuts = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                let cuts = &cuts;
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    // Rank r starts polling at step 10*r.
                    let start = 10 * rank as u64;
                    let (cut, _, _) = run_to_checkpoint(&mut agent, start, &zeros, &zeros);
                    assert!(cut >= start, "cut {cut} must be reachable from {start}");
                    cuts.lock().unwrap().push(cut);
                });
            }
        });
        let cuts = cuts.into_inner().unwrap();
        assert!(cuts.iter().all(|&c| c == cuts[0]), "uniform cut: {cuts:?}");
        // The last rank cannot first-observe the request below step 20, so
        // the agreed cut is at least there (the exact value depends on how
        // far the other ranks ran before the gather closed).
        assert!(
            cuts[0] >= 20,
            "cut must be at least the max start, got {}",
            cuts[0]
        );
    }

    #[test]
    fn no_request_means_no_pending() {
        let coord = Coordinator::new(1);
        let mut agent = coord.agent(0);
        assert!(!agent.checkpoint_pending());
        assert!(matches!(agent.poll(0), Ok(Poll::None)));
        assert_eq!(coord.completed_epoch(), 0);
        assert!(coord.take_world_image("x").is_none());
    }

    #[test]
    fn single_rank_enters_immediately() {
        let coord = Coordinator::new(1);
        coord.request_checkpoint(CkptMode::Continue);
        let mut agent = coord.agent(0);
        match agent.poll(7).expect("poll") {
            Poll::Enter(session) => {
                assert_eq!(session.cut(), 7);
                let z = vec![0u64; 1];
                session.exchange_counters(&z, &z).expect("counters");
                session.submit_image(RankImage::new(0, 1, session.epoch()));
                assert_eq!(session.finish().expect("finish"), CkptMode::Continue);
            }
            _ => panic!("single rank must enter at its first safe point"),
        }
        assert!(!agent.checkpoint_pending());
    }

    #[test]
    fn multiple_epochs() {
        let coord = Coordinator::new(1);
        assert_eq!(coord.request_checkpoint(CkptMode::Continue), 1);
        let mut agent = coord.agent(0);
        match agent.poll(0).expect("poll") {
            Poll::Enter(s) => {
                let z = vec![0u64; 1];
                s.exchange_counters(&z, &z).unwrap();
                s.submit_image(RankImage::new(0, 1, s.epoch()));
                s.finish().unwrap();
            }
            _ => panic!("expected to enter"),
        }
        let _ = coord.take_world_image("v");
        assert_eq!(coord.request_checkpoint(CkptMode::Continue), 2);
        assert!(agent.checkpoint_pending());
        match agent.poll(5).expect("poll") {
            Poll::Enter(s) => {
                assert_eq!(s.epoch(), 2);
                let z = vec![0u64; 1];
                s.exchange_counters(&z, &z).unwrap();
                s.submit_image(RankImage::new(0, 1, s.epoch()));
                s.finish().unwrap();
            }
            _ => panic!("expected to enter the second round"),
        }
        assert_eq!(coord.completed_epoch(), 2);
        assert_eq!(coord.completed_rounds(), 2);
    }

    #[test]
    fn attached_sink_takes_ownership_of_each_epoch() {
        struct Collect(std::sync::Mutex<Vec<WorldImage>>);
        impl ImageSink for Collect {
            fn submit(&self, image: WorldImage) -> Result<(), crate::image::ImageError> {
                self.0.lock().unwrap().push(image);
                Ok(())
            }
        }
        let n = 3;
        let coord = Coordinator::new(n);
        let sink = Arc::new(Collect(std::sync::Mutex::new(Vec::new())));
        coord.attach_sink(sink.clone(), "MPICH");
        coord.request_checkpoint(CkptMode::Continue);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    run_to_checkpoint(&mut agent, 0, &zeros, &zeros);
                });
            }
        });
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 1, "one round, one forwarded image");
        assert_eq!(got[0].nranks(), n);
        assert_eq!(got[0].vendor_hint, "MPICH");
        drop(got);
        // The sink consumed the staging area at the rendezvous.
        assert!(coord.take_world_image("x").is_none());
    }

    #[test]
    fn failing_sink_unwinds_every_participant() {
        struct Fail;
        impl ImageSink for Fail {
            fn submit(&self, _: WorldImage) -> Result<(), crate::image::ImageError> {
                Err(crate::image::ImageError::Store {
                    epoch: 1,
                    msg: "disk full".into(),
                })
            }
        }
        let n = 2;
        let coord = Coordinator::new(n);
        coord.attach_sink(Arc::new(Fail), "MPICH");
        coord.request_checkpoint(CkptMode::Continue);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0;
                    let session = loop {
                        match agent.poll(step).expect("poll") {
                            Poll::Enter(session) => break session,
                            _ => {
                                step += 1;
                                std::thread::yield_now();
                            }
                        }
                    };
                    session.exchange_counters(&zeros, &zeros).expect("counters");
                    session.submit_image(RankImage::new(rank, n, session.epoch()));
                    // Every participant — leader or not — observes the
                    // persistence failure with the same error.
                    match session.finish() {
                        Err(CkptError::Image(e)) => {
                            assert!(e.to_string().contains("disk full"), "{e}")
                        }
                        other => panic!("expected Image error, got {other:?}"),
                    }
                });
            }
        });
    }

    #[test]
    fn resign_during_gather_aborts_round() {
        let n = 2;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Continue);
        let mut a0 = coord.agent(0);
        let mut a1 = coord.agent(1);
        // Rank 0 observes the request and keeps running (gather open).
        assert!(matches!(a0.poll(3), Ok(Poll::KeepRunning)));
        // Rank 1 finishes its program without ever polling.
        a1.resign();
        // Rank 0's next poll consumes the aborted request and runs on.
        assert!(matches!(a0.poll(4), Ok(Poll::None)));
        assert!(!a0.checkpoint_pending());
        assert_eq!(coord.completed_rounds(), 0);
    }

    #[test]
    fn requests_after_any_resignation_are_consumed() {
        let coord = Coordinator::new(2);
        let mut a0 = coord.agent(0);
        let mut a1 = coord.agent(1);
        a1.resign();
        coord.request_checkpoint(CkptMode::Stop);
        // No round can ever complete; the request is absorbed.
        assert!(matches!(a0.poll(0), Ok(Poll::None)));
        assert!(!a0.checkpoint_pending());
    }

    #[test]
    fn death_mid_rendezvous_poisons_waiters() {
        let n = 2;
        let coord = Coordinator::new(n);
        coord.request_checkpoint(CkptMode::Continue);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let c0 = coord.clone();
            let b = &barrier;
            s.spawn(move || {
                let mut agent = c0.agent(0);
                // Poll until we are in the rendezvous and enter it.
                let mut step = 0;
                let session = loop {
                    match agent.poll(step).expect("poll") {
                        Poll::Enter(session) => break session,
                        _ => {
                            step += 1;
                            std::thread::yield_now();
                        }
                    }
                };
                b.wait(); // let rank 1 die only once we are committed
                let err = session.exchange_counters(&[0, 0], &[0, 0]).unwrap_err();
                assert_eq!(err, CkptError::Poisoned);
            });
            let c1 = coord.clone();
            s.spawn(move || {
                let mut agent = c1.agent(1);
                // Publish one gather position so the cut can be agreed,
                // then die before ever reaching it.
                match agent.poll(0) {
                    Ok(_) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
                b.wait();
                agent.resign(); // dies mid-round → poison
            });
        });
    }

    #[test]
    fn step_skew_detected_during_round() {
        let coord = Coordinator::new(2);
        coord.request_checkpoint(CkptMode::Continue);
        let mut a0 = coord.agent(0);
        assert!(matches!(a0.poll(5), Ok(Poll::KeepRunning)));
        match a0.poll(9) {
            Err(e) => assert_eq!(e, CkptError::StepSkew { last: 5, got: 9 }),
            Ok(_) => panic!("step skew must be detected"),
        }
    }

    #[test]
    fn consumed_epoch_absorbs_all_requests_before_finish() {
        // All ranks request "their own" checkpoint at the same step (the
        // policy-driven pattern); one round serves every request.
        let n = 4;
        let coord = Coordinator::new(n);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0;
                    loop {
                        if step == 3 {
                            coord.request_checkpoint(CkptMode::Continue);
                        }
                        match agent.poll(step).expect("poll") {
                            Poll::None | Poll::KeepRunning => {
                                step += 1;
                                std::thread::yield_now();
                            }
                            Poll::Enter(session) => {
                                session.exchange_counters(&zeros, &zeros).expect("counters");
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("finish");
                                break;
                            }
                        }
                    }
                    // Every rank's request was absorbed by the one round.
                    assert!(!agent.checkpoint_pending());
                });
            }
        });
        assert_eq!(
            coord.completed_rounds(),
            1,
            "one round serves all four requests"
        );
    }
}

#[cfg(test)]
/// The replica-group attachment, in isolation from the session layer:
/// `finish()` quorum-commits an epoch record per round and the barrier
/// protocol is unchanged by the extra leader work.
mod replica_tests {
    use super::*;
    use crate::replica::{ReplicaConfig, ReplicaGroup, TestClock};

    #[test]
    fn finish_with_replicas_attached_completes() {
        let n = 3;
        let coord = Coordinator::new(n);
        let group = Arc::new(ReplicaGroup::in_memory(
            ReplicaConfig::default(),
            Arc::new(TestClock::new()),
        ));
        coord.attach_replicas(group.clone());
        coord.request_checkpoint(CkptMode::Continue);
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    super::tests::run_to_checkpoint(&mut agent, 0, &zeros, &zeros);
                });
            }
        });
        assert_eq!(coord.completed_rounds(), 1);
        assert_eq!(group.stats().commits, 1);
    }

    #[test]
    fn three_pressed_rounds_with_replicas_complete() {
        let n = 3;
        let coord = Coordinator::new(n);
        let group = Arc::new(ReplicaGroup::in_memory(
            ReplicaConfig::default(),
            Arc::new(TestClock::new()),
        ));
        coord.attach_replicas(group.clone());
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0u64;
                    while step < 40 {
                        if rank == 0 && (step == 5 || step == 15 || step == 25) {
                            coord.request_checkpoint(CkptMode::Continue);
                        }
                        match agent.poll(step).expect("poll") {
                            Poll::None | Poll::KeepRunning => step += 1,
                            Poll::Enter(session) => {
                                session.exchange_counters(&zeros, &zeros).expect("exchange");
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("finish");
                                step += 1;
                            }
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(coord.completed_rounds(), 3);
        assert_eq!(group.stats().commits, 3);
    }
}
