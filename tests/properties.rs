//! Property-based tests (proptest) on the core data structures and the
//! system's central invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use mpi_stool::abi::{Handle, HandleKind, ReduceOp};
use mpi_stool::dmtcp::{Memory, RankImage, Reader, Writer};
use mpi_stool::simnet::{ClusterSpec, VirtualTime};
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{AppCtx, Checkpointer, CkptMode, MpiProgram, Session, StoolResult, Vendor};

// ---------------------------------------------------------------------------
// ABI handle encoding
// ---------------------------------------------------------------------------

fn any_kind() -> impl Strategy<Value = HandleKind> {
    prop::sample::select(HandleKind::ALL.to_vec())
}

proptest! {
    #[test]
    fn handle_dynamic_roundtrip(kind in any_kind(), slot in Handle::FIRST_DYNAMIC_INDEX..0x00ff_ffff) {
        let h = Handle::dynamic(kind, slot);
        prop_assert_eq!(h.kind(), kind);
        prop_assert!(!h.is_predefined());
        prop_assert!(!h.is_null());
    }

    #[test]
    fn handle_predefined_roundtrip(kind in any_kind(), index in 0u32..Handle::FIRST_DYNAMIC_INDEX) {
        let h = Handle::predefined(kind, index);
        prop_assert_eq!(h.kind(), kind);
        prop_assert_eq!(h.index(), index);
        prop_assert!(h.is_predefined());
    }

    #[test]
    fn handle_raw_is_lossless(kind in any_kind(), slot in Handle::FIRST_DYNAMIC_INDEX..0x00ff_ffff) {
        let h = Handle::dynamic(kind, slot);
        prop_assert_eq!(Handle::from_raw(h.raw()), h);
    }

    #[test]
    fn distinct_kinds_never_collide(
        a in any_kind(), b in any_kind(), slot in Handle::FIRST_DYNAMIC_INDEX..0x00ff_ffff
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(Handle::dynamic(a, slot), Handle::dynamic(b, slot));
    }
}

// ---------------------------------------------------------------------------
// Checkpoint image codec
// ---------------------------------------------------------------------------

fn any_segment_name() -> impl Strategy<Value = String> {
    "[a-z]{1,12}(\\.[a-z0-9]{1,8})?"
}

fn any_memory() -> impl Strategy<Value = Memory> {
    vec(
        (
            any_segment_name(),
            prop_oneof![
                vec(
                    any::<f64>().prop_filter("no NaN for PartialEq", |x| !x.is_nan()),
                    0..24
                )
                .prop_map(SegmentData::F64),
                vec(any::<i64>(), 0..24).prop_map(SegmentData::I64),
                vec(any::<u64>(), 0..24).prop_map(SegmentData::U64),
                vec(any::<u8>(), 0..64).prop_map(SegmentData::Bytes),
            ],
        ),
        0..8,
    )
    .prop_map(|entries| {
        let mut mem = Memory::new();
        for (name, data) in entries {
            // Duplicate names may arrive with a different element type;
            // drop the old segment first (the typed accessors panic on a
            // type mismatch by design).
            mem.remove(&name);
            match data {
                SegmentData::F64(v) => mem.f64s_mut(&name, 0).extend(v),
                SegmentData::I64(v) => mem.i64s_mut(&name, 0).extend(v),
                SegmentData::U64(v) => mem.u64s_mut(&name, 0).extend(v),
                SegmentData::Bytes(v) => mem.bytes_mut(&name, 0).extend(v),
            }
        }
        mem
    })
}

#[derive(Debug, Clone)]
enum SegmentData {
    F64(Vec<f64>),
    I64(Vec<i64>),
    U64(Vec<u64>),
    Bytes(Vec<u8>),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_codec_roundtrip(mem in any_memory()) {
        let mut w = Writer::new();
        mem.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::checked(&buf).expect("checksum");
        let back = Memory::decode(&mut r).expect("decode");
        prop_assert_eq!(back, mem);
    }

    #[test]
    fn corrupted_image_is_rejected(mem in any_memory(), flip in any::<usize>()) {
        let mut w = Writer::new();
        mem.encode(&mut w);
        let mut buf = w.finish();
        prop_assume!(!buf.is_empty());
        let i = flip % buf.len();
        buf[i] ^= 0x40;
        // The fnv1a trailer covers every body byte, and a trailer flip
        // breaks the stored sum itself: every single-bit corruption must be
        // rejected before any state is reconstructed.
        prop_assert!(Reader::checked(&buf).is_err(), "bit flip at {} accepted", i);
    }

    #[test]
    fn rank_image_roundtrip(
        rank in 0usize..48,
        sections in vec((any_segment_name(), vec(any::<u8>(), 0..64)), 0..6),
    ) {
        let mut img = RankImage::new(rank, 48, 1);
        for (name, data) in &sections {
            img.put_section(name, data.clone());
        }
        let encoded = img.encode();
        let back = RankImage::decode(&encoded).expect("decode");
        prop_assert_eq!(back.rank, img.rank);
        prop_assert_eq!(back.nranks, img.nranks);
        // put_section overwrites: generated duplicate names must compare
        // against the last write.
        let mut expect: std::collections::HashMap<&str, &[u8]> = Default::default();
        for (name, data) in &sections {
            expect.insert(name.as_str(), data.as_slice());
        }
        for (name, data) in expect {
            prop_assert_eq!(back.section(name), Some(data));
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-checkpoint store
// ---------------------------------------------------------------------------

use mpi_stool::dmtcp::{DeltaStore, StoreConfig, StoreError, WorldImage};

fn store_tmp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stool_store_prop_{tag}_{}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a dense world image at `epoch` from shared + per-rank sections.
fn world_from_sections(
    epoch: u64,
    nranks: usize,
    sections: &std::collections::BTreeMap<String, Vec<u8>>,
) -> WorldImage {
    let ranks = (0..nranks)
        .map(|r| {
            let mut img = RankImage::new(r, nranks, epoch);
            for (name, data) in sections {
                // Perturb per rank so ranks are distinct but share most
                // content (the realistic dedup-friendly shape).
                let mut d = data.clone();
                if !d.is_empty() {
                    d[0] = d[0].wrapping_add(r as u8);
                }
                img.put_section(name, d);
            }
            img
        })
        .collect();
    WorldImage::new("MPICH".to_string(), ranks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full + randomized delta chains: applying random section mutations
    /// epoch by epoch, every committed epoch must reload bit-identically.
    #[test]
    fn store_delta_chain_roundtrips(
        case in any::<u64>(),
        base in vec((any_segment_name(), vec(any::<u8>(), 0..400)), 1..5),
        epochs in vec(vec((any_segment_name(), vec(any::<u8>(), 0..400)), 0..3), 1..5),
        block in prop::sample::select(vec![16usize, 64, 256]),
        max_chain in 1usize..4,
    ) {
        let dir = store_tmp_dir("chain", case);
        let cfg = StoreConfig {
            block_size: block,
            // Keep everything restorable: this property checks the chain,
            // not the GC.
            retain_epochs: 64,
            max_chain,
            ..StoreConfig::default()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).expect("open");
        let mut sections: std::collections::BTreeMap<String, Vec<u8>> =
            base.iter().cloned().collect();
        let mut committed: Vec<(u64, WorldImage)> = Vec::new();
        for (i, mutations) in epochs.iter().enumerate() {
            for (name, data) in mutations {
                sections.insert(name.clone(), data.clone());
            }
            let image = world_from_sections(i as u64 + 1, 3, &sections);
            let stats = store.commit(&image).expect("commit");
            prop_assert_eq!(stats.full, i == 0 || (i % (max_chain + 1)) == 0);
            committed.push((stats.epoch, image));
        }
        for (seq, expect) in &committed {
            let got = store.load_epoch(*seq).expect("load epoch");
            prop_assert_eq!(&got, expect, "epoch {} must roundtrip", seq);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupting any single byte of any epoch's block file is detected
    /// by the per-block CRC: every epoch either reloads bit-identically
    /// or reports `BlockCorrupt` — never silently loads wrong state.
    #[test]
    fn store_single_block_corruption_detected(
        case in any::<u64>(),
        base in vec((any_segment_name(), vec(any::<u8>(), 1..300)), 1..4),
        change in vec((any_segment_name(), vec(any::<u8>(), 1..300)), 1..3),
        victim_byte in any::<usize>(),
        victim_epoch in 1u64..3,
    ) {
        let dir = store_tmp_dir("crc", case);
        let cfg = StoreConfig {
            block_size: 32,
            retain_epochs: 64,
            ..StoreConfig::default()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).expect("open");
        let mut sections: std::collections::BTreeMap<String, Vec<u8>> =
            base.iter().cloned().collect();
        let img1 = world_from_sections(1, 2, &sections);
        store.commit(&img1).expect("commit 1");
        for (name, data) in &change {
            sections.insert(name.clone(), data.clone());
        }
        let img2 = world_from_sections(2, 2, &sections);
        store.commit(&img2).expect("commit 2");

        let blocks = dir
            .join(format!("epoch_{victim_epoch:06}"))
            .join("blocks.bin");
        let mut buf = std::fs::read(&blocks).expect("read blocks");
        prop_assume!(!buf.is_empty());
        let i = victim_byte % buf.len();
        buf[i] ^= 0x01;
        std::fs::write(&blocks, &buf).expect("write blocks");

        let mut detected = false;
        for (seq, expect) in [(1u64, &img1), (2u64, &img2)] {
            match store.load_epoch(seq) {
                Ok(got) => prop_assert_eq!(&got, expect, "epoch {} silently wrong", seq),
                Err(StoreError::BlockCorrupt { src_epoch, .. }) => {
                    prop_assert_eq!(src_epoch, victim_epoch);
                    detected = true;
                }
                Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            }
        }
        // The flipped byte lives in some block of the victim epoch; at
        // least one epoch referencing that file must notice.
        prop_assert!(detected, "corruption in epoch {victim_epoch} went unnoticed");
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Remote second tier: sealed-epoch round-trips and scrub idempotence
// ---------------------------------------------------------------------------

use mpi_stool::dmtcp::{FsTier, ObjectTier, Scrubber, TierConfig};
use std::sync::Arc;
use std::time::Duration;

fn prop_tier_cfg() -> TierConfig {
    TierConfig {
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        ..TierConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary chains ship → local store deleted → hydrate from the
    /// tier alone → the chain head restores bit-identically under the
    /// tier-attached open.
    #[test]
    fn sealed_epochs_roundtrip_through_the_tier(
        case in any::<u64>(),
        base in vec((any_segment_name(), vec(any::<u8>(), 0..300)), 1..4),
        epochs in vec(vec((any_segment_name(), vec(any::<u8>(), 0..300)), 0..3), 1..4),
        block in prop::sample::select(vec![32usize, 128]),
        max_chain in 1usize..4,
    ) {
        let dir = store_tmp_dir("tier_chain", case);
        let tier_dir = store_tmp_dir("tier_chain_tier", case.wrapping_add(1));
        let cfg = StoreConfig {
            block_size: block,
            retain_epochs: 64,
            max_chain,
            ..StoreConfig::default()
        };
        let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).expect("tier"));
        let mut sections: std::collections::BTreeMap<String, Vec<u8>> =
            base.iter().cloned().collect();
        let mut last: Option<WorldImage> = None;
        {
            let mut store =
                DeltaStore::open_with_tier(&dir, cfg, tier.clone(), prop_tier_cfg())
                    .expect("open");
            for (i, mutations) in epochs.iter().enumerate() {
                for (name, data) in mutations {
                    sections.insert(name.clone(), data.clone());
                }
                let image = world_from_sections(i as u64 + 1, 3, &sections);
                store.commit(&image).expect("commit");
                last = Some(image);
            }
            store.tier_flush().expect("every epoch ships cleanly");
            prop_assert_eq!(store.tier_durable().len(), epochs.len());
        }
        // The node's disk dies: the entire local chain is gone. A
        // tier-attached open hydrates the head (and the epochs it
        // references) back and restores bit-identically.
        std::fs::remove_dir_all(&dir).expect("delete local store");
        let store = DeltaStore::open_with_tier(&dir, cfg, tier, prop_tier_cfg()).expect("reopen");
        let got = store.load_latest().expect("hydrated restore");
        prop_assert_eq!(&got, last.as_ref().expect("at least one epoch"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&tier_dir).ok();
    }

    /// Scrub idempotence: scrubbing a healthy chain is a no-op, healing
    /// a quarantined head succeeds exactly once, and a second scrub
    /// after the heal is again a no-op.
    #[test]
    fn scrub_is_idempotent_and_heals_exactly_once(
        case in any::<u64>(),
        base in vec((any_segment_name(), vec(any::<u8>(), 1..200)), 1..4),
        change in vec((any_segment_name(), vec(any::<u8>(), 1..200)), 1..3),
        flip in any::<usize>(),
    ) {
        let dir = store_tmp_dir("tier_scrub", case);
        let tier_dir = store_tmp_dir("tier_scrub_tier", case.wrapping_add(1));
        let cfg = StoreConfig {
            block_size: 64,
            retain_epochs: 64,
            ..StoreConfig::default()
        };
        let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).expect("tier"));
        let mut sections: std::collections::BTreeMap<String, Vec<u8>> =
            base.iter().cloned().collect();
        let img1 = world_from_sections(1, 2, &sections);
        let img2 = {
            for (name, data) in &change {
                sections.insert(name.clone(), data.clone());
            }
            world_from_sections(2, 2, &sections)
        };
        {
            let mut store =
                DeltaStore::open_with_tier(&dir, cfg, tier.clone(), prop_tier_cfg())
                    .expect("open");
            store.commit(&img1).expect("commit 1");
            store.commit(&img2).expect("commit 2");
            store.tier_flush().expect("ship");

            // Scrubbing a healthy chain is a verified no-op.
            let report = store.scrub().expect("healthy scrub");
            prop_assert!(report.is_noop(), "healthy chain scrub did {report:?}");
            prop_assert_eq!(report.verified, 2);
        }

        // Rot the head manifest so a tier-less open quarantines it.
        let manifest = dir.join("epoch_000002").join("manifest.bin");
        let mut buf = std::fs::read(&manifest).expect("read manifest");
        let at = flip % buf.len();
        buf[at] ^= 0xFF;
        std::fs::write(&manifest, &buf).expect("write manifest");
        let mut store = DeltaStore::open_with(&dir, cfg).expect("reopen");
        prop_assert_eq!(store.quarantined(), &[2]);

        let scrubber = Scrubber::new(tier);
        let healed = scrubber.scrub(&mut store).expect("heal");
        prop_assert_eq!(&healed.healed, &vec![2], "exactly one heal: {healed:?}");
        prop_assert!(store.quarantined().is_empty());
        prop_assert_eq!(&store.load_epoch(2).expect("healed head"), &img2);
        prop_assert_eq!(&store.load_epoch(1).expect("base intact"), &img1);

        let again = scrubber.scrub(&mut store).expect("second scrub");
        prop_assert!(again.is_noop(), "second scrub did {again:?}");
        prop_assert_eq!(again.verified, 2);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&tier_dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn virtual_time_add_is_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let ta = VirtualTime::from_nanos(a);
        let tb = VirtualTime::from_nanos(b);
        prop_assert!(ta + tb >= ta);
        prop_assert!(ta + tb >= tb);
        prop_assert_eq!(ta + tb, tb + ta);
    }

    #[test]
    fn virtual_time_micros_roundtrip(us in 0u64..1 << 30) {
        let t = VirtualTime::from_micros(us);
        prop_assert_eq!(t.as_micros_f64() as u64, us);
    }
}

// ---------------------------------------------------------------------------
// Whole-system invariants (small worlds, few cases: these launch threads)
// ---------------------------------------------------------------------------

/// An allreduce over random per-rank contributions must equal the serial sum
/// on every rank, under both vendors, through the full stack.
#[derive(Clone)]
struct AllreduceCheck {
    contributions: Vec<f64>,
}

impl MpiProgram for AllreduceCheck {
    fn name(&self) -> &'static str {
        "allreduce-check"
    }
    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let mine = self.contributions[app.rank()];
        let total = app
            .pmpi()
            .allreduce_f64(mine, ReduceOp::Sum, Handle::COMM_WORLD)?;
        app.mem.set_f64("check.total", total);
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn allreduce_matches_serial_sum(
        contributions in vec(-1.0e6f64..1.0e6, 4),
        vendor_is_mpich in any::<bool>(),
    ) {
        let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let vendor = if vendor_is_mpich { Vendor::Mpich } else { Vendor::OpenMpi };
        let program = AllreduceCheck { contributions: contributions.clone() };
        let out = Session::builder()
            .cluster(cluster)
            .vendor(vendor)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap()
            .launch(&program)
            .unwrap();
        let memories = out.memories().unwrap();
        // Both vendor reduction trees are order-deterministic; against the
        // serial left fold we allow f64 rounding slack.
        let serial: f64 = contributions.iter().sum();
        for m in memories {
            let got = m.get_f64("check.total").unwrap();
            prop_assert!((got - serial).abs() <= 1e-9 * serial.abs().max(1.0));
        }
    }

    #[test]
    fn checkpoint_step_never_changes_the_answer(stop_step in 0u64..8, payload in 1usize..64) {
        let cluster = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        let program = RingPings { rounds: 8, payload };
        let reference = Session::builder()
            .cluster(cluster.clone())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap()
            .launch(&program)
            .unwrap();
        let expect = reference.memories().unwrap()[0].get_f64("ring.total").unwrap();

        let image = Session::builder()
            .cluster(cluster.clone())
            .vendor(Vendor::OpenMpi)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(stop_step, CkptMode::Stop)
            .build()
            .unwrap()
            .launch(&program)
            .unwrap()
            .into_image()
            .unwrap();
        let got = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap()
            .restore(&image, &program)
            .unwrap()
            .memories()
            .unwrap()[0]
            .get_f64("ring.total")
            .unwrap();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// Indexed matching: wildcard receives respect global arrival order and
// per-pair FIFO (the invariants the O(1) bucket index must preserve)
// ---------------------------------------------------------------------------

mod matching_order {
    use mpi_stool::simnet::{ClusterSpec, Fabric, NoiseModel, RankCtx};
    use std::sync::Arc;

    /// A three-rank single-threaded harness: ranks 0 and 1 send to rank 2
    /// in a caller-chosen interleaving, so arrival order at rank 2 is
    /// exactly the send order.
    pub struct Harness {
        pub senders: Vec<RankCtx>,
        pub receiver: RankCtx,
    }

    impl Harness {
        pub fn new() -> Harness {
            let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(3).build());
            let (_fabric, eps): (Fabric, _) = Fabric::new(&spec);
            let mut ctxs: Vec<RankCtx> = eps
                .into_iter()
                .enumerate()
                .map(|(r, ep)| {
                    RankCtx::new(
                        r,
                        spec.clone(),
                        ep,
                        NoiseModel::disabled().stream_for_rank(r),
                    )
                })
                .collect();
            let receiver = ctxs.pop().expect("three ranks");
            Harness {
                senders: ctxs,
                receiver,
            }
        }
    }

    /// Model message: identity of one sent envelope.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Sent {
        pub src: usize,
        pub tag: i32,
        pub arrival_index: usize,
    }

    /// The oracle: among outstanding messages matching (src?, tag?), the
    /// matcher must deliver the one with the smallest arrival index.
    pub fn expected_pick(
        outstanding: &[Sent],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Option<Sent> {
        outstanding
            .iter()
            .filter(|m| src.is_none_or(|s| m.src == s))
            .filter(|m| tag.is_none_or(|t| m.tag == t))
            .min_by_key(|m| m.arrival_index)
            .copied()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the indexed matcher with a random send schedule and a random
    /// sequence of receive patterns (exact, half-wildcard, full-wildcard)
    /// against a brute-force model. Checks, for every receive:
    /// * the delivered message is the *earliest-arriving* match (global
    ///   arrival-seq order for wildcards), and
    /// * per-(src, tag) pairs are consumed in send order (non-overtaking),
    ///   which follows from the first property but is asserted separately.
    #[test]
    fn wildcard_matching_respects_arrival_order_and_pair_fifo(
        schedule in vec((0usize..2, 0i32..3), 1..40),
        pattern_seed in vec((0u8..4, 0usize..2, 0i32..3), 40),
    ) {
        use matching_order::{expected_pick, Harness, Sent};
        use mpi_stool::simnet::matching::{MatchCore, SrcPattern, TagPattern};

        let h = Harness::new();
        let ctx_id = 11u64;
        let mut outstanding: Vec<Sent> = Vec::new();
        for (i, &(src, tag)) in schedule.iter().enumerate() {
            let payload = bytes::Bytes::copy_from_slice(&(i as u64).to_le_bytes());
            h.senders[src]
                .endpoint()
                .send_raw(2, ctx_id, tag, payload, &h.senders[src])
                .unwrap();
            outstanding.push(Sent { src, tag, arrival_index: i });
        }

        let mut core = MatchCore::new();
        let mut per_pair_last: std::collections::HashMap<(usize, i32), usize> =
            std::collections::HashMap::new();
        let mut patterns = pattern_seed.iter().cycle();
        while !outstanding.is_empty() {
            let &(kind, s, t) = patterns.next().expect("cycle never ends");
            let (src_sel, tag_sel, src_model, tag_model) = match kind {
                0 => (SrcPattern::Any, TagPattern::Any, None, None),
                1 => (SrcPattern::Is(s), TagPattern::Any, Some(s), None),
                2 => (SrcPattern::Any, TagPattern::Is(t), None, Some(t)),
                _ => (SrcPattern::Is(s), TagPattern::Is(t), Some(s), Some(t)),
            };
            let expected = expected_pick(&outstanding, src_model, tag_model);
            let got = core.try_match(&h.receiver, ctx_id, src_sel, tag_sel).unwrap();
            match (expected, got) {
                (None, None) => continue,
                (Some(want), Some(m)) => {
                    let idx = u64::from_le_bytes(m.env.payload[..8].try_into().unwrap()) as usize;
                    prop_assert_eq!(
                        idx, want.arrival_index,
                        "pattern {:?}/{:?} must deliver the earliest match",
                        src_sel, tag_sel
                    );
                    prop_assert_eq!(m.env.src, want.src);
                    prop_assert_eq!(m.env.tag, want.tag);
                    // Per-pair FIFO: consumption order within one
                    // (src, tag) pair is send order.
                    if let Some(&prev) = per_pair_last.get(&(want.src, want.tag)) {
                        prop_assert!(
                            prev < want.arrival_index,
                            "pair ({}, {}) overtaken: {} after {}",
                            want.src, want.tag, want.arrival_index, prev
                        );
                    }
                    per_pair_last.insert((want.src, want.tag), want.arrival_index);
                    outstanding.retain(|o| o.arrival_index != want.arrival_index);
                }
                (want, got) => prop_assert!(
                    false,
                    "model/matcher disagree: model {:?}, matcher {:?}",
                    want, got.map(|m| (m.env.src, m.env.tag, m.seq))
                ),
            }
        }
        prop_assert_eq!(core.unexpected_len(), 0);
    }

    /// The same invariants on a **striped** fabric with more senders than
    /// stripes: sources land on *different* lock stripes of the
    /// receiver's mailbox (and some share one), and the arrival-stamp
    /// merge must still deliver exactly like the single-lock mailbox —
    /// per-(src, tag) pairs in send order (non-overtaking) and wildcards
    /// in global arrival order.
    #[test]
    fn striped_mailboxes_preserve_fifo_and_wildcard_order(
        schedule in vec((0usize..6, 0i32..3), 1..60),
        pattern_seed in vec((0u8..4, 0usize..6, 0i32..3), 48),
        stripes in prop::sample::select(vec![1usize, 2, 3, 4]),
    ) {
        use matching_order::{expected_pick, Sent};
        use mpi_stool::simnet::matching::{MatchCore, SrcPattern, TagPattern};
        use mpi_stool::simnet::{Fabric, NoiseModel, RankCtx};
        use std::sync::Arc;

        // Six senders over 1–4 stripes: src % stripes collides for some
        // pairs and separates others.
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(7).build());
        let (fabric, eps) = Fabric::with_stripes(&spec, stripes);
        prop_assert_eq!(fabric.stripes(), stripes);
        let mut ctxs: Vec<RankCtx> = eps
            .into_iter()
            .enumerate()
            .map(|(r, ep)| {
                RankCtx::new(r, spec.clone(), ep, NoiseModel::disabled().stream_for_rank(r))
            })
            .collect();
        let receiver = ctxs.pop().expect("seven ranks");

        let ctx_id = 3u64;
        let mut outstanding: Vec<Sent> = Vec::new();
        for (i, &(src, tag)) in schedule.iter().enumerate() {
            let payload = bytes::Bytes::copy_from_slice(&(i as u64).to_le_bytes());
            ctxs[src]
                .endpoint()
                .send_raw(6, ctx_id, tag, payload, &ctxs[src])
                .unwrap();
            outstanding.push(Sent { src, tag, arrival_index: i });
        }

        let mut core = MatchCore::new();
        let mut per_pair_last: std::collections::HashMap<(usize, i32), usize> =
            std::collections::HashMap::new();
        let mut patterns = pattern_seed.iter().cycle();
        while !outstanding.is_empty() {
            let &(kind, s, t) = patterns.next().expect("cycle never ends");
            let (src_sel, tag_sel, src_model, tag_model) = match kind {
                0 => (SrcPattern::Any, TagPattern::Any, None, None),
                1 => (SrcPattern::Is(s), TagPattern::Any, Some(s), None),
                2 => (SrcPattern::Any, TagPattern::Is(t), None, Some(t)),
                _ => (SrcPattern::Is(s), TagPattern::Is(t), Some(s), Some(t)),
            };
            let expected = expected_pick(&outstanding, src_model, tag_model);
            let got = core.try_match(&receiver, ctx_id, src_sel, tag_sel).unwrap();
            match (expected, got) {
                (None, None) => continue,
                (Some(want), Some(m)) => {
                    let idx = u64::from_le_bytes(m.env.payload[..8].try_into().unwrap()) as usize;
                    prop_assert_eq!(
                        idx, want.arrival_index,
                        "stripes={}: pattern {:?}/{:?} must deliver the earliest match",
                        stripes, src_sel, tag_sel
                    );
                    if let Some(&prev) = per_pair_last.get(&(want.src, want.tag)) {
                        prop_assert!(
                            prev < want.arrival_index,
                            "stripes={}: pair ({}, {}) overtaken",
                            stripes, want.src, want.tag
                        );
                    }
                    per_pair_last.insert((want.src, want.tag), want.arrival_index);
                    outstanding.retain(|o| o.arrival_index != want.arrival_index);
                }
                (want, got) => prop_assert!(
                    false,
                    "stripes={}: model/matcher disagree: model {:?}, matcher {:?}",
                    stripes, want, got.map(|m| (m.env.src, m.env.tag, m.seq))
                ),
            }
        }
        prop_assert_eq!(core.unexpected_len(), 0);
    }

    /// Full-wildcard receives alone must observe the exact global arrival
    /// sequence, whatever the interleaving of senders and tags.
    #[test]
    fn any_any_receives_replay_arrival_sequence(
        schedule in vec((0usize..2, 0i32..4), 1..48),
    ) {
        use matching_order::Harness;
        use mpi_stool::simnet::matching::{MatchCore, SrcPattern, TagPattern};

        let h = Harness::new();
        for (i, &(src, tag)) in schedule.iter().enumerate() {
            let payload = bytes::Bytes::copy_from_slice(&(i as u64).to_le_bytes());
            h.senders[src]
                .endpoint()
                .send_raw(2, 5, tag, payload, &h.senders[src])
                .unwrap();
        }
        let mut core = MatchCore::new();
        let mut last_seq = None;
        for i in 0..schedule.len() {
            let m = core
                .try_match(&h.receiver, 5, SrcPattern::Any, TagPattern::Any)
                .unwrap()
                .expect("one message per send");
            let idx = u64::from_le_bytes(m.env.payload[..8].try_into().unwrap()) as usize;
            prop_assert_eq!(idx, i, "arrival order violated at receive {}", i);
            if let Some(prev) = last_seq {
                prop_assert!(m.seq > prev, "seq must be strictly increasing");
            }
            last_seq = Some(m.seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Replicated coordinator
// ---------------------------------------------------------------------------

mod replica_props {
    use super::*;
    use mpi_stool::dmtcp::replica::Clock;
    use mpi_stool::dmtcp::{ReplicaConfig, ReplicaGroup, ReplicaRecord, TestClock};

    pub fn any_record() -> impl Strategy<Value = ReplicaRecord> {
        prop_oneof![
            (any::<u64>(), any::<u64>(), any::<bool>(), ".{0,24}").prop_map(
                |(epoch, cut, stop, vendor)| ReplicaRecord::EpochSeal {
                    epoch,
                    cut,
                    stop,
                    vendor,
                }
            ),
            (any::<u64>(), any::<bool>())
                .prop_map(|(rank, alive)| ReplicaRecord::Membership { rank, alive }),
            (any::<u64>(), ".{0,24}")
                .prop_map(|(epoch, reason)| ReplicaRecord::Abort { epoch, reason }),
        ]
    }

    pub fn group(replicas: usize) -> ReplicaGroup {
        let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
        ReplicaGroup::in_memory(
            ReplicaConfig {
                replicas,
                log: prop_tier_cfg(),
                ..ReplicaConfig::default()
            },
            clock,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every epoch record survives its log-entry encoding bit-exactly.
    #[test]
    fn replica_records_roundtrip(record in replica_props::any_record()) {
        use mpi_stool::dmtcp::ReplicaRecord;
        let buf = record.encode();
        prop_assert_eq!(ReplicaRecord::decode(&buf).expect("decode"), record);
    }

    /// The record encoding is checksummed: any single-byte corruption or
    /// truncation is rejected, never mis-decoded.
    #[test]
    fn replica_records_reject_corruption(
        record in replica_props::any_record(),
        flip in any::<usize>(),
        bit in 0u8..8,
        cut in any::<usize>(),
    ) {
        use mpi_stool::dmtcp::ReplicaRecord;
        let buf = record.encode();
        let mut bad = buf.clone();
        let at = flip % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(
            ReplicaRecord::decode(&bad).is_err(),
            "flip at byte {} bit {} accepted", at, bit
        );
        prop_assert!(ReplicaRecord::decode(&buf[..cut % buf.len()]).is_err());
    }

    /// Any kill/revive schedule that keeps a quorum alive never blocks a
    /// commit, and the quorum log replays every committed record once, in
    /// slot order.
    #[test]
    fn minority_kill_schedules_never_lose_commits(
        replicas in prop::sample::select(vec![3usize, 5]),
        schedule in vec((any::<u8>(), any::<bool>()), 1..12),
        records in vec(replica_props::any_record(), 1..6),
    ) {
        let group = replica_props::group(replicas);
        let quorum = group.quorum();
        let mut expect = Vec::new();
        for (next, (pick, kill)) in schedule.into_iter().enumerate() {
            let id = pick as usize % replicas;
            if kill {
                // Only kill while it leaves a quorum standing.
                if group.live() > quorum {
                    group.kill(id);
                }
            } else {
                group.revive(id);
            }
            let record = records[next % records.len()].clone();
            let slot = group.commit(record.clone()).expect("quorum alive");
            prop_assert_eq!(slot, expect.len() as u64);
            expect.push(record);
        }
        let committed = group.committed().expect("replay");
        prop_assert_eq!(committed.len(), expect.len());
        for (i, (slot, record)) in committed.iter().enumerate() {
            prop_assert_eq!(*slot, i as u64);
            prop_assert_eq!(record, &expect[i]);
        }
    }
}
