//! Ablation: the FSGSBASE kernel feature.
//!
//! The paper attributes MANA's small-message overhead to the missing
//! user-space FSGSBASE register access on CentOS 7 (kernel 3.10): every
//! split-process crossing needs an `arch_prctl` syscall instead of a cheap
//! register write. This ablation runs the same full-stack OSU alltoall on
//! the same cluster with only the kernel version changed.
//!
//! Usage: `abl_fsgsbase [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use simnet::{ClusterSpec, KernelVersion};
use stool::{Checkpointer, Session, Vendor};

fn run(kernel_version: KernelVersion, bench: &OsuLatency, cluster: &ClusterSpec) -> Vec<f64> {
    let mut spec = cluster.clone();
    spec.kernel = kernel_version;
    let session = Session::builder()
        .cluster(spec)
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("session");
    let out = session.launch(bench).expect("run");
    out.memories().expect("completed")[0]
        .f64s("osu.lat_us")
        .expect("results")
        .to_vec()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = OsuLatency {
        kernel: OsuKernel::Alltoall,
        min_size: 1,
        max_size: if quick { 4 * 1024 } else { 64 * 1024 },
        warmup: 2,
        iters: if quick { 10 } else { 50 },
        ckpt_window: None,
    };
    let cluster = if quick {
        ClusterSpec::builder().nodes(2).ranks_per_node(4).build()
    } else {
        ClusterSpec::discovery()
    };
    let old = run(KernelVersion::CENTOS7, &bench, &cluster);
    let new = run(KernelVersion::MODERN, &bench, &cluster);
    println!("# Ablation: user-space FSGSBASE (kernel >= 5.9) vs syscall path (CentOS 7)");
    println!("# Full stack (MPICH + Mukautuva + MANA), OSU alltoall");
    println!(
        "{:>10} {:>16} {:>16} {:>10}",
        "Size(B)", "3.10 (us)", "5.15 (us)", "saved(%)"
    );
    for (i, size) in bench.sizes().iter().enumerate() {
        let saved = (old[i] - new[i]) / old[i] * 100.0;
        println!(
            "{:>10} {:>16.2} {:>16.2} {:>10.2}",
            size, old[i], new[i], saved
        );
    }
    println!("# paper: \"the overhead due to FSGSBASE is an artifact of the split process\"");
}
