//! The paper's quantitative claims as assertions (§5.1, §5.2).
//!
//! * Interposition overhead is largest at 1-byte messages and drops below
//!   a few percent as messages grow (Figs. 2-4; max observed 10.9 % for
//!   alltoall, 17.2 % for bcast/allreduce).
//! * Real applications see far smaller overhead than micro-benchmarks
//!   (Fig. 5; ~0-5 %).
//! * The small-message overhead is mostly the FSGSBASE syscall cost of the
//!   split process on pre-5.9 kernels (§5.1 discussion).

use mpi_stool::apps::{CoMdMini, OsuKernel, OsuLatency, WaveMpi};
use mpi_stool::simnet::{ClusterSpec, KernelVersion, VirtualTime};
use mpi_stool::stool::{Checkpointer, MpiProgram, Session, Vendor};

/// The paper's testbed shape (4 nodes x 12 ranks); the interposition cost
/// model is calibrated against the §5.1 percentages at this scale, so the
/// bands below only hold here (at 8 ranks the same fixed per-call cost is
/// a much larger fraction of a much cheaper collective).
fn cluster_with(kernel: KernelVersion) -> ClusterSpec {
    ClusterSpec::builder()
        .nodes(4)
        .ranks_per_node(12)
        .kernel(kernel)
        .build()
}

fn latencies(
    bench: &OsuLatency,
    cluster: &ClusterSpec,
    vendor: Vendor,
    full_stack: bool,
) -> Vec<f64> {
    let mut b = Session::builder().cluster(cluster.clone()).vendor(vendor);
    b = if full_stack {
        b.checkpointer(Checkpointer::mana())
    } else {
        b.native_abi()
    };
    let out = b.build().unwrap().launch(bench).unwrap();
    out.memories().unwrap()[0]
        .f64s("osu.lat_us")
        .unwrap()
        .to_vec()
}

fn small_bench(kernel: OsuKernel) -> OsuLatency {
    OsuLatency {
        kernel,
        min_size: 1,
        max_size: 64 * 1024,
        warmup: 1,
        iters: 3,
        ckpt_window: None,
    }
}

#[test]
fn overhead_shrinks_with_message_size() {
    let bench = small_bench(OsuKernel::Alltoall);
    let cluster = cluster_with(KernelVersion::CENTOS7);
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let native = latencies(&bench, &cluster, vendor, false);
        let full = latencies(&bench, &cluster, vendor, true);
        let sizes = bench.sizes();
        let first_ov = (full[0] - native[0]) / native[0];
        let last_ov = (full[sizes.len() - 1] - native[sizes.len() - 1]) / native[sizes.len() - 1];
        assert!(
            first_ov > last_ov,
            "{vendor:?}: overhead should shrink with size (1B: {:.1}%, 64KiB: {:.1}%)",
            first_ov * 100.0,
            last_ov * 100.0
        );
        assert!(
            last_ov.abs() < 0.02,
            "{vendor:?}: large-message overhead should be <2%, got {:.2}%",
            last_ov * 100.0
        );
    }
}

#[test]
fn alltoall_small_message_overhead_within_paper_band() {
    // Paper: max 10.9 % at 1 byte for alltoall, dropping under 1 % quickly.
    let bench = small_bench(OsuKernel::Alltoall);
    let cluster = cluster_with(KernelVersion::CENTOS7);
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let native = latencies(&bench, &cluster, vendor, false);
        let full = latencies(&bench, &cluster, vendor, true);
        let ov_1b = (full[0] - native[0]) / native[0] * 100.0;
        assert!(
            (0.0..=25.0).contains(&ov_1b),
            "{vendor:?}: 1-byte alltoall overhead {ov_1b:.1}% outside plausible band"
        );
    }
}

#[test]
fn bcast_and_allreduce_overhead_more_visible_than_alltoall() {
    // Paper: bcast/allreduce are "more efficient" (fewer messages), so the
    // fixed interposition cost is a larger fraction — up to 17.2 %.
    let cluster = cluster_with(KernelVersion::CENTOS7);
    let vendor = Vendor::Mpich;
    let mut max_ov = [0.0f64; 3];
    for (i, kernel) in [OsuKernel::Alltoall, OsuKernel::Bcast, OsuKernel::Allreduce]
        .into_iter()
        .enumerate()
    {
        let bench = small_bench(kernel);
        let native = latencies(&bench, &cluster, vendor, false);
        let full = latencies(&bench, &cluster, vendor, true);
        max_ov[i] = native
            .iter()
            .zip(&full)
            .map(|(n, f)| (f - n) / n * 100.0)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_ov[i] < 30.0,
            "{kernel:?} overhead {:.1}% implausibly large",
            max_ov[i]
        );
    }
    assert!(
        max_ov[1] > max_ov[0] || max_ov[2] > max_ov[0],
        "bcast ({:.1}%) or allreduce ({:.1}%) should exceed alltoall ({:.1}%)",
        max_ov[1],
        max_ov[2],
        max_ov[0]
    );
}

#[test]
fn fsgsbase_kernel_feature_reduces_overhead() {
    // §5.1: "A major cause of ... overhead is the lack of a Linux kernel
    // feature on Discovery: setting the FSGSBASE register directly in
    // userspace." On a modern kernel the same stack must be cheaper.
    let bench = small_bench(OsuKernel::Bcast);
    let old = cluster_with(KernelVersion::CENTOS7);
    let new = cluster_with(KernelVersion::MODERN);
    let vendor = Vendor::Mpich;

    let native_old = latencies(&bench, &old, vendor, false);
    let full_old = latencies(&bench, &old, vendor, true);
    let native_new = latencies(&bench, &new, vendor, false);
    let full_new = latencies(&bench, &new, vendor, true);

    let ov_old = (full_old[0] - native_old[0]) / native_old[0];
    let ov_new = (full_new[0] - native_new[0]) / native_new[0];
    assert!(
        ov_new < ov_old,
        "userspace FSGSBASE should cut small-message overhead (old {:.1}%, new {:.1}%)",
        ov_old * 100.0,
        ov_new * 100.0
    );
}

fn makespan_secs(program: &dyn MpiProgram, vendor: Vendor, full_stack: bool) -> f64 {
    let cluster = cluster_with(KernelVersion::CENTOS7);
    let mut b = Session::builder().cluster(cluster).vendor(vendor);
    b = if full_stack {
        b.checkpointer(Checkpointer::mana())
    } else {
        b.native_abi()
    };
    let out = b.build().unwrap().launch(program).unwrap();
    out.makespan().as_micros_f64() / 1e6
}

#[test]
fn real_applications_see_small_overhead() {
    // Fig. 5: CoMD ≈0-5 % overhead, wave_mpi ≈0 %.
    let comd = CoMdMini {
        nsteps: 30,
        ..CoMdMini::default()
    };
    // Realistic compute-to-communication ratio: 100 grid points per rank
    // per step, as in the original wave_mpi defaults.
    let wave = WaveMpi {
        npoints: 4800,
        nsteps: 200,
        gather_final: false,
        ..WaveMpi::default()
    };
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let comd_ov =
            makespan_secs(&comd, vendor, true) / makespan_secs(&comd, vendor, false) - 1.0;
        let wave_ov =
            makespan_secs(&wave, vendor, true) / makespan_secs(&wave, vendor, false) - 1.0;
        assert!(
            comd_ov < 0.10,
            "{vendor:?}: CoMD full-stack overhead {:.1}% exceeds Fig. 5 band",
            comd_ov * 100.0
        );
        assert!(
            wave_ov < 0.05,
            "{vendor:?}: wave_mpi full-stack overhead {:.1}% exceeds Fig. 5 band",
            wave_ov * 100.0
        );
        assert!(
            comd_ov >= 0.0 && wave_ov >= 0.0,
            "interposition cannot be free"
        );
    }
}

#[test]
fn microbenchmarks_are_the_worst_case() {
    // §5.1: "micro-benchmarks represent an absolute worst case": their
    // relative overhead exceeds the real applications'.
    let vendor = Vendor::Mpich;
    let cluster = cluster_with(KernelVersion::CENTOS7);
    let bench = small_bench(OsuKernel::Bcast);
    let native = latencies(&bench, &cluster, vendor, false);
    let full = latencies(&bench, &cluster, vendor, true);
    let micro_ov = (full[0] - native[0]) / native[0];

    let wave = WaveMpi {
        npoints: 4800,
        nsteps: 200,
        gather_final: false,
        ..WaveMpi::default()
    };
    let app_ov = makespan_secs(&wave, vendor, true) / makespan_secs(&wave, vendor, false) - 1.0;
    assert!(
        micro_ov > app_ov,
        "micro overhead {:.2}% should exceed app overhead {:.2}%",
        micro_ov * 100.0,
        app_ov * 100.0
    );
}

#[test]
fn checkpoint_cost_scales_with_image_size() {
    // The coordinated checkpoint charges image-write time at the modelled
    // bandwidth: a bigger memory must take longer.
    use mpi_stool::dmtcp::CkptMode;
    use mpi_stool::stool::programs::SleepyProgram;

    struct Fat {
        bytes: usize,
    }
    impl MpiProgram for Fat {
        fn name(&self) -> &'static str {
            "fat"
        }
        fn run(&self, app: &mut mpi_stool::stool::AppCtx<'_>) -> mpi_stool::stool::StoolResult<()> {
            app.mem.bytes_mut("fat.blob", self.bytes);
            for step in app.resume_step()..3 {
                if app.checkpoint_point(step)?.is_stop() {
                    return Ok(());
                }
                app.sleep(VirtualTime::from_millis(1));
            }
            Ok(())
        }
    }

    let run_ckpt = |program: &dyn MpiProgram| {
        Session::builder()
            .cluster(cluster_with(KernelVersion::CENTOS7))
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(1, CkptMode::Continue)
            .build()
            .unwrap()
            .launch(program)
            .unwrap()
            .makespan()
    };

    let thin = run_ckpt(&SleepyProgram {
        steps: 3,
        nap: VirtualTime::from_millis(1),
    });
    let fat = run_ckpt(&Fat {
        bytes: 64 * 1024 * 1024,
    });
    assert!(
        fat > thin,
        "64 MiB of upper-half memory must checkpoint slower than ~0 bytes ({fat:?} vs {thin:?})"
    );
}
