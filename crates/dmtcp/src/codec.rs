//! The checkpoint image wire format.
//!
//! Little-endian, length-prefixed primitives with an FNV-1a checksum
//! trailer. Every multi-byte read is bounds-checked: a truncated or
//! corrupted image must fail loudly, never yield garbage state.

use std::fmt;

/// Errors raised while decoding an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the expected data.
    UnexpectedEof {
        /// Bytes needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// The checksum trailer did not match the content.
    ChecksumMismatch {
        /// Stored checksum.
        stored: u64,
        /// Computed checksum.
        computed: u64,
    },
    /// A magic/version marker did not match.
    BadMagic {
        /// What was expected.
        expected: u64,
        /// What was found.
        found: u64,
    },
    /// A string was not valid UTF-8.
    BadString,
    /// A length field exceeded sanity bounds.
    LengthOutOfBounds(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "image truncated: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "image corrupt: checksum {stored:#x} != computed {computed:#x}"
                )
            }
            CodecError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad image magic: expected {expected:#x}, found {found:#x}"
                )
            }
            CodecError::BadString => write!(f, "image contains invalid UTF-8 string"),
            CodecError::LengthOutOfBounds(l) => write!(f, "length field {l} out of bounds"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a, 64-bit, seeded: a second independent-enough hash stream used
/// together with [`fnv1a`] to form the 128-bit content key of checkpoint
/// store blocks (see [`crate::store`]).
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(29);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used as the
/// per-block integrity check of the delta-checkpoint store: unlike the
/// whole-file FNV trailer, a CRC per block localizes corruption to the
/// exact (epoch, offset) that rotted on disk.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Maximum length accepted for any single field (guards against decoding
/// garbage as a multi-gigabyte allocation).
const MAX_FIELD_LEN: u64 = 1 << 32;

/// Binary writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an i32.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 (bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Finish: append the checksum trailer and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    /// Raw buffer access (for nesting without a trailer).
    pub fn into_raw(self) -> Vec<u8> {
        self.buf
    }
}

/// Binary reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Verify the checksum trailer and return a reader over the content.
    pub fn checked(buf: &'a [u8]) -> Result<Reader<'a>, CodecError> {
        if buf.len() < 8 {
            return Err(CodecError::UnexpectedEof {
                needed: 8,
                remaining: buf.len(),
            });
        }
        let (content, trailer) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let computed = fnv1a(content);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        Ok(Reader {
            buf: content,
            pos: 0,
        })
    }

    /// Reader over raw content (no trailer).
    pub fn raw(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an i32.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read an i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u64()?;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::LengthOutOfBounds(len));
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadString)
    }

    /// Read and verify a magic marker.
    pub fn expect_magic(&mut self, expected: u64) -> Result<(), CodecError> {
        let found = self.u64()?;
        if found != expected {
            return Err(CodecError::BadMagic { expected, found });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.i64(i64::MIN);
        w.f64(std::f64::consts::PI);
        w.bytes(b"payload");
        w.string("hello \u{1F680}");
        let buf = w.finish();

        let mut r = Reader::checked(&buf).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.string().unwrap(), "hello \u{1F680}");
        assert!(r.is_exhausted());
    }

    #[test]
    fn corruption_detected() {
        let mut w = Writer::new();
        w.string("important state");
        let mut buf = w.finish();
        buf[3] ^= 0x40;
        assert!(matches!(
            Reader::checked(&buf),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(123);
        let buf = w.finish();
        assert!(matches!(
            Reader::checked(&buf[..buf.len() - 3]),
            Err(CodecError::ChecksumMismatch { .. }) | Err(CodecError::UnexpectedEof { .. })
        ));
        // Truncation *inside* the content after a valid re-checksum is
        // caught by field bounds checks.
        let mut r = Reader::raw(&buf[..4]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn magic_mismatch() {
        let mut w = Writer::new();
        w.u64(0xABCD);
        let buf = w.finish();
        let mut r = Reader::checked(&buf).unwrap();
        assert!(matches!(
            r.expect_magic(0xEF01),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2); // a fake huge length prefix
        let buf = w.into_raw();
        let mut r = Reader::raw(&buf);
        assert!(matches!(r.bytes(), Err(CodecError::LengthOutOfBounds(_))));
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn crc32_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seeded_fnv_differs_from_plain() {
        let data = b"block payload";
        assert_ne!(fnv1a(data), fnv1a_seeded(1, data));
        assert_ne!(fnv1a_seeded(1, data), fnv1a_seeded(2, data));
        assert_eq!(fnv1a_seeded(7, data), fnv1a_seeded(7, data));
    }
}
