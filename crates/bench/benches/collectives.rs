//! Criterion: real (wall-clock) cost of running the vendor collective
//! algorithms on the simulator — one bench group per paper figure's
//! collective, both vendors, small and large messages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_abi::{Datatype, Handle, MpiAbi, ReduceOp};
use muk::registry::open_vendor;
use muk::Vendor;
use simnet::{ClusterSpec, World};

fn bench_collective(
    c: &mut Criterion,
    group_name: &str,
    op: impl Fn(&mut dyn MpiAbi, &[u8], &mut [u8]) + Sync + Copy,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    let spec = ClusterSpec::builder().nodes(2).ranks_per_node(4).build();
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        for size in [64usize, 16 * 1024] {
            group.bench_with_input(BenchmarkId::new(vendor.name(), size), &size, |b, &size| {
                b.iter(|| {
                    World::run(&spec, |ctx| {
                        let mut lib = open_vendor(vendor, ctx.clone());
                        let n = ctx.nranks();
                        let send = vec![1u8; size * n];
                        let mut recv = vec![0u8; size * n];
                        for _ in 0..4 {
                            op(lib.as_mut(), &send, &mut recv);
                        }
                        Ok(())
                    })
                    .unwrap()
                });
            });
        }
    }
    group.finish();
}

fn collectives(c: &mut Criterion) {
    bench_collective(c, "alltoall", |mpi, send, recv| {
        mpi.alltoall(send, recv, Datatype::Byte.handle(), Handle::COMM_WORLD)
            .unwrap();
    });
    bench_collective(c, "bcast", |mpi, send, recv| {
        // Per-rank payload (not scaled by nranks like alltoall).
        let n = send.len().min(recv.len()) / 8;
        mpi.bcast(
            &mut recv[..n],
            Datatype::Byte.handle(),
            0,
            Handle::COMM_WORLD,
        )
        .unwrap();
    });
    bench_collective(c, "allreduce", |mpi, send, recv| {
        // Whole doubles only.
        let len = send.len() / 8 * 8;
        mpi.allreduce(
            &send[..len],
            &mut recv[..len],
            Datatype::Double.handle(),
            ReduceOp::Sum.handle(),
            Handle::COMM_WORLD,
        )
        .unwrap();
    });
}

criterion_group!(benches, collectives);
criterion_main!(benches);
