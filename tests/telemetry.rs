//! The flight recorder's own battery: ring-buffer semantics (wraparound,
//! lost-write-freedom under heavy concurrency, per-lane ordering), the
//! poison-safety of the crash-dump path, the virtual-clock sort of the
//! merged timeline, and the session-level snapshot that unifies events,
//! metrics and subsystem statistics.

use proptest::collection::vec;
use proptest::prelude::*;

use mpi_stool::simnet::{ClusterSpec, EventKind, Telemetry, TelemetryConfig};
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, Session, Vendor};

/// Wrap is flight-recorder overwrite: the ring keeps the newest events,
/// the per-kind counters keep the true totals.
#[test]
fn ring_wraparound_keeps_newest_events_and_true_counts() {
    let tel = Telemetry::with_config(
        1,
        TelemetryConfig {
            rank_ring: 8,
            ..TelemetryConfig::default()
        },
    );
    for i in 0..100u64 {
        tel.emit_rank(0, EventKind::MsgMatch, i, i, 0, 0);
    }
    assert_eq!(
        tel.emitted(EventKind::MsgMatch),
        100,
        "counters survive wrap"
    );

    let events: Vec<_> = tel.events().into_iter().filter(|e| e.lane == 0).collect();
    assert_eq!(events.len(), 8, "the ring holds its capacity");
    let vclocks: Vec<u64> = events.iter().map(|e| e.vclock_ns).collect();
    assert_eq!(
        vclocks,
        (92..100).collect::<Vec<u64>>(),
        "the survivors are the newest events, in order"
    );
}

/// ≥ 256 threads hammering the recorder concurrently: every emit is
/// counted, no torn slot becomes visible, and each lane's resident
/// events carry strictly increasing tickets (per-rank ordering).
#[test]
fn concurrent_emit_from_256_threads_loses_no_writes() {
    const THREADS: usize = 256;
    const PER_THREAD: u64 = 64;
    let nranks = 8;
    let tel = std::sync::Arc::new(Telemetry::new(nranks));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tel = tel.clone();
            s.spawn(move || {
                let lane = t % nranks;
                for i in 0..PER_THREAD {
                    tel.emit_rank(lane, EventKind::MsgMatch, i, t as u64, i, 0);
                }
            });
        }
    });

    assert_eq!(
        tel.emitted(EventKind::MsgMatch),
        (THREADS as u64) * PER_THREAD,
        "every concurrent emit is counted"
    );
    let events = tel.events();
    assert!(!events.is_empty());
    for lane in 0..nranks as u32 {
        let tickets: Vec<u64> = {
            let mut v: Vec<_> = events
                .iter()
                .filter(|e| e.lane == lane)
                .map(|e| e.ticket)
                .collect();
            v.sort_unstable();
            v
        };
        assert!(
            tickets.windows(2).all(|w| w[0] < w[1]),
            "lane {lane}: duplicate ticket surfaced — a torn or doubled slot"
        );
    }
}

/// A rank killed between the seqlock stores (mid-emit) must not deadlock
/// or corrupt the dump: the torn slot is skipped, later emits on the
/// same lane still land, and the dump writes cleanly.
#[test]
fn torn_emit_never_reaches_the_dump() {
    let tel = Telemetry::new(2);
    tel.emit_rank(0, EventKind::MsgMatch, 10, 1, 2, 3);
    tel.begin_torn_emit(0); // the writer dies here
    tel.emit_rank(0, EventKind::MsgMatch, 30, 7, 8, 9);
    tel.emit_rank(1, EventKind::MsgMatch, 20, 4, 5, 6);

    let events = tel.events();
    assert_eq!(events.len(), 3, "the torn slot must not surface");
    assert!(events.windows(2).all(|w| w[0].vclock_ns <= w[1].vclock_ns));

    let dir = std::env::temp_dir().join(format!("stool-torn-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = tel
        .write_dump(&dir, "torn-emit test")
        .expect("dump proceeds past the torn slot");
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"type\":\"event\""))
            .count(),
        3
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The one-shot dump claim: with a configured directory, the first
/// `dump()` wins and every later call is a no-op.
#[test]
fn dump_is_one_shot() {
    let dir = std::env::temp_dir().join(format!("stool-oneshot-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tel = Telemetry::with_config(
        1,
        TelemetryConfig {
            dump_dir: Some(dir.clone()),
            ..TelemetryConfig::default()
        },
    );
    tel.emit_rank(0, EventKind::MsgMatch, 1, 0, 0, 0);
    assert!(tel.dump("first").is_some());
    assert!(tel.dump("second").is_none(), "the claim is one-shot");
    assert!(tel.dump_claimed());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// However events are scattered across lanes and clocks, the merged
    /// timeline comes back sorted by virtual clock.
    #[test]
    fn merged_timeline_is_virtual_clock_sorted(
        emits in vec((0u32..6, 0u64..1_000_000), 1..200)
    ) {
        let tel = Telemetry::new(4);
        for (lane, vclock) in &emits {
            tel.emit(*lane, EventKind::MsgMatch, *vclock, 0, 0, 0);
        }
        let events = tel.events();
        prop_assert_eq!(events.len(), emits.len());
        prop_assert!(
            events.windows(2).all(|w| w[0].vclock_ns <= w[1].vclock_ns),
            "merged timeline must be virtual-clock sorted"
        );
    }
}

/// The session wires the recorder through every layer: a checkpointing
/// run surfaces transport metrics, match events, store commits and epoch
/// stats through one `Session::telemetry()` snapshot.
#[test]
fn session_snapshot_unifies_events_metrics_and_store_stats() {
    let dir = std::env::temp_dir().join(format!("stool-tel-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let session = Session::builder()
        .cluster(ClusterSpec::builder().nodes(2).ranks_per_node(2).build())
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(4)
        .checkpoint_store(&dir)
        .build()
        .unwrap();
    let out = session
        .launch(&RingPings {
            rounds: 10,
            payload: 32,
        })
        .unwrap();
    assert!(out.is_completed());

    let snap = session.telemetry().expect("snapshot after launch");
    assert_eq!(snap.incidents(), 0, "a clean run records no incidents");
    assert!(snap.dump.is_none(), "no dump without incidents");

    // Transport layer: every send and match was counted.
    let metrics = snap.metrics();
    assert!(metrics["fabric.sends"].scalar() > 0);
    assert!(metrics["match.hits"].scalar() > 0);
    assert!(snap.emitted(EventKind::MsgMatch) > 0);

    // Coordinator + store layers: one commit per completed round, and
    // the per-epoch stats ride in the same snapshot.
    let rounds = snap.emitted(EventKind::EpochCommit);
    assert!(rounds >= 2, "periodic checkpoints completed");
    assert_eq!(metrics["store.commits"].scalar(), rounds);
    assert_eq!(snap.epochs.len() as u64, rounds);
    assert_eq!(snap.tier, None, "no tier attached");
    assert_eq!(snap.replica, None, "no replica group attached");

    // The timeline is virtual-clock sorted and the checkpoint rounds
    // appear in epoch order.
    let events = snap.events();
    assert!(events.windows(2).all(|w| w[0].vclock_ns <= w[1].vclock_ns));
    let commits: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::EpochCommit)
        .map(|e| e.a)
        .collect();
    let sorted = {
        let mut v = commits.clone();
        v.sort_unstable();
        v
    };
    assert_eq!(commits, sorted, "epoch commits in epoch order");

    std::fs::remove_dir_all(&dir).ok();
}
