//! The wrap-library "dynamic loader".
//!
//! Real Mukautuva detects the underlying MPI at runtime and `dlopen`s the
//! matching wrap library by soname. This module is the analogue: a registry
//! keyed by soname strings, with [`open_wrap`] playing the role of
//! `dlopen` + `dlsym`.

use std::rc::Rc;

use mpi_abi::MpiAbi;
use simnet::RankCtx;

use crate::mpich_wrap::MpichWrap;
use crate::ompi_wrap::OmpiWrap;

/// The MPI implementations the shim can bind to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// The MPICH-flavoured library (`mpich-sim`).
    Mpich,
    /// The Open MPI-flavoured library (`ompi-sim`).
    OpenMpi,
}

impl Vendor {
    /// All known vendors.
    pub const ALL: [Vendor; 2] = [Vendor::Mpich, Vendor::OpenMpi];

    /// Short name used in reports and harness output.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Mpich => "MPICH",
            Vendor::OpenMpi => "Open MPI",
        }
    }
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The soname of the wrap library for a vendor (what Mukautuva would pass
/// to `dlopen`).
pub fn soname_for(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Mpich => "libmpich-wrap.so",
        Vendor::OpenMpi => "libompi-wrap.so",
    }
}

/// "dlopen" a wrap library by soname and initialize the vendor library
/// underneath it for this rank. Unknown sonames fail like a missing shared
/// object would.
pub fn open_wrap(soname: &str, ctx: Rc<RankCtx>) -> Result<Box<dyn MpiAbi>, String> {
    match soname {
        "libmpich-wrap.so" => Ok(Box::new(MpichWrap::open(ctx))),
        "libompi-wrap.so" => Ok(Box::new(OmpiWrap::open(ctx))),
        other => Err(format!(
            "cannot open shared object file: {other}: No such file"
        )),
    }
}

/// Convenience: open the wrap library for a vendor directly.
pub fn open_vendor(vendor: Vendor, ctx: Rc<RankCtx>) -> Box<dyn MpiAbi> {
    open_wrap(soname_for(vendor), ctx).expect("registered vendor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ClusterSpec, World};

    #[test]
    fn sonames_resolve_and_unknown_fails() {
        let spec = ClusterSpec::builder().nodes(1).ranks_per_node(1).build();
        World::run(&spec, |ctx| {
            let lib = open_wrap("libmpich-wrap.so", ctx.clone()).unwrap();
            assert!(lib.library_version().contains("mpich-sim"));
            let lib = open_wrap("libompi-wrap.so", ctx.clone()).unwrap();
            assert!(lib.library_version().contains("ompi-sim"));
            let err = match open_wrap("libmvapich-wrap.so", ctx.clone()) {
                Err(e) => e,
                Ok(_) => panic!("unknown soname must fail"),
            };
            assert!(err.contains("No such file"));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn vendor_names() {
        assert_eq!(Vendor::Mpich.to_string(), "MPICH");
        assert_eq!(Vendor::OpenMpi.to_string(), "Open MPI");
        assert_eq!(soname_for(Vendor::Mpich), "libmpich-wrap.so");
        assert_eq!(soname_for(Vendor::OpenMpi), "libompi-wrap.so");
    }
}
