//! scenario — the declarative fault-matrix runner.
//!
//! Reads a scenario matrix spec (see `benches/scenarios/matrix.toml` and
//! `docs/scenarios.md`), runs each selected row through
//! [`stool::run_scenario`], and emits one JSON object per row into a
//! `BENCH_matrix.json` that `benchgate --matrix` gates strictly.
//!
//! ```text
//! cargo run -p stool-bench --bin scenario -- --suite pr     # pinned CI subset
//! cargo run -p stool-bench --bin scenario -- --suite full   # nightly: every row
//! ```
//!
//! Exit codes: 0 = every selected scenario held its invariants, 1 = at
//! least one failed (the emit still contains the full results), 2 =
//! unusable spec or arguments.

use std::path::PathBuf;
use std::process::ExitCode;

use stool::{matrix_json, parse_matrix, run_scenario, ScenarioResult, ScenarioSpec};
use stool_bench::app_for;

struct Args {
    spec: PathBuf,
    out: PathBuf,
    suite: String,
    workdir: PathBuf,
}

fn usage() -> ! {
    // lint:allow(no-eprintln) — runner tooling reports on stderr by design.
    eprintln!(
        "usage: scenario [--spec PATH] [--out PATH] [--suite pr|full] [--workdir DIR]\n\
         defaults: --spec benches/scenarios/matrix.toml --out BENCH_matrix.json \
         --suite pr --workdir target/scenarios"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: PathBuf::from("benches/scenarios/matrix.toml"),
        out: PathBuf::from("BENCH_matrix.json"),
        suite: "pr".into(),
        workdir: PathBuf::from("target/scenarios"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--spec" => args.spec = it.next().unwrap_or_else(|| usage()).into(),
            "--out" => args.out = it.next().unwrap_or_else(|| usage()).into(),
            "--suite" => args.suite = it.next().unwrap_or_else(|| usage()),
            "--workdir" => args.workdir = it.next().unwrap_or_else(|| usage()).into(),
            _ => usage(),
        }
    }
    if args.suite != "pr" && args.suite != "full" {
        usage();
    }
    args
}

fn run() -> Result<Vec<ScenarioResult>, String> {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("cannot read {}: {e}", args.spec.display()))?;
    let specs = parse_matrix(&text).map_err(|e| format!("{}: {e}", args.spec.display()))?;
    // spec_scenarios is always the *full* matrix size, so the gate can hold
    // the ">= 24 scenarios" floor even when PR CI runs only the subset.
    let total = specs.len();
    let selected: Vec<&ScenarioSpec> = specs
        .iter()
        .filter(|s| args.suite == "full" || s.pr)
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "{}: suite '{}' selects no scenarios",
            args.spec.display(),
            args.suite
        ));
    }
    println!(
        "scenario: {} — running {} of {} rows (suite {})",
        args.spec.display(),
        selected.len(),
        total,
        args.suite
    );

    let mut results = Vec::with_capacity(selected.len());
    for spec in selected {
        let program = app_for(spec)?;
        let result = run_scenario(spec, program.as_ref(), &args.workdir);
        let verdict = if result.passed() { "ok" } else { "FAILED" };
        println!(
            "scenario: {:<28} {} ({} kills, {} recovery rounds)",
            result.name, verdict, result.kills, result.recovery_rounds
        );
        for failure in &result.failures {
            // lint:allow(no-eprintln) — runner tooling reports on stderr by design.
            eprintln!("scenario: {}: {failure}", result.name);
        }
        results.push(result);
    }

    let json = matrix_json(&args.suite, total, &results);
    std::fs::write(&args.out, &json)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("scenario: wrote {}", args.out.display());
    Ok(results)
}

fn main() -> ExitCode {
    match run() {
        Err(msg) => {
            // lint:allow(no-eprintln) — runner tooling reports on stderr by design.
            eprintln!("scenario: FAIL (invalid input): {msg}");
            ExitCode::from(2)
        }
        Ok(results) => {
            let failed = results.iter().filter(|r| !r.passed()).count();
            if failed == 0 {
                println!("scenario: PASS — all {} scenarios held", results.len());
                ExitCode::SUCCESS
            } else {
                // lint:allow(no-eprintln) — runner tooling reports on stderr by design.
                eprintln!(
                    "scenario: FAIL — {failed} of {} scenarios broke an invariant",
                    results.len()
                );
                ExitCode::FAILURE
            }
        }
    }
}
