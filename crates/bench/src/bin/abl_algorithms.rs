//! Ablation: vendor collective algorithm families at a fixed network.
//!
//! Both vendor libraries run on the *identical* cluster model; the latency
//! differences in this table are purely their collective algorithm +
//! per-message software cost choices — the reason the paper's figures show
//! two distinct curve families.
//!
//! Usage: `abl_algorithms [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use simnet::ClusterSpec;
use stool::{Session, Vendor};

fn run(kernel: OsuKernel, bench: &OsuLatency, cluster: &ClusterSpec, vendor: Vendor) -> Vec<f64> {
    let session = Session::builder()
        .cluster(cluster.clone())
        .vendor(vendor)
        .native_abi()
        .build()
        .expect("session");
    let mut b = bench.clone();
    b.kernel = kernel;
    let out = session.launch(&b).expect("run");
    out.memories().expect("completed")[0]
        .f64s("osu.lat_us")
        .expect("results")
        .to_vec()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = OsuLatency {
        kernel: OsuKernel::Alltoall,
        min_size: 1,
        max_size: if quick { 4 * 1024 } else { 256 * 1024 },
        warmup: 2,
        iters: if quick { 10 } else { 50 },
        ckpt_window: None,
    };
    let cluster = if quick {
        ClusterSpec::builder().nodes(2).ranks_per_node(4).build()
    } else {
        ClusterSpec::discovery()
    };
    println!("# Ablation: collective algorithm families (native, same network model)");
    for kernel in [OsuKernel::Alltoall, OsuKernel::Bcast, OsuKernel::Allreduce] {
        let mpich = run(kernel, &bench, &cluster, Vendor::Mpich);
        let ompi = run(kernel, &bench, &cluster, Vendor::OpenMpi);
        println!("## {kernel:?}");
        println!(
            "{:>10} {:>14} {:>14} {:>10}",
            "Size(B)", "MPICH(us)", "OpenMPI(us)", "ratio"
        );
        for (i, size) in bench.sizes().iter().enumerate() {
            println!(
                "{:>10} {:>14.2} {:>14.2} {:>10.2}",
                size,
                mpich[i],
                ompi[i],
                mpich[i] / ompi[i]
            );
        }
    }
}
