//! Standardized predefined reduction operations.

use crate::handle::{Handle, HandleKind};

/// The predefined reduction operations of the standard ABI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `MPI_SUM`.
    Sum,
    /// `MPI_PROD`.
    Prod,
    /// `MPI_MIN`.
    Min,
    /// `MPI_MAX`.
    Max,
    /// `MPI_LAND` — logical and.
    Land,
    /// `MPI_LOR` — logical or.
    Lor,
    /// `MPI_LXOR` — logical xor.
    Lxor,
    /// `MPI_BAND` — bitwise and.
    Band,
    /// `MPI_BOR` — bitwise or.
    Bor,
    /// `MPI_BXOR` — bitwise xor.
    Bxor,
}

impl ReduceOp {
    /// All predefined operations, in ABI index order.
    pub const ALL: [ReduceOp; 10] = [
        ReduceOp::Sum,
        ReduceOp::Prod,
        ReduceOp::Min,
        ReduceOp::Max,
        ReduceOp::Land,
        ReduceOp::Lor,
        ReduceOp::Lxor,
        ReduceOp::Band,
        ReduceOp::Bor,
        ReduceOp::Bxor,
    ];

    /// The ABI handle index (1-based; 0 is `MPI_OP_NULL`).
    pub const fn abi_index(self) -> u32 {
        match self {
            ReduceOp::Sum => 1,
            ReduceOp::Prod => 2,
            ReduceOp::Min => 3,
            ReduceOp::Max => 4,
            ReduceOp::Land => 5,
            ReduceOp::Lor => 6,
            ReduceOp::Lxor => 7,
            ReduceOp::Band => 8,
            ReduceOp::Bor => 9,
            ReduceOp::Bxor => 10,
        }
    }

    /// The standardized handle value.
    pub const fn handle(self) -> Handle {
        Handle::predefined(HandleKind::Op, self.abi_index())
    }

    /// Recover the operation from a standardized handle, if predefined.
    pub fn from_handle(h: Handle) -> Option<ReduceOp> {
        if h.kind() != HandleKind::Op {
            return None;
        }
        ReduceOp::ALL
            .into_iter()
            .find(|o| o.abi_index() == h.index())
    }

    /// Whether this operation is commutative (all predefined ops are; the
    /// distinction matters for user-defined ops, where non-commutative ops
    /// restrict the reduction tree shapes a library may use).
    pub const fn is_commutative(self) -> bool {
        true
    }

    /// Whether the op is defined for non-numeric types (`Byte`/`Char`):
    /// only the bitwise family is.
    pub const fn is_bitwise(self) -> bool {
        matches!(self, ReduceOp::Band | ReduceOp::Bor | ReduceOp::Bxor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_round_trip() {
        for op in ReduceOp::ALL {
            assert_eq!(ReduceOp::from_handle(op.handle()), Some(op));
            assert!(op.handle().is_predefined());
        }
    }

    #[test]
    fn null_and_foreign_handles_rejected() {
        assert_eq!(ReduceOp::from_handle(Handle::OP_NULL), None);
        assert_eq!(ReduceOp::from_handle(Handle::COMM_WORLD), None);
    }

    #[test]
    fn indices_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for op in ReduceOp::ALL {
            assert!(seen.insert(op.abi_index()));
            assert_ne!(op.abi_index(), 0);
        }
    }

    #[test]
    fn bitwise_classification() {
        assert!(ReduceOp::Band.is_bitwise());
        assert!(!ReduceOp::Sum.is_bitwise());
    }
}
