//! Criterion: the delta-checkpoint store — full-base vs delta bytes
//! written, the bytes-hashed savings of dirty-segment tracking, the
//! on-disk savings of per-block compression, commit/load throughput, and
//! the sync vs async checkpoint latency the store buys on the wave/CoMD
//! workloads.
//!
//! As a side effect (in both `cargo bench` and `--test` smoke mode) this
//! bench emits `BENCH_ckpt.json` in the working directory so CI records
//! the perf trajectory: per-workload full vs delta bytes, bytes hashed
//! per delta epoch with and without dirty tracking, on-disk delta bytes
//! with and without compression, the wall-clock commit makespan, and the
//! virtual-time makespan with synchronous image writes vs the async
//! store.

use criterion::{criterion_group, criterion_main, Criterion};
use dmtcp_sim::store::{Compression, DeltaStore, StoreConfig};
use dmtcp_sim::tier::{FsTier, ObjectTier};
use dmtcp_sim::WorldImage;
use mpi_apps::{CoMdMini, WaveMpi};
use simnet::ClusterSpec;
use stool::{Checkpointer, ManaConfig, MpiProgram, Session, StoreError, Vendor};

fn bench_cluster() -> ClusterSpec {
    ClusterSpec::builder().nodes(2).ranks_per_node(3).build()
}

/// The store with this PR's cost reducers on (the defaults).
fn store_cfg() -> StoreConfig {
    StoreConfig {
        block_size: 1024,
        retain_epochs: 32,
        max_chain: 16,
        ..StoreConfig::default()
    }
}

/// The PR 2 path: every byte hashed every epoch, raw blocks on disk.
fn legacy_cfg() -> StoreConfig {
    StoreConfig {
        compression: Compression::None,
        dirty_tracking: false,
        ..store_cfg()
    }
}

/// MANA with a realistic static upper half: program text + rodata that
/// every rank image carries but no epoch ever changes (64 KiB models a
/// small binary; real MANA images are dominated by this part).
fn bench_mana() -> Checkpointer {
    Checkpointer::Mana(ManaConfig {
        static_image_bytes: 64 << 10,
        ..ManaConfig::default()
    })
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stool_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct WorkloadRow {
    name: &'static str,
    epochs: usize,
    full_bytes: u64,
    delta_bytes_avg: u64,
    delta_raw_bytes_avg: u64,
    hashed_dirty_avg: u64,
    hashed_full_avg: u64,
    image_bytes: u64,
    /// Average bytes shipped to the remote tier per sealed epoch
    /// (blocks + manifest + seal; only content-new blocks ship, so
    /// `image_bytes / tier_shipped_bytes_avg` is the dedup-at-tier
    /// ratio the gate tracks).
    tier_shipped_bytes_avg: u64,
    commit_wall_ms: f64,
    sync_makespan_s: f64,
    async_makespan_s: f64,
}

/// Average a per-delta-epoch metric.
fn delta_avg(stats: &[dmtcp_sim::EpochStats], f: impl Fn(&dmtcp_sim::EpochStats) -> u64) -> u64 {
    let deltas: Vec<u64> = stats.iter().filter(|s| !s.full).map(&f).collect();
    if deltas.is_empty() {
        0
    } else {
        deltas.iter().sum::<u64>() / deltas.len() as u64
    }
}

/// Run one workload with periodic checkpoints three ways — sync (no
/// store), the current store (dirty tracking + compression), and the
/// PR 2 full-hash/raw-block store — and measure what each epoch cost.
fn measure_workload(
    name: &'static str,
    program: &dyn MpiProgram,
    every: u64,
) -> Result<WorkloadRow, StoreError> {
    let run = |store: Option<(&std::path::Path, StoreConfig, Option<&std::path::Path>)>| {
        let mut builder = Session::builder()
            .cluster(bench_cluster())
            .vendor(Vendor::Mpich)
            .checkpointer(bench_mana())
            .checkpoint_every(every);
        if let Some((dir, cfg, tier)) = store {
            builder = builder.checkpoint_store_with(dir, cfg);
            if let Some(tier_dir) = tier {
                builder = builder.checkpoint_tier(tier_dir);
            }
        }
        let session = builder.build().expect("session");
        session.launch(program).expect("launch")
    };

    let sync_out = run(None);
    let dir = tmp_dir(name);
    // The modern run ships every sealed epoch to a remote second tier.
    let tier_dir = tmp_dir(&format!("{name}_tier"));
    let async_out = run(Some((&dir, store_cfg(), Some(&tier_dir))));
    let dir_legacy = tmp_dir(&format!("{name}_legacy"));
    run(Some((&dir_legacy, legacy_cfg(), None)));

    // Dedup at the tier: each sealed epoch uploaded only its new blocks
    // plus manifest and seal. Sum what actually landed remotely.
    let tier = FsTier::open(&tier_dir)?;
    let mut tier_bytes = 0u64;
    let mut sealed_epochs = 0u64;
    for key in tier.list("")? {
        tier_bytes += tier.get(&key)?.len() as u64;
        if key.ends_with("/seal") {
            sealed_epochs += 1;
        }
    }
    let tier_shipped_bytes_avg = tier_bytes / sealed_epochs.max(1);

    let store = DeltaStore::open_with(&dir, store_cfg())?;
    let stats = store.epoch_stats_on_disk()?;
    let legacy = DeltaStore::open_with(&dir_legacy, legacy_cfg())?;
    let legacy_stats = legacy.epoch_stats_on_disk()?;

    // Wall-clock commit makespan: replay the chain's epochs through a
    // fresh store (chunk + hash + compress + write, the background
    // writer's whole pipeline).
    let epochs: Vec<WorldImage> = store
        .epochs()
        .iter()
        .map(|&e| store.load_epoch(e))
        .collect::<Result<_, _>>()?;
    let replay_dir = tmp_dir(&format!("{name}_replay"));
    let mut replay = DeltaStore::open_with(&replay_dir, store_cfg())?;
    let t0 = std::time::Instant::now();
    for img in &epochs {
        replay.commit(img)?;
    }
    let commit_wall_ms = t0.elapsed().as_secs_f64() * 1e3 / epochs.len().max(1) as f64;

    let row = WorkloadRow {
        name,
        epochs: stats.len(),
        full_bytes: stats
            .iter()
            .find(|s| s.full)
            .map(|s| s.bytes_written)
            .unwrap_or(0),
        delta_bytes_avg: delta_avg(&stats, |s| s.bytes_written),
        delta_raw_bytes_avg: delta_avg(&legacy_stats, |s| s.bytes_written),
        hashed_dirty_avg: delta_avg(&stats, |s| s.bytes_hashed),
        hashed_full_avg: delta_avg(&legacy_stats, |s| s.bytes_hashed),
        image_bytes: stats.last().map(|s| s.image_bytes).unwrap_or(0),
        tier_shipped_bytes_avg,
        commit_wall_ms,
        sync_makespan_s: sync_out.makespan().as_secs_f64(),
        async_makespan_s: async_out.makespan().as_secs_f64(),
    };
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_legacy).ok();
    std::fs::remove_dir_all(&replay_dir).ok();
    std::fs::remove_dir_all(&tier_dir).ok();
    Ok(row)
}

fn emit_json(rows: &[WorkloadRow]) {
    let mut json = String::from("{\n  \"bench\": \"ckpt_store\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"epochs\": {}, \"full_base_bytes\": {}, \
             \"delta_bytes_avg\": {}, \"delta_raw_bytes_avg\": {}, \
             \"hashed_dirty_avg\": {}, \"hashed_full_avg\": {}, \
             \"image_bytes\": {}, \"tier_shipped_bytes_avg\": {}, \
             \"commit_wall_ms\": {:.6}, \
             \"sync_makespan_s\": {:.9}, \"async_makespan_s\": {:.9}}}{}\n",
            r.name,
            r.epochs,
            r.full_bytes,
            r.delta_bytes_avg,
            r.delta_raw_bytes_avg,
            r.hashed_dirty_avg,
            r.hashed_full_avg,
            r.image_bytes,
            r.tier_shipped_bytes_avg,
            r.commit_wall_ms,
            r.sync_makespan_s,
            r.async_makespan_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    // Land at the workspace root regardless of the bench CWD, so CI picks
    // one stable path up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ckpt.json");
    std::fs::write(path, json).expect("write BENCH_ckpt.json");
}

/// Produce a realistic multi-epoch image sequence from a wave run (used by
/// the commit/load throughput benches).
fn wave_image(step: u64) -> WorldImage {
    let program = WaveMpi {
        npoints: 20_000,
        nsteps: 40,
        gather_final: false,
        ..WaveMpi::default()
    };
    Session::builder()
        .cluster(bench_cluster())
        .vendor(Vendor::Mpich)
        .checkpointer(bench_mana())
        .checkpoint_at_step(step, dmtcp_sim::CkptMode::Stop)
        .build()
        .unwrap()
        .launch(&program)
        .unwrap()
        .into_image()
        .unwrap()
}

fn store_benches(c: &mut Criterion) {
    // The measured rows (also what BENCH_ckpt.json records).
    let wave = WaveMpi {
        npoints: 20_000,
        nsteps: 40,
        gather_final: false,
        ..WaveMpi::default()
    };
    let comd = CoMdMini {
        nsteps: 24,
        ..CoMdMini::default()
    };
    let rows = vec![
        measure_workload("wave_mpi", &wave, 8).expect("wave row"),
        measure_workload("CoMD", &comd, 6).expect("comd row"),
    ];
    let ship_model = ManaConfig::default();
    for r in &rows {
        println!(
            "store/{}: {} epochs, full base {} B, avg delta {} B (raw {} B, \
             {:.2}x compression), hashed/delta {} B dirty vs {} B full \
             ({:.2}x less hashing), image {} B, tier ship {} B/epoch \
             ({:.2}x dedup at tier, modelled {:.3} ms undurable), \
             commit {:.3} ms, makespan sync {:.6} s vs async {:.6} s",
            r.name,
            r.epochs,
            r.full_bytes,
            r.delta_bytes_avg,
            r.delta_raw_bytes_avg,
            r.delta_raw_bytes_avg as f64 / r.delta_bytes_avg.max(1) as f64,
            r.hashed_dirty_avg,
            r.hashed_full_avg,
            r.hashed_full_avg as f64 / r.hashed_dirty_avg.max(1) as f64,
            r.image_bytes,
            r.tier_shipped_bytes_avg,
            r.image_bytes as f64 / r.tier_shipped_bytes_avg.max(1) as f64,
            ship_model
                .tier_ship_time(r.tier_shipped_bytes_avg as usize)
                .as_micros_f64()
                / 1e3,
            r.commit_wall_ms,
            r.sync_makespan_s,
            r.async_makespan_s,
        );
    }
    emit_json(&rows);

    // Wall-clock throughput of the store primitives on real images.
    let img1 = wave_image(10);
    let img2 = wave_image(20);
    let mut group = c.benchmark_group("ckpt_store");
    group.sample_size(10);
    group.bench_function("commit_full", |b| {
        b.iter(|| {
            let dir = tmp_dir("commit_full");
            let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
            let s = store.commit(&img1).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            s.bytes_written
        });
    });
    group.bench_function("commit_delta", |b| {
        b.iter(|| {
            let dir = tmp_dir("commit_delta");
            let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
            store.commit(&img1).unwrap();
            let s = store.commit(&img2).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            s.bytes_written
        });
    });
    {
        let dir = tmp_dir("load");
        let mut store = DeltaStore::open_with(&dir, store_cfg()).unwrap();
        store.commit(&img1).unwrap();
        store.commit(&img2).unwrap();
        group.bench_function("load_latest_from_chain", |b| {
            b.iter(|| store.load_latest().unwrap().total_bytes());
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, store_benches);
criterion_main!(benches);
