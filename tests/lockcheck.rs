//! Lockcheck battery (runs only with `--features lockcheck`): the
//! runtime lock-order detector must flag an intentional two-mutex
//! cycle and a guard carried into a real rendezvous point, and both
//! must surface as `LockCycle` events in a flight-recorder dump.
//!
//! Everything lives in ONE `#[test]`: the incident buffer is
//! process-global and `take_incidents` drains it, so parallel tests
//! would steal each other's reports.

#![cfg(feature = "lockcheck")]

use std::sync::Arc;

use mpi_stool::sanity::lockcheck::{self, LockIncident, TrackedMutex};
use mpi_stool::simnet::pool::WorkerPool;
use mpi_stool::simnet::{Telemetry, TelemetryConfig};

#[test]
fn cycle_and_rendezvous_incidents_reach_the_flight_dump() {
    assert!(lockcheck::enabled());

    // Drop whatever earlier crate init left behind so the assertions
    // below are about the hazards seeded here.
    let _ = lockcheck::take_incidents();

    // 1. An intentional ordering cycle: A→B recorded, then B→A closes it.
    let a = TrackedMutex::named("test.cycle_a", 0u32);
    let b = TrackedMutex::named("test.cycle_b", 0u32);
    {
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
    }
    {
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
    }

    // 2. A guard carried into a real rendezvous point: the worker
    //    pool's gang admission declares a crossing before it parks.
    let pool = WorkerPool::new(2);
    {
        let _guard = a.lock().unwrap();
        let _permits = pool.acquire(1);
    }

    let incidents = lockcheck::take_incidents();
    assert!(
        incidents.iter().any(|i| matches!(
            i,
            LockIncident::Cycle { held, acquire }
                if held == "test.cycle_b" && acquire == "test.cycle_a"
        )),
        "the seeded B→A acquisition must close a cycle, got {incidents:?}"
    );
    assert!(
        incidents.iter().any(|i| matches!(
            i,
            LockIncident::GuardAcrossRendezvous { barrier, held }
                if barrier == "pool.acquire" && held.contains(&"test.cycle_a".to_string())
        )),
        "the guard carried into pool.acquire must be reported, got {incidents:?}"
    );

    // 3. Through the flight recorder: the incidents become LockCycle
    //    events and force a dump, exactly as the session layer does.
    let dir = std::env::temp_dir().join(format!("stool-lockcheck-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tel = Arc::new(Telemetry::with_config(
        1,
        TelemetryConfig {
            dump_dir: Some(dir.clone()),
            ..TelemetryConfig::default()
        },
    ));
    tel.note_lock_incidents(tel.coord_lane(), &incidents);
    assert_eq!(tel.incidents(), incidents.len() as u64);

    let path = tel
        .dump("lockcheck battery")
        .expect("incidents must produce a dump");
    let dump = std::fs::read_to_string(&path).expect("dump readable");
    assert!(
        dump.contains("LockCycle"),
        "dump at {} must carry LockCycle events:\n{dump}",
        path.display()
    );
    std::fs::remove_dir_all(&dir).ok();
}
