//! Data collection for each figure.

use mpi_apps::{CoMdMini, OsuKernel, OsuLatency, WaveMpi};
use simnet::{median, stddev, ClusterSpec, VirtualTime};
use stool::{CkptMode, MpiProgram, Session, StoolResult, Vendor};

use crate::configs::ConfigKind;
use crate::report::Series;

/// One OSU figure (Figs. 2–4): four config series over message sizes.
#[derive(Debug, Clone)]
pub struct OsuFigure {
    /// The collective measured.
    pub kernel: OsuKernel,
    /// Message sizes (bytes).
    pub sizes: Vec<usize>,
    /// The four series in legend order.
    pub series: Vec<Series>,
}

impl OsuFigure {
    /// Per-size relative overhead (%) of a full config over its native
    /// counterpart.
    pub fn overhead_pct(&self, full: ConfigKind) -> Vec<f64> {
        let native = full.native_of();
        let f = self
            .series
            .iter()
            .find(|s| s.label == full.label())
            .expect("series");
        let n = self
            .series
            .iter()
            .find(|s| s.label == native.label())
            .expect("series");
        f.median_us
            .iter()
            .zip(&n.median_us)
            .map(|(a, b)| (a / b - 1.0) * 100.0)
            .collect()
    }

    /// The maximum relative overhead across sizes and vendors (the
    /// paper's headline numbers: 10.9 % alltoall, 17.2 % bcast/allreduce).
    pub fn max_overhead_pct(&self) -> f64 {
        [ConfigKind::MpichFull, ConfigKind::OmpiFull]
            .into_iter()
            .flat_map(|k| self.overhead_pct(k))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Run one OSU kernel across the four configurations, `repeats` times
/// each (the paper: 5), with measurement noise when `rel_sigma > 0`.
pub fn osu_figure(
    kernel: OsuKernel,
    cluster_for: impl Fn(u64) -> ClusterSpec,
    bench: &OsuLatency,
    repeats: u64,
) -> StoolResult<OsuFigure> {
    let sizes = bench.sizes();
    let mut series = Vec::new();
    for kind in ConfigKind::ALL {
        let mut per_repeat: Vec<Vec<f64>> = Vec::new();
        for rep in 0..repeats {
            let session = kind.session(cluster_for(rep))?;
            let out = session.launch(bench)?;
            let mem = &out.memories()?[0];
            per_repeat.push(mem.f64s("osu.lat_us").expect("osu results").to_vec());
        }
        let median_us: Vec<f64> = (0..sizes.len())
            .map(|i| median(&per_repeat.iter().map(|r| r[i]).collect::<Vec<_>>()))
            .collect();
        let stddev_us: Vec<f64> = (0..sizes.len())
            .map(|i| stddev(&per_repeat.iter().map(|r| r[i]).collect::<Vec<_>>()))
            .collect();
        series.push(Series {
            label: kind.label().to_string(),
            median_us,
            stddev_us,
        });
    }
    Ok(OsuFigure {
        kernel,
        sizes,
        series,
    })
}

/// One bar of Fig. 5: an application under one configuration.
#[derive(Debug, Clone)]
pub struct AppBar {
    /// Application name.
    pub app: &'static str,
    /// Configuration label.
    pub config: String,
    /// Median completion time (seconds).
    pub median_s: f64,
    /// Standard deviation across repeats (seconds).
    pub stddev_s: f64,
}

/// Fig. 5: CoMD and wave_mpi completion times under the four configs.
pub fn fig5_data(
    cluster_for: impl Fn(u64) -> ClusterSpec,
    comd: &CoMdMini,
    wave: &WaveMpi,
    repeats: u64,
) -> StoolResult<Vec<AppBar>> {
    let mut bars = Vec::new();
    let apps: [(&'static str, &dyn MpiProgram); 2] = [("CoMD", comd), ("wave_mpi", wave)];
    for (app_name, program) in apps {
        for kind in ConfigKind::ALL {
            let mut times = Vec::new();
            for rep in 0..repeats {
                let session = kind.session(cluster_for(rep))?;
                let out = session.launch(program)?;
                times.push(out.makespan().as_secs_f64());
            }
            bars.push(AppBar {
                app: app_name,
                config: kind.label().to_string(),
                median_s: median(&times),
                stddev_s: stddev(&times),
            });
        }
    }
    Ok(bars)
}

/// Fig. 6: the cross-vendor restart experiment.
#[derive(Debug, Clone)]
pub struct RestartFigure {
    /// Message sizes.
    pub sizes: Vec<usize>,
    /// "Launch with Open MPI" (full stack, uninterrupted).
    pub launch_ompi: Series,
    /// "Launch with MPICH" (full stack, uninterrupted).
    pub launch_mpich: Series,
    /// "Launch with Open MPI, restart with MPICH".
    pub restarted: Series,
}

/// Run the Fig. 6 experiment: the modified alltoall benchmark (post-warmup
/// sleep window) is launched under Open MPI + Mukautuva + MANA, checkpointed
/// during the window, stopped, and restarted under MPICH; its measurements
/// land after the restart. The two uninterrupted runs are the references.
pub fn fig6_data(
    cluster_for: impl Fn(u64) -> ClusterSpec,
    bench: &OsuLatency,
) -> StoolResult<RestartFigure> {
    let sizes = bench.sizes();
    let mut modified = bench.clone();
    modified.ckpt_window = Some(VirtualTime::from_secs(10));

    let run_full = |vendor: Vendor| -> StoolResult<Series> {
        let session = ConfigKind::ALL
            .into_iter()
            .find(|k| k.is_full() && k.vendor() == vendor)
            .expect("full config")
            .session(cluster_for(0))?;
        let out = session.launch(&modified)?;
        let lat = out.memories()?[0]
            .f64s("osu.lat_us")
            .expect("results")
            .to_vec();
        Ok(Series {
            label: format!("Launch with {}", vendor.name()),
            median_us: lat,
            stddev_us: vec![0.0; sizes.len()],
        })
    };

    let launch_ompi = run_full(Vendor::OpenMpi)?;
    let launch_mpich = run_full(Vendor::Mpich)?;

    // Checkpoint during the sleep window (safe-point step 1 is the first
    // point after the window), stop, restart under MPICH.
    let launch = Session::builder()
        .cluster(cluster_for(0))
        .vendor(Vendor::OpenMpi)
        .checkpointer(stool::Checkpointer::mana())
        .checkpoint_at_step(1, CkptMode::Stop)
        .build()?;
    let image = launch.launch(&modified)?.into_image()?;
    assert_eq!(image.vendor_hint, "Open MPI");

    let restart = Session::builder()
        .cluster(cluster_for(0))
        .vendor(Vendor::Mpich)
        .checkpointer(stool::Checkpointer::mana())
        .build()?;
    let out = restart.restore(&image, &modified)?;
    let lat = out.memories()?[0]
        .f64s("osu.lat_us")
        .expect("results")
        .to_vec();
    let restarted = Series {
        label: "Launch with Open MPI, restart with MPICH".to_string(),
        median_us: lat,
        stddev_us: vec![0.0; sizes.len()],
    };

    Ok(RestartFigure {
        sizes,
        launch_ompi,
        launch_mpich,
        restarted,
    })
}

/// The Fig. 6 experiment routed through the asynchronous delta-checkpoint
/// store: the checkpoint-and-stop epoch lands on disk as an epoch chain
/// (not an in-memory image), and the restart under MPICH reconstructs the
/// world from the chain — the paper's scenario with persistence included.
pub fn fig6_data_via_store(
    cluster_for: impl Fn(u64) -> ClusterSpec,
    bench: &OsuLatency,
    store_dir: &std::path::Path,
) -> StoolResult<RestartFigure> {
    let sizes = bench.sizes();
    let mut modified = bench.clone();
    modified.ckpt_window = Some(VirtualTime::from_secs(10));

    let run_full = |vendor: Vendor| -> StoolResult<Series> {
        let session = ConfigKind::ALL
            .into_iter()
            .find(|k| k.is_full() && k.vendor() == vendor)
            .expect("full config")
            .session(cluster_for(0))?;
        let out = session.launch(&modified)?;
        let lat = out.memories()?[0]
            .f64s("osu.lat_us")
            .expect("results")
            .to_vec();
        Ok(Series {
            label: format!("Launch with {}", vendor.name()),
            median_us: lat,
            stddev_us: vec![0.0; sizes.len()],
        })
    };

    let launch_ompi = run_full(Vendor::OpenMpi)?;
    let launch_mpich = run_full(Vendor::Mpich)?;

    let _ = std::fs::remove_dir_all(store_dir);
    let launch = Session::builder()
        .cluster(cluster_for(0))
        .vendor(Vendor::OpenMpi)
        .checkpointer(stool::Checkpointer::mana())
        .checkpoint_at_step(1, CkptMode::Stop)
        .checkpoint_store(store_dir)
        .build()?;
    let out = launch.launch(&modified)?;
    assert!(matches!(out, stool::RunOutcome::Checkpointed { .. }));

    let restart = Session::builder()
        .cluster(cluster_for(0))
        .vendor(Vendor::Mpich)
        .checkpointer(stool::Checkpointer::mana())
        .checkpoint_store(store_dir)
        .build()?;
    let out = restart.restore_from_store(&modified)?;
    let lat = out.memories()?[0]
        .f64s("osu.lat_us")
        .expect("results")
        .to_vec();
    let restarted = Series {
        label: "Launch with Open MPI, restart with MPICH (from delta chain)".to_string(),
        median_us: lat,
        stddev_us: vec![0.0; sizes.len()],
    };

    Ok(RestartFigure {
        sizes,
        launch_ompi,
        launch_mpich,
        restarted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::quick_cluster;

    fn tiny_osu(kernel: OsuKernel) -> OsuLatency {
        OsuLatency {
            kernel,
            min_size: 1,
            max_size: 16,
            warmup: 1,
            iters: 4,
            ckpt_window: None,
        }
    }

    #[test]
    fn osu_figure_has_four_series_and_positive_overheads() {
        let bench = tiny_osu(OsuKernel::Bcast);
        let fig = osu_figure(OsuKernel::Bcast, |r| quick_cluster(r, 0.0), &bench, 1).unwrap();
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.sizes, vec![1, 2, 4, 8, 16]);
        for kind in [ConfigKind::MpichFull, ConfigKind::OmpiFull] {
            for o in fig.overhead_pct(kind) {
                assert!(o > 0.0, "interposition must cost something: {o}");
            }
        }
        assert!(fig.max_overhead_pct() > 0.0);
    }

    #[test]
    fn fig6_via_store_matches_in_memory_fig6() {
        let bench = tiny_osu(OsuKernel::Alltoall);
        let dir = std::env::temp_dir().join(format!("stool-fig6-store-{}", std::process::id()));
        let fig = fig6_data(|r| quick_cluster(r, 0.0), &bench).unwrap();
        let via = fig6_data_via_store(|r| quick_cluster(r, 0.0), &bench, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Persisting the checkpoint as a delta chain and restarting from
        // it must not change the measured latencies at all.
        for (a, b) in via.restarted.median_us.iter().zip(&fig.restarted.median_us) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "store roundtrip changed a latency"
            );
        }
    }

    #[test]
    fn fig6_restarted_series_matches_mpich_shape() {
        let bench = tiny_osu(OsuKernel::Alltoall);
        let fig = fig6_data(|r| quick_cluster(r, 0.0), &bench).unwrap();
        assert_eq!(fig.restarted.median_us.len(), fig.sizes.len());
        // After restarting under MPICH, the measured latencies must equal
        // the launch-with-MPICH reference exactly (deterministic clock,
        // identical post-restart execution).
        for (a, b) in fig
            .restarted
            .median_us
            .iter()
            .zip(&fig.launch_mpich.median_us)
        {
            let rel = (a - b).abs() / b.max(1e-9);
            assert!(rel < 0.05, "restarted {a} vs mpich {b}");
        }
    }
}
