//! The CI perf-regression gate: strict parsing and baseline comparison of
//! the `BENCH_ckpt.json` / `BENCH_scale.json` artifacts.
//!
//! The bench harnesses emit these files on every CI run; this module is
//! what turns them from write-only artifacts into a recorded perf
//! trajectory. [`parse_json`] is a strict, dependency-free JSON reader
//! (the workspace has no registry access, hence no serde); the schema
//! checks reject *any* malformed emit — a bench that writes a broken file
//! fails CI instead of uploading garbage — and [`compare`] fails the job
//! when a deterministic metric regresses beyond the tolerance against the
//! committed baselines under `benches/baselines/`.
//!
//! Gating policy: **virtual-time** metrics (makespans, delta-bytes
//! ratios) are deterministic, so they gate hard at ±15%. **Wall-clock**
//! metrics (the flat-vs-tree rendezvous latency curves) depend on the CI
//! machine and only warn.

use std::collections::BTreeMap;
use std::fmt;

/// Fractional regression tolerance for deterministic metrics (15%).
pub const TOLERANCE: f64 = 0.15;

/// How much slower than the flat barrier the tree barrier may measure at
/// the largest world before the gate fails. The two are timed
/// back-to-back on the same machine, so this same-run ratio check is
/// robust where absolute wall-clock gating would flake.
pub const TREE_HEADROOM: f64 = 0.25;

// ---------------------------------------------------------------------------
// Minimal strict JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64; the benches emit nothing larger).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not significant.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, or a schema error naming `what`.
    pub fn obj(&self, what: &str) -> Result<&BTreeMap<String, Json>, GateError> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(GateError::schema(format!(
                "{what}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array, or a schema error naming `what`.
    pub fn arr(&self, what: &str) -> Result<&[Json], GateError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(GateError::schema(format!(
                "{what}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as a finite number, or a schema error naming `what`.
    pub fn num(&self, what: &str) -> Result<f64, GateError> {
        match self {
            Json::Num(x) if x.is_finite() => Ok(*x),
            Json::Num(_) => Err(GateError::schema(format!("{what}: non-finite number"))),
            other => Err(GateError::schema(format!(
                "{what}: expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as a string, or a schema error naming `what`.
    pub fn str(&self, what: &str) -> Result<&str, GateError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(GateError::schema(format!(
                "{what}: expected string, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Why the gate failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The input was not valid JSON.
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// The input parsed but violated the bench schema.
    Schema(String),
}

impl GateError {
    fn schema(msg: impl Into<String>) -> GateError {
        GateError::Schema(msg.into())
    }
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Parse { at, msg } => write!(f, "invalid JSON at byte {at}: {msg}"),
            GateError::Schema(msg) => write!(f, "schema violation: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, GateError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> GateError {
        GateError::Parse {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), GateError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, GateError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, GateError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, GateError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, GateError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, GateError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control byte in string")),
                _ => {
                    // Re-assemble UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8 bytes"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, GateError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

// ---------------------------------------------------------------------------
// Bench report schemas
// ---------------------------------------------------------------------------

/// One workload row of `BENCH_ckpt.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptRow {
    /// Workload name ("wave_mpi", "CoMD").
    pub name: String,
    /// Committed epochs.
    pub epochs: f64,
    /// Bytes of the first full base epoch.
    pub full_base_bytes: f64,
    /// Average delta-epoch bytes on disk (compression on — the default
    /// store configuration).
    pub delta_bytes_avg: f64,
    /// Average delta-epoch bytes on disk with compression off (the PR 2
    /// raw-block path, measured from a parallel run).
    pub delta_raw_bytes_avg: f64,
    /// Average bytes chunked + hashed per delta epoch with dirty-segment
    /// tracking on (clean hinted sections skipped).
    pub hashed_dirty_avg: f64,
    /// Average bytes chunked + hashed per delta epoch on the full-hash
    /// path (dirty tracking off).
    pub hashed_full_avg: f64,
    /// Logical image bytes of the last epoch.
    pub image_bytes: f64,
    /// Average bytes shipped to the remote second tier per sealed epoch
    /// (new blocks + manifest + seal — the dedup-at-tier cost).
    pub tier_shipped_bytes_avg: f64,
    /// Wall-clock milliseconds per commit when replaying the chain
    /// (machine-dependent: warns, never gates).
    pub commit_wall_ms: f64,
    /// Virtual makespan with synchronous image writes.
    pub sync_makespan_s: f64,
    /// Virtual makespan with the async delta store attached.
    pub async_makespan_s: f64,
}

impl CkptRow {
    /// Full-base over average-delta bytes: how much the delta chain saves.
    pub fn delta_ratio(&self) -> f64 {
        self.full_base_bytes / self.delta_bytes_avg.max(1.0)
    }

    /// Full-hash over dirty-tracked bytes hashed per delta epoch: how
    /// much hashing the clean-segment hints skip (deterministic).
    pub fn hash_skip_ratio(&self) -> f64 {
        self.hashed_full_avg / self.hashed_dirty_avg.max(1.0)
    }

    /// Raw over compressed on-disk delta bytes: what per-block
    /// compression saves (deterministic).
    pub fn compression_ratio(&self) -> f64 {
        self.delta_raw_bytes_avg / self.delta_bytes_avg.max(1.0)
    }

    /// Logical image bytes over average bytes shipped per sealed epoch:
    /// how much content-keyed dedup saves at the remote tier
    /// (deterministic — only new blocks ship).
    pub fn tier_dedup_ratio(&self) -> f64 {
        self.image_bytes / self.tier_shipped_bytes_avg.max(1.0)
    }
}

/// One `(ranks, vendor)` virtual-time row of `BENCH_scale.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// World size.
    pub ranks: f64,
    /// Vendor label ("MPICH", "Open MPI").
    pub vendor: String,
    /// Deterministic virtual makespan in seconds.
    pub virt_makespan_s: f64,
}

/// One wall-clock rendezvous row of `BENCH_scale.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RendezvousRow {
    /// World size.
    pub ranks: f64,
    /// Wall-clock milliseconds for a full round over the flat barrier.
    pub flat_ms: f64,
    /// Wall-clock milliseconds for a full round over the tree barrier.
    pub tree_ms: f64,
}

/// Parsed, schema-checked `BENCH_ckpt.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptReport {
    /// Per-workload rows.
    pub workloads: Vec<CkptRow>,
}

/// Parsed, schema-checked `BENCH_telemetry.json` — the flight recorder's
/// own overhead bench.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Control-plane events emitted per committed epoch on the fixed
    /// workload. Deterministic under virtual time: gates hard in *both*
    /// directions (a drop means instrumentation was lost, a rise means
    /// the control plane got chatty).
    pub events_per_round: f64,
    /// Committed epochs of the fixed workload (deterministic; must match
    /// the baseline exactly).
    pub rounds: f64,
    /// Wall-clock nanoseconds per hot-ring `emit` under four concurrent
    /// writers (machine-dependent: warns, never gates).
    pub emit_wall_ns: f64,
    /// Wall-clock emits per second across the four writers
    /// (machine-dependent: informational only).
    pub events_per_sec_wall: f64,
}

/// The multi-tenant cluster saturation section of `BENCH_scale.json`:
/// a fixed-config `Cluster` of checkpointing tenants churning through
/// one shared committer and one shared tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSection {
    /// Concurrent tenants in the fixed saturation config (deterministic;
    /// must match the baseline exactly).
    pub tenants: f64,
    /// Committed epochs summed over every tenant lane (deterministic —
    /// fixed checkpoint policy on a fixed program; must match exactly).
    pub epochs_total: f64,
    /// `(max − min) / mean` of the tenants' virtual makespans. Virtual
    /// time is per-world and scheduling-independent, so this is a
    /// deterministic function of the vendor mix: gates at [`TOLERANCE`]
    /// in *both* directions (widening means shared infrastructure taxes
    /// tenants unevenly; narrowing means the tenant mix changed).
    pub fairness_spread: f64,
    /// Wall-clock of the whole cluster run in milliseconds
    /// (machine-dependent: warns, never gates).
    pub wall_ms: f64,
}

/// Parsed, schema-checked `BENCH_scale.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Mailbox stripes the fabric ran with.
    pub stripes: f64,
    /// Flat-vs-tree coordinator rendezvous wall-clock curves.
    pub rendezvous_wallclock: Vec<RendezvousRow>,
    /// Neighbor p2p drain virtual makespans.
    pub p2p_drain: Vec<ScaleRow>,
    /// Allreduce virtual makespans.
    pub allreduce: Vec<ScaleRow>,
    /// Full-stack checkpoint rendezvous virtual makespans.
    pub ckpt_rendezvous: Vec<ScaleRow>,
    /// Leader takeovers recovered by the coordinator failover battery
    /// (one scripted kill per barrier phase — fully deterministic).
    pub failover_recovery_rounds: f64,
    /// The multi-tenant saturation battery.
    pub cluster: ClusterSection,
}

/// One scenario row of `BENCH_matrix.json` (see `stool::scenario`).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Scenario name (unique within the matrix).
    pub name: String,
    /// Application token ("ring", "wave", ...).
    pub app: String,
    /// Launch vendor label ("MPICH", "Open MPI").
    pub vendor: String,
    /// Whether the row belongs to the pinned PR-CI subset.
    pub pr: bool,
    /// Whether every invariant held.
    pub passed: bool,
    /// Global restarts forced by kill events (deterministic: scheduled).
    pub recovery_rounds: f64,
    /// Kill events consumed (deterministic: scheduled).
    pub kills: f64,
    /// Epochs left on the final chain (warns on drift).
    pub epochs: f64,
    /// Tier upload retries observed (warns on drift).
    pub put_retries: f64,
    /// Straggler stalls recorded (warns on drift).
    pub stalls: f64,
    /// Replica failover recoveries observed (warns on drift).
    pub elections: f64,
    /// Invariant failures (empty iff `passed`).
    pub failures: Vec<String>,
}

/// Parsed, schema-checked `BENCH_matrix.json` — the scenario-matrix
/// harness's result artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Which suite ran: "pr" (the pinned subset) or "full".
    pub suite: String,
    /// Total scenarios declared by the committed spec file (both suites).
    pub spec_scenarios: f64,
    /// One row per executed scenario, in spec order.
    pub scenarios: Vec<MatrixRow>,
}

fn field<'j>(
    obj: &'j BTreeMap<String, Json>,
    what: &str,
    key: &str,
) -> Result<&'j Json, GateError> {
    obj.get(key)
        .ok_or_else(|| GateError::schema(format!("{what}: missing key \"{key}\"")))
}

fn no_extra_keys(
    obj: &BTreeMap<String, Json>,
    what: &str,
    allowed: &[&str],
) -> Result<(), GateError> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(GateError::schema(format!(
                "{what}: unknown key \"{key}\" (strict schema)"
            )));
        }
    }
    Ok(())
}

fn positive(x: f64, what: &str) -> Result<f64, GateError> {
    if x > 0.0 {
        Ok(x)
    } else {
        Err(GateError::schema(format!("{what}: must be positive ({x})")))
    }
}

fn non_negative(x: f64, what: &str) -> Result<f64, GateError> {
    if x >= 0.0 {
        Ok(x)
    } else {
        Err(GateError::schema(format!("{what}: negative ({x})")))
    }
}

/// Strictly parse `BENCH_ckpt.json`.
pub fn parse_ckpt_report(text: &str) -> Result<CkptReport, GateError> {
    let doc = parse_json(text)?;
    let top = doc.obj("top level")?;
    no_extra_keys(top, "top level", &["bench", "workloads"])?;
    let bench = field(top, "top level", "bench")?.str("bench")?;
    if bench != "ckpt_store" {
        return Err(GateError::schema(format!(
            "bench: expected \"ckpt_store\", got \"{bench}\""
        )));
    }
    let rows = field(top, "top level", "workloads")?.arr("workloads")?;
    if rows.is_empty() {
        return Err(GateError::schema("workloads: empty"));
    }
    let mut workloads = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let what = format!("workloads[{i}]");
        let obj = row.obj(&what)?;
        no_extra_keys(
            obj,
            &what,
            &[
                "name",
                "epochs",
                "full_base_bytes",
                "delta_bytes_avg",
                "delta_raw_bytes_avg",
                "hashed_dirty_avg",
                "hashed_full_avg",
                "image_bytes",
                "tier_shipped_bytes_avg",
                "commit_wall_ms",
                "sync_makespan_s",
                "async_makespan_s",
            ],
        )?;
        let name = field(obj, &what, "name")?.str("name")?.to_string();
        if name.is_empty() {
            return Err(GateError::schema(format!("{what}: empty name")));
        }
        workloads.push(CkptRow {
            name,
            epochs: positive(field(obj, &what, "epochs")?.num("epochs")?, "epochs")?,
            full_base_bytes: positive(
                field(obj, &what, "full_base_bytes")?.num("full_base_bytes")?,
                "full_base_bytes",
            )?,
            delta_bytes_avg: non_negative(
                field(obj, &what, "delta_bytes_avg")?.num("delta_bytes_avg")?,
                "delta_bytes_avg",
            )?,
            delta_raw_bytes_avg: non_negative(
                field(obj, &what, "delta_raw_bytes_avg")?.num("delta_raw_bytes_avg")?,
                "delta_raw_bytes_avg",
            )?,
            hashed_dirty_avg: non_negative(
                field(obj, &what, "hashed_dirty_avg")?.num("hashed_dirty_avg")?,
                "hashed_dirty_avg",
            )?,
            hashed_full_avg: non_negative(
                field(obj, &what, "hashed_full_avg")?.num("hashed_full_avg")?,
                "hashed_full_avg",
            )?,
            image_bytes: positive(
                field(obj, &what, "image_bytes")?.num("image_bytes")?,
                "image_bytes",
            )?,
            tier_shipped_bytes_avg: positive(
                field(obj, &what, "tier_shipped_bytes_avg")?.num("tier_shipped_bytes_avg")?,
                "tier_shipped_bytes_avg",
            )?,
            commit_wall_ms: positive(
                field(obj, &what, "commit_wall_ms")?.num("commit_wall_ms")?,
                "commit_wall_ms",
            )?,
            sync_makespan_s: positive(
                field(obj, &what, "sync_makespan_s")?.num("sync_makespan_s")?,
                "sync_makespan_s",
            )?,
            async_makespan_s: positive(
                field(obj, &what, "async_makespan_s")?.num("async_makespan_s")?,
                "async_makespan_s",
            )?,
        });
    }
    Ok(CkptReport { workloads })
}

/// Strictly parse `BENCH_telemetry.json`.
pub fn parse_telemetry_report(text: &str) -> Result<TelemetryReport, GateError> {
    let doc = parse_json(text)?;
    let top = doc.obj("top level")?;
    no_extra_keys(
        top,
        "top level",
        &[
            "bench",
            "events_per_round",
            "rounds",
            "emit_wall_ns",
            "events_per_sec_wall",
        ],
    )?;
    let bench = field(top, "top level", "bench")?.str("bench")?;
    if bench != "telemetry" {
        return Err(GateError::schema(format!(
            "bench: expected \"telemetry\", got \"{bench}\""
        )));
    }
    Ok(TelemetryReport {
        events_per_round: positive(
            field(top, "top level", "events_per_round")?.num("events_per_round")?,
            "events_per_round",
        )?,
        rounds: positive(field(top, "top level", "rounds")?.num("rounds")?, "rounds")?,
        emit_wall_ns: positive(
            field(top, "top level", "emit_wall_ns")?.num("emit_wall_ns")?,
            "emit_wall_ns",
        )?,
        events_per_sec_wall: positive(
            field(top, "top level", "events_per_sec_wall")?.num("events_per_sec_wall")?,
            "events_per_sec_wall",
        )?,
    })
}

fn parse_scale_rows(doc: &Json, what: &str) -> Result<Vec<ScaleRow>, GateError> {
    let rows = doc.arr(what)?;
    if rows.is_empty() {
        return Err(GateError::schema(format!("{what}: empty")));
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let rw = format!("{what}[{i}]");
        let obj = row.obj(&rw)?;
        no_extra_keys(obj, &rw, &["ranks", "vendor", "virt_makespan_s"])?;
        out.push(ScaleRow {
            ranks: positive(field(obj, &rw, "ranks")?.num("ranks")?, "ranks")?,
            vendor: field(obj, &rw, "vendor")?.str("vendor")?.to_string(),
            virt_makespan_s: positive(
                field(obj, &rw, "virt_makespan_s")?.num("virt_makespan_s")?,
                "virt_makespan_s",
            )?,
        });
    }
    Ok(out)
}

/// Strictly parse `BENCH_scale.json`.
pub fn parse_scale_report(text: &str) -> Result<ScaleReport, GateError> {
    let doc = parse_json(text)?;
    let top = doc.obj("top level")?;
    no_extra_keys(
        top,
        "top level",
        &[
            "bench",
            "stripes",
            "failover_recovery_rounds",
            "rendezvous_wallclock",
            "p2p_drain",
            "allreduce",
            "ckpt_rendezvous",
            "cluster",
        ],
    )?;
    let bench = field(top, "top level", "bench")?.str("bench")?;
    if bench != "scale" {
        return Err(GateError::schema(format!(
            "bench: expected \"scale\", got \"{bench}\""
        )));
    }
    let rows = field(top, "top level", "rendezvous_wallclock")?.arr("rendezvous_wallclock")?;
    if rows.is_empty() {
        return Err(GateError::schema("rendezvous_wallclock: empty"));
    }
    let mut rendezvous = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let what = format!("rendezvous_wallclock[{i}]");
        let obj = row.obj(&what)?;
        no_extra_keys(obj, &what, &["ranks", "flat_ms", "tree_ms"])?;
        rendezvous.push(RendezvousRow {
            ranks: positive(field(obj, &what, "ranks")?.num("ranks")?, "ranks")?,
            flat_ms: positive(field(obj, &what, "flat_ms")?.num("flat_ms")?, "flat_ms")?,
            tree_ms: positive(field(obj, &what, "tree_ms")?.num("tree_ms")?, "tree_ms")?,
        });
    }
    let cl = field(top, "top level", "cluster")?.obj("cluster")?;
    no_extra_keys(
        cl,
        "cluster",
        &["tenants", "epochs_total", "fairness_spread", "wall_ms"],
    )?;
    let cluster = ClusterSection {
        tenants: positive(
            field(cl, "cluster", "tenants")?.num("tenants")?,
            "cluster.tenants",
        )?,
        epochs_total: positive(
            field(cl, "cluster", "epochs_total")?.num("epochs_total")?,
            "cluster.epochs_total",
        )?,
        fairness_spread: positive(
            field(cl, "cluster", "fairness_spread")?.num("fairness_spread")?,
            "cluster.fairness_spread",
        )?,
        wall_ms: positive(
            field(cl, "cluster", "wall_ms")?.num("wall_ms")?,
            "cluster.wall_ms",
        )?,
    };
    Ok(ScaleReport {
        stripes: positive(
            field(top, "top level", "stripes")?.num("stripes")?,
            "stripes",
        )?,
        cluster,
        rendezvous_wallclock: rendezvous,
        p2p_drain: parse_scale_rows(field(top, "top level", "p2p_drain")?, "p2p_drain")?,
        allreduce: parse_scale_rows(field(top, "top level", "allreduce")?, "allreduce")?,
        ckpt_rendezvous: parse_scale_rows(
            field(top, "top level", "ckpt_rendezvous")?,
            "ckpt_rendezvous",
        )?,
        failover_recovery_rounds: non_negative(
            field(top, "top level", "failover_recovery_rounds")?.num("failover_recovery_rounds")?,
            "failover_recovery_rounds",
        )?,
    })
}

fn boolean(j: &Json, what: &str) -> Result<bool, GateError> {
    match j {
        Json::Bool(b) => Ok(*b),
        other => Err(GateError::schema(format!(
            "{what}: expected bool, got {}",
            other.kind()
        ))),
    }
}

/// Strictly parse `BENCH_matrix.json`.
pub fn parse_matrix_report(text: &str) -> Result<MatrixReport, GateError> {
    let doc = parse_json(text)?;
    let top = doc.obj("top level")?;
    no_extra_keys(top, "top level", &["suite", "spec_scenarios", "scenarios"])?;
    let suite = field(top, "top level", "suite")?.str("suite")?.to_string();
    if suite != "pr" && suite != "full" {
        return Err(GateError::schema(format!(
            "suite: expected \"pr\" or \"full\", got \"{suite}\""
        )));
    }
    let spec_scenarios = positive(
        field(top, "top level", "spec_scenarios")?.num("spec_scenarios")?,
        "spec_scenarios",
    )?;
    let rows = field(top, "top level", "scenarios")?.arr("scenarios")?;
    if rows.is_empty() {
        return Err(GateError::schema("scenarios: empty"));
    }
    let mut scenarios = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let what = format!("scenarios[{i}]");
        let obj = row.obj(&what)?;
        no_extra_keys(
            obj,
            &what,
            &[
                "name",
                "app",
                "vendor",
                "pr",
                "passed",
                "recovery_rounds",
                "kills",
                "epochs",
                "put_retries",
                "stalls",
                "elections",
                "failures",
            ],
        )?;
        let name = field(obj, &what, "name")?.str("name")?.to_string();
        if name.is_empty() {
            return Err(GateError::schema(format!("{what}: empty name")));
        }
        if scenarios.iter().any(|r: &MatrixRow| r.name == name) {
            return Err(GateError::schema(format!(
                "{what}: duplicate scenario name \"{name}\""
            )));
        }
        let failures: Vec<String> = field(obj, &what, "failures")?
            .arr("failures")?
            .iter()
            .enumerate()
            .map(|(j, f)| f.str(&format!("{what}.failures[{j}]")).map(String::from))
            .collect::<Result<_, _>>()?;
        let passed = boolean(field(obj, &what, "passed")?, "passed")?;
        if passed != failures.is_empty() {
            return Err(GateError::schema(format!(
                "{what}: passed={passed} contradicts {} recorded failure(s)",
                failures.len()
            )));
        }
        scenarios.push(MatrixRow {
            name,
            app: field(obj, &what, "app")?.str("app")?.to_string(),
            vendor: field(obj, &what, "vendor")?.str("vendor")?.to_string(),
            pr: boolean(field(obj, &what, "pr")?, "pr")?,
            passed,
            recovery_rounds: non_negative(
                field(obj, &what, "recovery_rounds")?.num("recovery_rounds")?,
                "recovery_rounds",
            )?,
            kills: non_negative(field(obj, &what, "kills")?.num("kills")?, "kills")?,
            epochs: non_negative(field(obj, &what, "epochs")?.num("epochs")?, "epochs")?,
            put_retries: non_negative(
                field(obj, &what, "put_retries")?.num("put_retries")?,
                "put_retries",
            )?,
            stalls: non_negative(field(obj, &what, "stalls")?.num("stalls")?, "stalls")?,
            elections: non_negative(
                field(obj, &what, "elections")?.num("elections")?,
                "elections",
            )?,
            failures,
        });
    }
    if scenarios.len() > spec_scenarios as usize {
        return Err(GateError::schema(format!(
            "scenarios: {} rows exceed spec_scenarios = {}",
            scenarios.len(),
            spec_scenarios
        )));
    }
    Ok(MatrixReport {
        suite,
        spec_scenarios,
        scenarios,
    })
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// What the comparison concluded.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Hard failures: deterministic metrics beyond tolerance.
    pub regressions: Vec<String>,
    /// Soft findings: wall-clock drift, rows present in only one side.
    pub warnings: Vec<String>,
    /// Metrics that passed (for the log).
    pub passed: usize,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// `fresh` must not exceed `base` by more than [`TOLERANCE`]
/// (lower-is-better metrics).
fn check_upper(out: &mut GateOutcome, what: &str, base: f64, fresh: f64) {
    if fresh > base * (1.0 + TOLERANCE) {
        out.regressions.push(format!(
            "{what}: {fresh:.6} vs baseline {base:.6} (+{:.1}% > {:.0}% tolerance)",
            (fresh / base - 1.0) * 100.0,
            TOLERANCE * 100.0
        ));
    } else {
        out.passed += 1;
    }
}

/// `fresh` must not fall below `base` by more than [`TOLERANCE`]
/// (higher-is-better metrics, e.g. the delta-bytes ratio).
fn check_lower(out: &mut GateOutcome, what: &str, base: f64, fresh: f64) {
    if fresh < base * (1.0 - TOLERANCE) {
        out.regressions.push(format!(
            "{what}: {fresh:.6} vs baseline {base:.6} (-{:.1}% > {:.0}% tolerance)",
            (1.0 - fresh / base) * 100.0,
            TOLERANCE * 100.0
        ));
    } else {
        out.passed += 1;
    }
}

/// Compare a fresh checkpoint-store report against the committed baseline.
pub fn compare_ckpt(out: &mut GateOutcome, base: &CkptReport, fresh: &CkptReport) {
    for b in &base.workloads {
        let Some(f) = fresh.workloads.iter().find(|w| w.name == b.name) else {
            out.regressions
                .push(format!("ckpt workload \"{}\" disappeared", b.name));
            continue;
        };
        check_lower(
            out,
            &format!("ckpt/{}/delta_ratio", b.name),
            b.delta_ratio(),
            f.delta_ratio(),
        );
        // The two cost-reducer ratios are deterministic (content-defined
        // chunking, content-keyed dedup, deterministic codecs on
        // deterministic virtual-time workloads): they gate hard.
        check_lower(
            out,
            &format!("ckpt/{}/hash_skip_ratio", b.name),
            b.hash_skip_ratio(),
            f.hash_skip_ratio(),
        );
        check_lower(
            out,
            &format!("ckpt/{}/compression_ratio", b.name),
            b.compression_ratio(),
            f.compression_ratio(),
        );
        // Dedup at the remote tier: shipped bytes per sealed epoch are a
        // pure function of the (virtual-time-deterministic) chain, so a
        // collapse means the shipper started re-uploading old content.
        check_lower(
            out,
            &format!("ckpt/{}/tier_dedup_ratio", b.name),
            b.tier_dedup_ratio(),
            f.tier_dedup_ratio(),
        );
        check_upper(
            out,
            &format!("ckpt/{}/sync_makespan_s", b.name),
            b.sync_makespan_s,
            f.sync_makespan_s,
        );
        check_upper(
            out,
            &format!("ckpt/{}/async_makespan_s", b.name),
            b.async_makespan_s,
            f.async_makespan_s,
        );
        // Commit wall-clock is machine-dependent: drift only warns.
        if f.commit_wall_ms > b.commit_wall_ms * (1.0 + TOLERANCE) {
            out.warnings.push(format!(
                "ckpt/{}/commit_wall_ms: {:.3} ms vs baseline {:.3} ms (wall-clock; not gated)",
                b.name, f.commit_wall_ms, b.commit_wall_ms
            ));
        }
    }
    for f in &fresh.workloads {
        if !base.workloads.iter().any(|w| w.name == f.name) {
            out.warnings.push(format!(
                "ckpt workload \"{}\" has no baseline yet (run with --write-baselines)",
                f.name
            ));
        }
    }
}

/// Compare a fresh telemetry-overhead report against the committed
/// baseline.
pub fn compare_telemetry(out: &mut GateOutcome, base: &TelemetryReport, fresh: &TelemetryReport) {
    // The fixed workload commits a deterministic number of epochs: any
    // drift means the schedule itself changed, which invalidates the
    // per-round comparison.
    if fresh.rounds != base.rounds {
        out.regressions.push(format!(
            "telemetry/rounds: {} vs baseline {} (deterministic; must match)",
            fresh.rounds, base.rounds
        ));
    } else {
        out.passed += 1;
    }
    // Events per round gate hard both ways: fewer means instrumentation
    // silently fell off a code path, more means the hot control plane
    // grew chatty.
    check_upper(
        out,
        "telemetry/events_per_round",
        base.events_per_round,
        fresh.events_per_round,
    );
    check_lower(
        out,
        "telemetry/events_per_round",
        base.events_per_round,
        fresh.events_per_round,
    );
    // Per-emit wall cost is machine-dependent: drift only warns.
    if fresh.emit_wall_ns > base.emit_wall_ns * (1.0 + TOLERANCE) {
        out.warnings.push(format!(
            "telemetry/emit_wall_ns: {:.1} ns vs baseline {:.1} ns (wall-clock; not gated)",
            fresh.emit_wall_ns, base.emit_wall_ns
        ));
    }
}

fn compare_scale_rows(out: &mut GateOutcome, metric: &str, base: &[ScaleRow], fresh: &[ScaleRow]) {
    for b in base {
        let Some(f) = fresh
            .iter()
            .find(|r| r.ranks == b.ranks && r.vendor == b.vendor)
        else {
            out.warnings.push(format!(
                "scale/{metric}: no fresh row for ranks={} vendor={} (size set shrank?)",
                b.ranks, b.vendor
            ));
            continue;
        };
        check_upper(
            out,
            &format!("scale/{metric}/{}r/{}", b.ranks, b.vendor),
            b.virt_makespan_s,
            f.virt_makespan_s,
        );
    }
}

/// Compare a fresh scale report against the committed baseline.
pub fn compare_scale(out: &mut GateOutcome, base: &ScaleReport, fresh: &ScaleReport) {
    // The failover battery is deterministic (scripted faults, injected
    // clock): the takeover count must match the baseline exactly. Fewer
    // means a phase stopped recovering; more means spurious elections.
    if fresh.failover_recovery_rounds != base.failover_recovery_rounds {
        out.regressions.push(format!(
            "scale/failover_recovery_rounds: {} vs baseline {} (deterministic; must match)",
            fresh.failover_recovery_rounds, base.failover_recovery_rounds
        ));
    } else {
        out.passed += 1;
    }
    compare_scale_rows(out, "p2p_drain", &base.p2p_drain, &fresh.p2p_drain);
    compare_scale_rows(out, "allreduce", &base.allreduce, &fresh.allreduce);
    compare_scale_rows(
        out,
        "ckpt_rendezvous",
        &base.ckpt_rendezvous,
        &fresh.ckpt_rendezvous,
    );
    // Wall-clock curves: machine-dependent, so *drift* vs baseline only
    // warns — but two same-machine shape properties gate hard: the curves
    // must cover ≥ 512 ranks, and the tree barrier must not lose to the
    // flat barrier at the largest world (with generous noise headroom:
    // flat and tree are measured back-to-back on the same machine, so the
    // ratio is far more stable than either absolute number).
    let max_row = fresh
        .rendezvous_wallclock
        .iter()
        .max_by(|a, b| a.ranks.total_cmp(&b.ranks))
        .expect("schema guarantees non-empty");
    if max_row.ranks < 512.0 {
        out.regressions.push(format!(
            "scale/rendezvous_wallclock: largest world is {} ranks, need >= 512",
            max_row.ranks
        ));
    } else {
        out.passed += 1;
    }
    if max_row.tree_ms > max_row.flat_ms * (1.0 + TREE_HEADROOM) {
        out.regressions.push(format!(
            "scale/rendezvous_wallclock/{}r: tree barrier ({:.3} ms) lost to the flat \
             barrier ({:.3} ms) by more than {:.0}% — the tree topology has regressed",
            max_row.ranks,
            max_row.tree_ms,
            max_row.flat_ms,
            TREE_HEADROOM * 100.0
        ));
    } else {
        out.passed += 1;
    }
    for b in &base.rendezvous_wallclock {
        if let Some(f) = fresh
            .rendezvous_wallclock
            .iter()
            .find(|r| r.ranks == b.ranks)
        {
            if f.tree_ms > b.tree_ms * (1.0 + TOLERANCE) {
                out.warnings.push(format!(
                    "scale/rendezvous_wallclock/{}r: tree {:.3} ms vs baseline {:.3} ms \
                     (wall-clock; not gated)",
                    b.ranks, f.tree_ms, b.tree_ms
                ));
            }
        }
    }
    // The multi-tenant saturation battery runs a fixed config: the
    // tenant count and the total committed epochs are deterministic and
    // must match the baseline exactly (a drift means the config or the
    // checkpoint schedule silently changed, which invalidates the
    // fairness comparison).
    if fresh.cluster.tenants != base.cluster.tenants {
        out.regressions.push(format!(
            "scale/cluster/tenants: {} vs baseline {} (deterministic; must match)",
            fresh.cluster.tenants, base.cluster.tenants
        ));
    } else {
        out.passed += 1;
    }
    if fresh.cluster.epochs_total != base.cluster.epochs_total {
        out.regressions.push(format!(
            "scale/cluster/epochs_total: {} vs baseline {} (deterministic; must match)",
            fresh.cluster.epochs_total, base.cluster.epochs_total
        ));
    } else {
        out.passed += 1;
    }
    // Fairness gates in both directions: a wider spread means the shared
    // committer/tier/pool stopped treating tenants fairly, a narrower
    // one means the tenant mix itself changed under the gate's feet.
    check_upper(
        out,
        "scale/cluster/fairness_spread",
        base.cluster.fairness_spread,
        fresh.cluster.fairness_spread,
    );
    check_lower(
        out,
        "scale/cluster/fairness_spread",
        base.cluster.fairness_spread,
        fresh.cluster.fairness_spread,
    );
    if fresh.cluster.wall_ms > base.cluster.wall_ms * (1.0 + TOLERANCE) {
        out.warnings.push(format!(
            "scale/cluster/wall_ms: {:.3} ms vs baseline {:.3} ms (wall-clock; not gated)",
            fresh.cluster.wall_ms, base.cluster.wall_ms
        ));
    }
}

/// The committed scenario matrix must keep at least this many rows (the
/// harness's raison d'être: breadth as data, not bespoke tests).
pub const MIN_MATRIX_SCENARIOS: f64 = 24.0;

/// Compare a fresh scenario-matrix report against the committed baseline.
///
/// Every gated metric here is fully deterministic (scheduled faults on a
/// virtual clock), so the checks are *exact*: the executed row set must be
/// the baseline's rows for the suite that ran ("pr" → the pinned subset,
/// "full" → everything), every row must pass its invariants, and the
/// recovery-round / kill counts must match the baseline. Environment-tinged
/// observations (epochs retained, tier retries, stalls, elections) warn on
/// drift.
pub fn compare_matrix(out: &mut GateOutcome, base: &MatrixReport, fresh: &MatrixReport) {
    if fresh.spec_scenarios != base.spec_scenarios {
        out.regressions.push(format!(
            "matrix/spec_scenarios: {} vs baseline {} (regenerate the baseline when the \
             committed spec changes)",
            fresh.spec_scenarios, base.spec_scenarios
        ));
    } else {
        out.passed += 1;
    }
    if fresh.spec_scenarios < MIN_MATRIX_SCENARIOS {
        out.regressions.push(format!(
            "matrix/spec_scenarios: {} rows, the committed matrix must keep >= {}",
            fresh.spec_scenarios, MIN_MATRIX_SCENARIOS
        ));
    } else {
        out.passed += 1;
    }
    let expected: Vec<&MatrixRow> = base
        .scenarios
        .iter()
        .filter(|r| fresh.suite == "full" || r.pr)
        .collect();
    let expected_names: Vec<&str> = expected.iter().map(|r| r.name.as_str()).collect();
    let fresh_names: Vec<&str> = fresh.scenarios.iter().map(|r| r.name.as_str()).collect();
    if expected_names != fresh_names {
        out.regressions.push(format!(
            "matrix/{}: executed rows {fresh_names:?} differ from the baseline's suite rows \
             {expected_names:?}",
            fresh.suite
        ));
        return;
    }
    out.passed += 1;
    for (b, f) in expected.iter().zip(&fresh.scenarios) {
        let row = format!("matrix/{}", b.name);
        if !f.passed {
            out.regressions.push(format!(
                "{row}: invariant failure(s): {}",
                f.failures.join("; ")
            ));
        } else {
            out.passed += 1;
        }
        if f.app != b.app || f.vendor != b.vendor || f.pr != b.pr {
            out.regressions.push(format!(
                "{row}: identity drift (app/vendor/pr {}/{}/{} vs baseline {}/{}/{})",
                f.app, f.vendor, f.pr, b.app, b.vendor, b.pr
            ));
        } else {
            out.passed += 1;
        }
        if f.recovery_rounds != b.recovery_rounds {
            out.regressions.push(format!(
                "{row}/recovery_rounds: {} vs baseline {} (deterministic; must match)",
                f.recovery_rounds, b.recovery_rounds
            ));
        } else {
            out.passed += 1;
        }
        if f.kills != b.kills {
            out.regressions.push(format!(
                "{row}/kills: {} vs baseline {} (deterministic; must match)",
                f.kills, b.kills
            ));
        } else {
            out.passed += 1;
        }
        for (what, fv, bv) in [
            ("epochs", f.epochs, b.epochs),
            ("put_retries", f.put_retries, b.put_retries),
            ("stalls", f.stalls, b.stalls),
            ("elections", f.elections, b.elections),
        ] {
            if fv != bv {
                out.warnings.push(format!(
                    "{row}/{what}: {fv} vs baseline {bv} (observation; not gated)"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let doc = parse_json(r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x\n"}"#)
            .unwrap();
        let top = doc.obj("t").unwrap();
        let a = top["a"].arr("a").unwrap();
        assert_eq!(a[0].num("0").unwrap(), 1.0);
        assert_eq!(a[1].num("1").unwrap(), -2.5);
        assert_eq!(a[2].num("2").unwrap(), 300.0);
        assert_eq!(top["b"].obj("b").unwrap()["c"], Json::Bool(true));
        assert_eq!(top["e"].str("e").unwrap(), "x\n");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": nul}",
            "{\"a\": 1e}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn utf8_strings_roundtrip() {
        let doc = parse_json("{\"k\": \"héllo → ∞\"}").unwrap();
        assert_eq!(doc.obj("t").unwrap()["k"].str("k").unwrap(), "héllo → ∞");
    }

    fn ckpt_json_full(
        delta: u64,
        hashed_dirty: u64,
        tier_shipped: u64,
        sync_s: f64,
        async_s: f64,
    ) -> String {
        format!(
            "{{\"bench\": \"ckpt_store\", \"workloads\": [\
             {{\"name\": \"wave_mpi\", \"epochs\": 4, \"full_base_bytes\": 1000, \
             \"delta_bytes_avg\": {delta}, \"delta_raw_bytes_avg\": 800, \
             \"hashed_dirty_avg\": {hashed_dirty}, \"hashed_full_avg\": 1200, \
             \"image_bytes\": 1200, \"tier_shipped_bytes_avg\": {tier_shipped}, \
             \"commit_wall_ms\": 2.5, \
             \"sync_makespan_s\": {sync_s}, \"async_makespan_s\": {async_s}}}]}}"
        )
    }

    fn ckpt_json_ext(delta: u64, hashed_dirty: u64, sync_s: f64, async_s: f64) -> String {
        ckpt_json_full(delta, hashed_dirty, 600, sync_s, async_s)
    }

    fn ckpt_json(delta: u64, sync_s: f64, async_s: f64) -> String {
        ckpt_json_ext(delta, 400, sync_s, async_s)
    }

    #[test]
    fn ckpt_schema_accepts_wellformed() {
        let r = parse_ckpt_report(&ckpt_json(500, 2.0, 1.5)).unwrap();
        assert_eq!(r.workloads.len(), 1);
        assert_eq!(r.workloads[0].delta_ratio(), 2.0);
        assert_eq!(r.workloads[0].hash_skip_ratio(), 3.0);
        assert_eq!(r.workloads[0].compression_ratio(), 1.6);
        assert_eq!(r.workloads[0].tier_dedup_ratio(), 2.0);
    }

    #[test]
    fn ckpt_schema_rejects_missing_and_unknown_keys() {
        let missing = "{\"bench\": \"ckpt_store\", \"workloads\": [{\"name\": \"w\"}]}";
        assert!(parse_ckpt_report(missing).is_err());
        let unknown = ckpt_json(500, 2.0, 1.5).replace("\"epochs\"", "\"epochz\"");
        assert!(parse_ckpt_report(&unknown).is_err());
        let wrong_bench = ckpt_json(500, 2.0, 1.5).replace("ckpt_store", "other");
        assert!(parse_ckpt_report(&wrong_bench).is_err());
    }

    #[test]
    fn ckpt_schema_rejects_nonsense_numbers() {
        assert!(parse_ckpt_report(&ckpt_json(500, -2.0, 1.5)).is_err());
        let zero_base =
            ckpt_json(500, 2.0, 1.5).replace("\"full_base_bytes\": 1000", "\"full_base_bytes\": 0");
        assert!(parse_ckpt_report(&zero_base).is_err());
    }

    #[test]
    fn regression_gate_trips_beyond_tolerance() {
        let base = parse_ckpt_report(&ckpt_json(500, 2.0, 1.5)).unwrap();
        // Within tolerance: passes.
        let ok = parse_ckpt_report(&ckpt_json(550, 2.2, 1.6)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &ok);
        assert!(out.ok(), "{:?}", out.regressions);
        // Delta bytes ballooned (ratio collapsed): fails.
        let worse = parse_ckpt_report(&ckpt_json(900, 2.0, 1.5)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &worse);
        assert!(!out.ok());
        assert!(out.regressions[0].contains("delta_ratio"));
        // Makespan regressed 30%: fails.
        let slower = parse_ckpt_report(&ckpt_json(500, 2.6, 1.5)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &slower);
        assert!(!out.ok());
        assert!(out.regressions[0].contains("sync_makespan_s"));
        // Dirty tracking collapsed (hashed bytes tripled): fails.
        let rehash = parse_ckpt_report(&ckpt_json_ext(500, 1200, 2.0, 1.5)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &rehash);
        assert!(!out.ok());
        assert!(out.regressions[0].contains("hash_skip_ratio"));
        // Compression collapsed (delta bytes back at raw size): the
        // delta and compression ratios both trip.
        let fat = parse_ckpt_report(&ckpt_json_ext(800, 400, 2.0, 1.5)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &fat);
        assert!(!out.ok());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("compression_ratio")));
        // Tier dedup collapsed (shipped bytes doubled): fails.
        let reship = parse_ckpt_report(&ckpt_json_full(500, 400, 1200, 2.0, 1.5)).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &reship);
        assert!(!out.ok());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("tier_dedup_ratio")));
    }

    #[test]
    fn commit_wall_clock_drift_warns_but_never_gates() {
        let base = parse_ckpt_report(&ckpt_json(500, 2.0, 1.5)).unwrap();
        let slow_machine =
            ckpt_json(500, 2.0, 1.5).replace("\"commit_wall_ms\": 2.5", "\"commit_wall_ms\": 50.0");
        let fresh = parse_ckpt_report(&slow_machine).unwrap();
        let mut out = GateOutcome::default();
        compare_ckpt(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        assert!(out.warnings.iter().any(|w| w.contains("commit_wall_ms")));
    }

    fn scale_json(virt: f64, max_ranks: u64) -> String {
        format!(
            "{{\"bench\": \"scale\", \"stripes\": 8, \"failover_recovery_rounds\": 4, \
             \"rendezvous_wallclock\": [\
             {{\"ranks\": 64, \"flat_ms\": 1.0, \"tree_ms\": 1.1}}, \
             {{\"ranks\": {max_ranks}, \"flat_ms\": 40.0, \"tree_ms\": 12.0}}], \
             \"p2p_drain\": [{{\"ranks\": 64, \"vendor\": \"MPICH\", \"virt_makespan_s\": {virt}}}], \
             \"allreduce\": [{{\"ranks\": 64, \"vendor\": \"MPICH\", \"virt_makespan_s\": {virt}}}], \
             \"ckpt_rendezvous\": [{{\"ranks\": 64, \"vendor\": \"MPICH\", \"virt_makespan_s\": {virt}}}], \
             \"cluster\": {{\"tenants\": 4, \"epochs_total\": 12, \
             \"fairness_spread\": 0.04, \"wall_ms\": 5.0}}}}"
        )
    }

    #[test]
    fn scale_schema_and_gate() {
        let base = parse_scale_report(&scale_json(1.0, 1024)).unwrap();
        assert_eq!(base.rendezvous_wallclock.len(), 2);
        let fresh = parse_scale_report(&scale_json(1.05, 1024)).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        // 30% virtual-time regression trips the gate.
        let slow = parse_scale_report(&scale_json(1.3, 1024)).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &slow);
        assert!(!out.ok());
        // A fresh report whose largest world shrank below 512 fails hard.
        let small = parse_scale_report(&scale_json(1.0, 256)).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &small);
        assert!(!out.ok());
        assert!(out.regressions.iter().any(|r| r.contains(">= 512")));
    }

    #[test]
    fn failover_battery_count_gates_exactly() {
        let base = parse_scale_report(&scale_json(1.0, 1024)).unwrap();
        // Any drift in the deterministic takeover count trips the gate.
        for wrong in ["3", "5", "0"] {
            let drifted = scale_json(1.0, 1024).replace(
                "\"failover_recovery_rounds\": 4",
                &format!("\"failover_recovery_rounds\": {wrong}"),
            );
            let fresh = parse_scale_report(&drifted).unwrap();
            let mut out = GateOutcome::default();
            compare_scale(&mut out, &base, &fresh);
            assert!(!out.ok(), "count {wrong} must fail the gate");
            assert!(out
                .regressions
                .iter()
                .any(|r| r.contains("failover_recovery_rounds")));
        }
        // A report missing the metric fails the schema outright.
        let missing = scale_json(1.0, 1024).replace("\"failover_recovery_rounds\": 4, ", "");
        assert!(parse_scale_report(&missing).is_err());
    }

    #[test]
    fn cluster_saturation_gates_counts_exactly_and_fairness_at_tolerance() {
        let base = parse_scale_report(&scale_json(1.0, 1024)).unwrap();
        // The deterministic counts must match exactly.
        for (from, to, what) in [
            ("\"tenants\": 4", "\"tenants\": 5", "cluster/tenants"),
            (
                "\"epochs_total\": 12",
                "\"epochs_total\": 11",
                "cluster/epochs_total",
            ),
        ] {
            let drifted = scale_json(1.0, 1024).replace(from, to);
            let fresh = parse_scale_report(&drifted).unwrap();
            let mut out = GateOutcome::default();
            compare_scale(&mut out, &base, &fresh);
            assert!(!out.ok(), "{what} drift must fail the gate");
            assert!(out.regressions.iter().any(|r| r.contains(what)));
        }
        // Fairness spread within tolerance either way: passes.
        for close in ["0.037", "0.045"] {
            let near = scale_json(1.0, 1024).replace(
                "\"fairness_spread\": 0.04",
                &format!("\"fairness_spread\": {close}"),
            );
            let fresh = parse_scale_report(&near).unwrap();
            let mut out = GateOutcome::default();
            compare_scale(&mut out, &base, &fresh);
            assert!(out.ok(), "{close}: {:?}", out.regressions);
        }
        // Beyond tolerance in either direction: fails.
        for far in ["0.06", "0.02"] {
            let drifted = scale_json(1.0, 1024).replace(
                "\"fairness_spread\": 0.04",
                &format!("\"fairness_spread\": {far}"),
            );
            let fresh = parse_scale_report(&drifted).unwrap();
            let mut out = GateOutcome::default();
            compare_scale(&mut out, &base, &fresh);
            assert!(!out.ok(), "spread {far} must fail the gate");
            assert!(out
                .regressions
                .iter()
                .any(|r| r.contains("fairness_spread")));
        }
        // Slow machine: cluster wall tripled — warns, never gates.
        let slow = scale_json(1.0, 1024).replace("\"wall_ms\": 5.0", "\"wall_ms\": 15.0");
        let fresh = parse_scale_report(&slow).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        assert!(out.warnings.iter().any(|w| w.contains("cluster/wall_ms")));
        // Schema: the section is mandatory, closed, and positive.
        let missing = scale_json(1.0, 1024).replace(
            ", \"cluster\": {\"tenants\": 4, \"epochs_total\": 12, \
             \"fairness_spread\": 0.04, \"wall_ms\": 5.0}",
            "",
        );
        assert!(parse_scale_report(&missing).is_err());
        let unknown = scale_json(1.0, 1024).replace("\"wall_ms\"", "\"wall_mz\"");
        assert!(parse_scale_report(&unknown).is_err());
        let zero_spread =
            scale_json(1.0, 1024).replace("\"fairness_spread\": 0.04", "\"fairness_spread\": 0");
        assert!(parse_scale_report(&zero_spread).is_err());
    }

    fn telemetry_json(events_per_round: f64, rounds: u64, emit_ns: f64) -> String {
        format!(
            "{{\"bench\": \"telemetry\", \"events_per_round\": {events_per_round}, \
             \"rounds\": {rounds}, \"emit_wall_ns\": {emit_ns}, \
             \"events_per_sec_wall\": 50000000.0}}"
        )
    }

    #[test]
    fn telemetry_schema_accepts_wellformed_and_rejects_malformed() {
        let r = parse_telemetry_report(&telemetry_json(20.0, 8, 25.0)).unwrap();
        assert_eq!(r.events_per_round, 20.0);
        assert_eq!(r.rounds, 8.0);
        let wrong_bench = telemetry_json(20.0, 8, 25.0).replace("telemetry", "other");
        assert!(parse_telemetry_report(&wrong_bench).is_err());
        let missing = telemetry_json(20.0, 8, 25.0).replace("\"rounds\": 8, ", "");
        assert!(parse_telemetry_report(&missing).is_err());
        let unknown = telemetry_json(20.0, 8, 25.0).replace("\"rounds\"", "\"roundz\"");
        assert!(parse_telemetry_report(&unknown).is_err());
        assert!(parse_telemetry_report(&telemetry_json(0.0, 8, 25.0)).is_err());
    }

    #[test]
    fn telemetry_events_per_round_gates_both_directions() {
        let base = parse_telemetry_report(&telemetry_json(20.0, 8, 25.0)).unwrap();
        // Within tolerance either way: passes.
        for close in [18.0, 22.0] {
            let fresh = parse_telemetry_report(&telemetry_json(close, 8, 25.0)).unwrap();
            let mut out = GateOutcome::default();
            compare_telemetry(&mut out, &base, &fresh);
            assert!(out.ok(), "{close}: {:?}", out.regressions);
        }
        // Instrumentation fell off a path (-25%): fails.
        let lost = parse_telemetry_report(&telemetry_json(15.0, 8, 25.0)).unwrap();
        let mut out = GateOutcome::default();
        compare_telemetry(&mut out, &base, &lost);
        assert!(!out.ok());
        // Control plane got chatty (+30%): fails.
        let chatty = parse_telemetry_report(&telemetry_json(26.0, 8, 25.0)).unwrap();
        let mut out = GateOutcome::default();
        compare_telemetry(&mut out, &base, &chatty);
        assert!(!out.ok());
        // The deterministic round count must match exactly.
        let drifted = parse_telemetry_report(&telemetry_json(20.0, 9, 25.0)).unwrap();
        let mut out = GateOutcome::default();
        compare_telemetry(&mut out, &base, &drifted);
        assert!(!out.ok());
        assert!(out.regressions.iter().any(|r| r.contains("rounds")));
        // Slow machine: emit cost tripled — warns, never gates.
        let slow = parse_telemetry_report(&telemetry_json(20.0, 8, 75.0)).unwrap();
        let mut out = GateOutcome::default();
        compare_telemetry(&mut out, &base, &slow);
        assert!(out.ok(), "{:?}", out.regressions);
        assert!(out.warnings.iter().any(|w| w.contains("emit_wall_ns")));
    }

    fn matrix_row(name: &str, pr: bool, passed: bool, rounds: u64, kills: u64) -> String {
        let failures = if passed { "" } else { "\"chain torn\"" };
        format!(
            "{{\"name\": \"{name}\", \"app\": \"ring\", \"vendor\": \"MPICH\", \"pr\": {pr}, \
             \"passed\": {passed}, \"recovery_rounds\": {rounds}, \"kills\": {kills}, \
             \"epochs\": 3, \"put_retries\": 0, \"stalls\": 0, \"elections\": 0, \
             \"failures\": [{failures}]}}"
        )
    }

    fn matrix_json_doc(suite: &str, rows: &[String]) -> String {
        format!(
            "{{\"suite\": \"{suite}\", \"spec_scenarios\": 24, \"scenarios\": [{}]}}",
            rows.join(", ")
        )
    }

    fn matrix_base() -> MatrixReport {
        let rows = vec![
            matrix_row("a-storm", true, true, 1, 1),
            matrix_row("b-quiet", false, true, 0, 0),
            matrix_row("c-leader", true, true, 0, 0),
        ];
        parse_matrix_report(&matrix_json_doc("full", &rows)).unwrap()
    }

    #[test]
    fn matrix_schema_accepts_wellformed_and_rejects_malformed() {
        let base = matrix_base();
        assert_eq!(base.scenarios.len(), 3);
        assert_eq!(base.spec_scenarios, 24.0);
        // passed contradicting the failure list is a schema error.
        let lie = matrix_json_doc("full", &[matrix_row("a", true, true, 0, 0)])
            .replace("\"failures\": []", "\"failures\": [\"broken\"]");
        assert!(parse_matrix_report(&lie).is_err());
        // Unknown suite, unknown keys, duplicate names, empty rows.
        let rows = vec![matrix_row("a", true, true, 0, 0)];
        assert!(parse_matrix_report(&matrix_json_doc("nightly", &rows)).is_err());
        let unknown = matrix_json_doc("pr", &rows).replace("\"kills\"", "\"killz\"");
        assert!(parse_matrix_report(&unknown).is_err());
        let dup = vec![
            matrix_row("a", true, true, 0, 0),
            matrix_row("a", true, true, 0, 0),
        ];
        assert!(parse_matrix_report(&matrix_json_doc("pr", &dup)).is_err());
        assert!(parse_matrix_report(
            "{\"suite\": \"pr\", \"spec_scenarios\": 24, \
             \"scenarios\": []}"
        )
        .is_err());
        // More executed rows than the spec declares is a schema error.
        let overfull = matrix_json_doc("pr", &rows).replace("24", "0.5");
        assert!(parse_matrix_report(&overfull).is_err());
    }

    #[test]
    fn matrix_gate_requires_exact_rows_and_pass_states() {
        let base = matrix_base();
        // The full suite re-run matches exactly: passes.
        let fresh = matrix_base();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        // The PR suite runs exactly the pr=true subset: passes.
        let pr_rows = vec![
            matrix_row("a-storm", true, true, 1, 1),
            matrix_row("c-leader", true, true, 0, 0),
        ];
        let fresh = parse_matrix_report(&matrix_json_doc("pr", &pr_rows)).unwrap();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        // A failed scenario is a regression naming its failures.
        let broken = vec![
            matrix_row("a-storm", true, false, 1, 1),
            matrix_row("c-leader", true, true, 0, 0),
        ];
        let fresh = parse_matrix_report(&matrix_json_doc("pr", &broken)).unwrap();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(!out.ok());
        assert!(out.regressions.iter().any(|r| r.contains("chain torn")));
        // A missing row fails the row-set check.
        let short = vec![matrix_row("a-storm", true, true, 1, 1)];
        let fresh = parse_matrix_report(&matrix_json_doc("pr", &short)).unwrap();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(!out.ok());
        // Recovery rounds are deterministic and must match exactly.
        let drifted = vec![
            matrix_row("a-storm", true, true, 2, 1),
            matrix_row("c-leader", true, true, 0, 0),
        ];
        let fresh = parse_matrix_report(&matrix_json_doc("pr", &drifted)).unwrap();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(!out.ok());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("recovery_rounds")));
        // Spec shrinking below the floor fails even if rows match.
        let mut small_base = matrix_base();
        small_base.spec_scenarios = 12.0;
        let mut small_fresh = matrix_base();
        small_fresh.spec_scenarios = 12.0;
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &small_base, &small_fresh);
        assert!(!out.ok());
        assert!(out.regressions.iter().any(|r| r.contains(">= 24")));
        // Observation drift (epochs) warns but never gates.
        let obs = matrix_json_doc(
            "pr",
            &[
                matrix_row("a-storm", true, true, 1, 1),
                matrix_row("c-leader", true, true, 0, 0),
            ],
        )
        .replacen("\"epochs\": 3", "\"epochs\": 4", 1);
        let fresh = parse_matrix_report(&obs).unwrap();
        let mut out = GateOutcome::default();
        compare_matrix(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
        assert!(out.warnings.iter().any(|w| w.contains("epochs")));
    }

    #[test]
    fn tree_losing_to_flat_at_max_ranks_fails_the_gate() {
        let base = parse_scale_report(&scale_json(1.0, 1024)).unwrap();
        // Same-run shape check: tree 60 ms vs flat 40 ms at 1024 ranks is
        // beyond the headroom — the topology regressed, whatever the
        // machine.
        let inverted = scale_json(1.0, 1024).replace("\"tree_ms\": 12.0", "\"tree_ms\": 60.0");
        let fresh = parse_scale_report(&inverted).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &fresh);
        assert!(!out.ok());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("lost to the flat barrier")));
        // Tree merely within the headroom (44 ms vs flat 40 ms) passes.
        let close = scale_json(1.0, 1024).replace("\"tree_ms\": 12.0", "\"tree_ms\": 44.0");
        let fresh = parse_scale_report(&close).unwrap();
        let mut out = GateOutcome::default();
        compare_scale(&mut out, &base, &fresh);
        assert!(out.ok(), "{:?}", out.regressions);
    }
}
