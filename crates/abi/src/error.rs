//! Standardized error classes and code values.

use std::fmt;

use crate::handle::HandleKind;

/// Result alias for ABI-level operations.
pub type AbiResult<T> = Result<T, AbiError>;

/// Standardized MPI error classes (a practical subset, plus the
/// fault-tolerance classes used by the failure-injection extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbiError {
    /// Invalid buffer pointer / length mismatch.
    Buffer,
    /// Invalid count argument.
    Count,
    /// Invalid datatype handle.
    Datatype,
    /// Invalid tag argument.
    Tag,
    /// Invalid communicator handle.
    Comm,
    /// Invalid rank.
    Rank,
    /// Invalid request handle.
    Request,
    /// Invalid root.
    Root,
    /// Invalid group handle.
    Group,
    /// Invalid reduction operation handle.
    Op,
    /// Message truncated on receive.
    Truncate,
    /// Invalid generic argument.
    Arg,
    /// Unknown/other error, with a description.
    Other,
    /// Internal library error (bug in a vendor simulation surfaced at the
    /// ABI boundary).
    Intern,
    /// A peer process failed (fault-tolerance extension, ULFM-style).
    ProcFailed,
    /// The communication substrate shut down underneath the library.
    Shutdown,
    /// The library has been finalized.
    Finalized,
    /// Feature not supported by this library.
    Unsupported,
    /// The coordinated checkpoint protocol failed (a rank died or the
    /// application violated the safe-point contract mid-round).
    Ckpt,
}

impl AbiError {
    /// The standardized integer code for this class. `MPI_SUCCESS` is 0 and
    /// is represented by `Ok(_)` on the Rust side, so all codes here are
    /// positive.
    pub const fn code(self) -> i32 {
        match self {
            AbiError::Buffer => 1,
            AbiError::Count => 2,
            AbiError::Datatype => 3,
            AbiError::Tag => 4,
            AbiError::Comm => 5,
            AbiError::Rank => 6,
            AbiError::Request => 7,
            AbiError::Root => 8,
            AbiError::Group => 9,
            AbiError::Op => 10,
            AbiError::Truncate => 15,
            AbiError::Arg => 13,
            AbiError::Other => 16,
            AbiError::Intern => 17,
            AbiError::ProcFailed => 75,
            AbiError::Shutdown => 76,
            AbiError::Finalized => 50,
            AbiError::Unsupported => 51,
            AbiError::Ckpt => 52,
        }
    }

    /// Recover the class from a standardized code.
    pub fn from_code(code: i32) -> Option<AbiError> {
        AbiError::ALL.into_iter().find(|e| e.code() == code)
    }

    /// All error classes.
    pub const ALL: [AbiError; 19] = [
        AbiError::Buffer,
        AbiError::Count,
        AbiError::Datatype,
        AbiError::Tag,
        AbiError::Comm,
        AbiError::Rank,
        AbiError::Request,
        AbiError::Root,
        AbiError::Group,
        AbiError::Op,
        AbiError::Truncate,
        AbiError::Arg,
        AbiError::Other,
        AbiError::Intern,
        AbiError::ProcFailed,
        AbiError::Shutdown,
        AbiError::Finalized,
        AbiError::Unsupported,
        AbiError::Ckpt,
    ];

    /// The "invalid handle" error class for a given handle kind.
    pub fn for_kind(kind: HandleKind) -> AbiError {
        match kind {
            HandleKind::Comm => AbiError::Comm,
            HandleKind::Group => AbiError::Group,
            HandleKind::Datatype => AbiError::Datatype,
            HandleKind::Op => AbiError::Op,
            HandleKind::Request => AbiError::Request,
            HandleKind::Errhandler | HandleKind::Invalid => AbiError::Arg,
        }
    }
}

impl fmt::Display for AbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            AbiError::Buffer => "invalid buffer",
            AbiError::Count => "invalid count",
            AbiError::Datatype => "invalid datatype handle",
            AbiError::Tag => "invalid tag",
            AbiError::Comm => "invalid communicator handle",
            AbiError::Rank => "invalid rank",
            AbiError::Request => "invalid request handle",
            AbiError::Root => "invalid root",
            AbiError::Group => "invalid group handle",
            AbiError::Op => "invalid reduction operation",
            AbiError::Truncate => "message truncated on receive",
            AbiError::Arg => "invalid argument",
            AbiError::Other => "unknown error",
            AbiError::Intern => "internal library error",
            AbiError::ProcFailed => "peer process failed",
            AbiError::Shutdown => "communication substrate shut down",
            AbiError::Finalized => "library already finalized",
            AbiError::Unsupported => "operation not supported",
            AbiError::Ckpt => "checkpoint protocol failed",
        };
        write!(f, "MPI error {}: {}", self.code(), text)
    }
}

impl std::error::Error for AbiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_unique_and_positive() {
        let mut seen = std::collections::HashSet::new();
        for e in AbiError::ALL {
            assert!(e.code() > 0, "{e:?} must have positive code");
            assert!(seen.insert(e.code()), "duplicate code for {e:?}");
        }
    }

    #[test]
    fn codes_round_trip() {
        for e in AbiError::ALL {
            assert_eq!(AbiError::from_code(e.code()), Some(e));
        }
        assert_eq!(AbiError::from_code(0), None, "0 is MPI_SUCCESS");
        assert_eq!(AbiError::from_code(-1), None);
    }

    #[test]
    fn kind_mapping() {
        assert_eq!(AbiError::for_kind(HandleKind::Comm), AbiError::Comm);
        assert_eq!(AbiError::for_kind(HandleKind::Datatype), AbiError::Datatype);
        assert_eq!(AbiError::for_kind(HandleKind::Invalid), AbiError::Arg);
    }

    #[test]
    fn display_contains_code() {
        assert!(AbiError::Truncate.to_string().contains("15"));
    }
}
