//! The matching engine: MPICH-flavour progress over the shared indexed
//! matching core ([`simnet::matching`]).
//!
//! The matching data structure — per-(context, source, tag) FIFO buckets
//! with a global arrival sequence for wildcard receives — lives in
//! `simnet` and is shared with the Open MPI flavour. What stays
//! MPICH-specific is the **cost model**: the ch3:sock channel charges a
//! progress-engine wakeup latency on small inter-node messages, modelled
//! here as an [`ArrivalModel`] hook applied once per message at ingest.

use simnet::matching::{ArrivalModel, MatchCore, MatchedMsg};
use simnet::{Envelope, RankCtx, SimError, SimResult, VirtualTime};

/// An envelope that has been pulled off the wire, with its computed arrival
/// time (the receiver's jitter is applied exactly once, at pull time).
#[derive(Debug, Clone)]
pub struct Arrived {
    /// The message.
    pub env: Envelope,
    /// When it reached this rank.
    pub arrival: VirtualTime,
}

impl From<MatchedMsg> for Arrived {
    fn from(m: MatchedMsg) -> Arrived {
        Arrived {
            env: m.env,
            arrival: m.arrival,
        }
    }
}

/// Source selector for matching (already translated to world ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any source (`MPI_ANY_SOURCE`).
    Any,
    /// Match a specific world rank.
    World(usize),
}

impl SrcSel {
    fn pattern(self) -> simnet::SrcPattern {
        match self {
            SrcSel::Any => simnet::SrcPattern::Any,
            SrcSel::World(w) => simnet::SrcPattern::Is(w),
        }
    }
}

/// Tag selector for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match a specific tag.
    Is(i32),
}

impl TagSel {
    fn pattern(self) -> simnet::TagPattern {
        match self {
            TagSel::Any => simnet::TagPattern::Any,
            TagSel::Is(t) => simnet::TagPattern::Is(t),
        }
    }
}

/// ch3:sock cost model: small inter-node messages pay the sock channel's
/// progress-engine wakeup latency on top of the wire arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct SockArrival {
    /// Latency added to qualifying messages.
    pub small_latency: VirtualTime,
    /// Payloads up to this size qualify.
    pub small_max: usize,
}

impl ArrivalModel for SockArrival {
    fn arrival(&self, ctx: &RankCtx, env: &Envelope) -> VirtualTime {
        let mut arrival = ctx.arrival_time(env);
        if env.payload.len() <= self.small_max
            && ctx.spec().link_class(env.src, ctx.rank()) == simnet::LinkClass::InterNode
        {
            arrival += self.small_latency;
        }
        arrival
    }
}

/// The per-process matching engine.
#[derive(Default)]
pub struct MatchEngine {
    core: MatchCore<SockArrival>,
}

impl MatchEngine {
    /// Create an empty engine (no sock latency model).
    pub fn new() -> MatchEngine {
        MatchEngine::default()
    }

    /// Configure the sock-channel small-message latency model.
    pub fn with_sock_latency(latency: VirtualTime, max_bytes: usize) -> MatchEngine {
        MatchEngine {
            core: MatchCore::with_model(SockArrival {
                small_latency: latency,
                small_max: max_bytes,
            }),
        }
    }

    /// Number of queued unexpected messages (diagnostics / drain).
    pub fn unexpected_len(&self) -> usize {
        self.core.unexpected_len()
    }

    /// Batch-pull everything currently available off the wire into the
    /// unexpected index (non-blocking; one mailbox lock per call).
    pub fn pump(&mut self, ctx: &RankCtx) -> SimResult<()> {
        self.core.pump(ctx)
    }

    /// Non-blocking match: returns the first matching message in arrival
    /// order, if one is already here.
    pub fn match_nonblocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Option<Arrived>> {
        Ok(self
            .core
            .try_match(ctx, ctx_id, src.pattern(), tag.pattern())?
            .map(Arrived::from))
    }

    /// Blocking match: waits for a matching message.
    pub fn match_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Arrived> {
        Ok(self
            .core
            .match_blocking(ctx, ctx_id, src.pattern(), tag.pattern())?
            .into())
    }

    /// Non-blocking peek (for `MPI_Iprobe`): like match, but leaves the
    /// message queued.
    pub fn peek_nonblocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Option<Arrived>> {
        Ok(self
            .core
            .try_peek(ctx, ctx_id, src.pattern(), tag.pattern())?
            .map(Arrived::from))
    }

    /// Blocking peek (for `MPI_Probe`).
    pub fn peek_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Arrived> {
        Ok(self
            .core
            .peek_blocking(ctx, ctx_id, src.pattern(), tag.pattern())?
            .into())
    }

    /// Used by fault-tolerant paths: true if the engine would block forever
    /// because the fabric is gone.
    pub fn is_disconnected(err: &SimError) -> bool {
        matches!(err, SimError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::{ClusterSpec, Fabric, NoiseModel};
    use std::rc::Rc;
    use std::sync::Arc;

    fn pair() -> (Rc<RankCtx>, Rc<RankCtx>) {
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let c0 = Rc::new(RankCtx::new(
            0,
            spec.clone(),
            ep0,
            NoiseModel::disabled().stream_for_rank(0),
        ));
        let c1 = Rc::new(RankCtx::new(
            1,
            spec,
            ep1,
            NoiseModel::disabled().stream_for_rank(1),
        ));
        (c0, c1)
    }

    fn send(c: &RankCtx, dst: usize, ctx_id: u64, tag: i32, data: &[u8]) {
        c.endpoint()
            .send_raw(dst, ctx_id, tag, Bytes::copy_from_slice(data), c)
            .unwrap();
    }

    #[test]
    fn matches_by_context_source_and_tag() {
        let (c0, c1) = pair();
        send(&c0, 1, 7, 5, b"wrong ctx");
        send(&c0, 1, 9, 5, b"right");
        let mut eng = MatchEngine::new();
        let got = eng
            .match_nonblocking(&c1, 9, SrcSel::World(0), TagSel::Is(5))
            .unwrap()
            .expect("should match");
        assert_eq!(&got.env.payload[..], b"right");
        // The wrong-context message stays queued.
        assert_eq!(eng.unexpected_len(), 1);
    }

    #[test]
    fn nonblocking_miss_returns_none() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 1, b"tag one");
        let mut eng = MatchEngine::new();
        assert!(eng
            .match_nonblocking(&c1, 3, SrcSel::World(0), TagSel::Is(2))
            .unwrap()
            .is_none());
        assert_eq!(eng.unexpected_len(), 1);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 42, b"first");
        send(&c0, 1, 3, 43, b"second");
        let mut eng = MatchEngine::new();
        let a = eng
            .match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any)
            .unwrap()
            .unwrap();
        assert_eq!(&a.env.payload[..], b"first", "arrival order respected");
        let b = eng
            .match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any)
            .unwrap()
            .unwrap();
        assert_eq!(&b.env.payload[..], b"second");
    }

    #[test]
    fn fifo_non_overtaking_same_tag() {
        let (c0, c1) = pair();
        for i in 0..8u8 {
            send(&c0, 1, 3, 7, &[i]);
        }
        let mut eng = MatchEngine::new();
        for i in 0..8u8 {
            let got = eng
                .match_blocking(&c1, 3, SrcSel::World(0), TagSel::Is(7))
                .unwrap();
            assert_eq!(got.env.payload[0], i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 7, b"peeked");
        let mut eng = MatchEngine::new();
        let p = eng
            .peek_nonblocking(&c1, 3, SrcSel::World(0), TagSel::Is(7))
            .unwrap()
            .unwrap();
        assert_eq!(&p.env.payload[..], b"peeked");
        assert_eq!(eng.unexpected_len(), 1);
        let m = eng
            .match_blocking(&c1, 3, SrcSel::World(0), TagSel::Is(7))
            .unwrap();
        assert_eq!(&m.env.payload[..], b"peeked");
        assert_eq!(eng.unexpected_len(), 0);
    }

    #[test]
    fn arrival_time_recorded_once() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 7, b"x");
        let mut eng = MatchEngine::new();
        let p = eng
            .peek_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any)
            .unwrap()
            .unwrap();
        let m = eng
            .match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any)
            .unwrap()
            .unwrap();
        assert_eq!(
            p.arrival, m.arrival,
            "jitter must be drawn exactly once per message"
        );
        assert!(m.arrival >= c1.spec().link_between(0, 1).alpha);
    }

    #[test]
    fn sock_latency_applies_to_small_internode_only() {
        let spec = Arc::new(ClusterSpec::builder().nodes(2).ranks_per_node(1).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let c0 = RankCtx::new(
            0,
            spec.clone(),
            ep0,
            NoiseModel::disabled().stream_for_rank(0),
        );
        let c1 = RankCtx::new(1, spec, ep1, NoiseModel::disabled().stream_for_rank(1));
        let sock = VirtualTime::from_micros(50);
        send(&c0, 1, 0, 0, b"small");
        send(&c0, 1, 0, 1, &[0u8; 4096]);
        let mut eng = MatchEngine::with_sock_latency(sock, 1024);
        let small = eng
            .match_nonblocking(&c1, 0, SrcSel::Any, TagSel::Is(0))
            .unwrap()
            .unwrap();
        let big = eng
            .match_nonblocking(&c1, 0, SrcSel::Any, TagSel::Is(1))
            .unwrap()
            .unwrap();
        let wire_small = small.env.depart + c1.spec().link_between(0, 1).alpha;
        assert_eq!(
            small.arrival,
            wire_small + sock,
            "small message pays sock latency"
        );
        let wire_big = big.env.depart + c1.spec().link_between(0, 1).alpha;
        assert_eq!(big.arrival, wire_big, "large message does not");
    }
}
