//! The drained in-flight message pool.
//!
//! At checkpoint time, messages that were sent but not yet received are
//! pulled out of the network into upper-half memory (this pool), so the
//! checkpoint image captures them and the lower half can be discarded with
//! "no pending inter-process communication" — the invariant the paper
//! highlights that lets a restarted world freely pick a different MPI
//! library and even different transports.
//!
//! After restart, receive wrappers consult the pool **before** the network,
//! in FIFO order, preserving MPI's non-overtaking guarantee across the
//! checkpoint boundary.

use std::collections::VecDeque;

use dmtcp_sim::codec::{CodecError, Reader, Writer};
use mpi_abi::{consts, Handle};

/// A message caught in flight at checkpoint time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PooledMsg {
    /// Virtual id of the communicator it was sent on.
    pub vcomm: Handle,
    /// Source rank *within that communicator*.
    pub src: i32,
    /// Message tag.
    pub tag: i32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// FIFO pool of drained messages.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DrainPool {
    msgs: VecDeque<PooledMsg>,
}

impl DrainPool {
    /// Empty pool.
    pub fn new() -> DrainPool {
        DrainPool::default()
    }

    /// Number of pooled messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the pool is empty (the common case outside restarts).
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total pooled payload bytes (image size accounting).
    pub fn total_bytes(&self) -> usize {
        self.msgs.iter().map(|m| m.payload.len()).sum()
    }

    /// Add a drained message (checkpoint path).
    pub fn push(&mut self, msg: PooledMsg) {
        self.msgs.push_back(msg);
    }

    /// Take the first message matching (communicator, source, tag), where
    /// source/tag accept the standard wildcards. FIFO order.
    pub fn take_match(&mut self, vcomm: Handle, src: i32, tag: i32) -> Option<PooledMsg> {
        let pos = self.msgs.iter().position(|m| {
            m.vcomm == vcomm
                && (src == consts::ANY_SOURCE || m.src == src)
                && (tag == consts::ANY_TAG || m.tag == tag)
        })?;
        self.msgs.remove(pos)
    }

    /// Peek (probe semantics): like [`DrainPool::take_match`] but
    /// non-consuming.
    pub fn peek_match(&self, vcomm: Handle, src: i32, tag: i32) -> Option<&PooledMsg> {
        self.msgs.iter().find(|m| {
            m.vcomm == vcomm
                && (src == consts::ANY_SOURCE || m.src == src)
                && (tag == consts::ANY_TAG || m.tag == tag)
        })
    }

    /// Serialize.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.msgs.len() as u64);
        for m in &self.msgs {
            w.u64(m.vcomm.raw());
            w.i32(m.src);
            w.i32(m.tag);
            w.bytes(&m.payload);
        }
    }

    /// Deserialize.
    pub fn decode(r: &mut Reader<'_>) -> Result<DrainPool, CodecError> {
        let count = r.u64()?;
        if count > 1 << 24 {
            return Err(CodecError::LengthOutOfBounds(count));
        }
        let mut msgs = VecDeque::with_capacity(count as usize);
        for _ in 0..count {
            msgs.push_back(PooledMsg {
                vcomm: Handle::from_raw(r.u64()?),
                src: r.i32()?,
                tag: r.i32()?,
                payload: r.bytes()?.to_vec(),
            });
        }
        Ok(DrainPool { msgs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: i32, tag: i32, byte: u8) -> PooledMsg {
        PooledMsg {
            vcomm: Handle::COMM_WORLD,
            src,
            tag,
            payload: vec![byte; 4],
        }
    }

    #[test]
    fn fifo_matching_with_wildcards() {
        let mut p = DrainPool::new();
        p.push(msg(0, 1, 0xA));
        p.push(msg(1, 1, 0xB));
        p.push(msg(0, 2, 0xC));
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_bytes(), 12);
        // Wildcard source takes arrival order.
        let first = p
            .take_match(Handle::COMM_WORLD, consts::ANY_SOURCE, 1)
            .unwrap();
        assert_eq!(first.payload[0], 0xA);
        // Specific source skips non-matching entries.
        let c = p
            .take_match(Handle::COMM_WORLD, 0, consts::ANY_TAG)
            .unwrap();
        assert_eq!(c.payload[0], 0xC);
        // Peek does not consume.
        assert!(p.peek_match(Handle::COMM_WORLD, 1, 1).is_some());
        assert_eq!(p.len(), 1);
        // Wrong communicator: no match.
        assert!(p
            .take_match(Handle::COMM_SELF, consts::ANY_SOURCE, consts::ANY_TAG)
            .is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut p = DrainPool::new();
        p.push(msg(3, 9, 0x7));
        p.push(PooledMsg {
            vcomm: Handle::dynamic(mpi_abi::HandleKind::Comm, 0x1000),
            src: 0,
            tag: 0,
            payload: vec![],
        });
        let mut w = Writer::new();
        p.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::checked(&buf).unwrap();
        let back = DrainPool::decode(&mut r).unwrap();
        assert_eq!(p, back);
    }
}
