//! The matching engine: MPICH-flavour progress and (context, source, tag)
//! matching over the raw FIFO transport.
//!
//! Real MPI libraries keep an *unexpected message queue* per process; posted
//! receives first search it, then block on the network. We do exactly that.
//! Matching scans in arrival order, which — combined with the fabric's
//! per-pair FIFO guarantee — yields MPI's non-overtaking semantics.

use std::collections::VecDeque;

use simnet::{Envelope, RankCtx, SimError, SimResult, VirtualTime};

/// An envelope that has been pulled off the wire, with its computed arrival
/// time (the receiver's jitter is applied exactly once, at pull time).
#[derive(Debug, Clone)]
pub struct Arrived {
    /// The message.
    pub env: Envelope,
    /// When it reached this rank.
    pub arrival: VirtualTime,
}

/// Source selector for matching (already translated to world ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any source (`MPI_ANY_SOURCE`).
    Any,
    /// Match a specific world rank.
    World(usize),
}

/// Tag selector for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
    /// Match a specific tag.
    Is(i32),
}

/// The per-process matching engine.
#[derive(Default)]
pub struct MatchEngine {
    unexpected: VecDeque<Arrived>,
    /// ch3:sock progress-engine latency added to small inter-node
    /// messages (see [`crate::tuning::Tuning::sock_small_latency`]).
    sock_small_latency: VirtualTime,
    /// Payloads up to this size pay `sock_small_latency`.
    sock_small_max: usize,
}

impl MatchEngine {
    /// Create an empty engine.
    pub fn new() -> MatchEngine {
        MatchEngine::default()
    }

    /// Configure the sock-channel small-message latency model.
    pub fn with_sock_latency(latency: VirtualTime, max_bytes: usize) -> MatchEngine {
        MatchEngine {
            unexpected: VecDeque::new(),
            sock_small_latency: latency,
            sock_small_max: max_bytes,
        }
    }

    /// Arrival time of an envelope at this rank, including the sock
    /// channel's wakeup latency for small inter-node messages.
    fn arrived(&self, ctx: &RankCtx, env: Envelope) -> Arrived {
        let mut arrival = ctx.arrival_time(&env);
        if env.payload.len() <= self.sock_small_max
            && ctx.spec().link_class(env.src, ctx.rank()) == simnet::LinkClass::InterNode
        {
            arrival += self.sock_small_latency;
        }
        Arrived { env, arrival }
    }

    /// Number of queued unexpected messages (diagnostics / drain).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    fn matches(a: &Arrived, ctx_id: u64, src: SrcSel, tag: TagSel) -> bool {
        a.env.ctx_id == ctx_id
            && match src {
                SrcSel::Any => true,
                SrcSel::World(w) => a.env.src == w,
            }
            && match tag {
                TagSel::Any => true,
                TagSel::Is(t) => a.env.tag == t,
            }
    }

    /// Pull everything currently available off the wire into the
    /// unexpected queue (non-blocking).
    pub fn pump(&mut self, ctx: &RankCtx) -> SimResult<()> {
        while let Some(env) = ctx.endpoint().poll_raw()? {
            let a = self.arrived(ctx, env);
            self.unexpected.push_back(a);
        }
        Ok(())
    }

    fn find(&self, ctx_id: u64, src: SrcSel, tag: TagSel) -> Option<usize> {
        self.unexpected.iter().position(|a| Self::matches(a, ctx_id, src, tag))
    }

    /// Non-blocking match: returns the first matching message in arrival
    /// order, if one is already here.
    pub fn match_nonblocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Option<Arrived>> {
        self.pump(ctx)?;
        let found = self.find(ctx_id, src, tag).and_then(|i| self.unexpected.remove(i));
        if let Some(a) = &found {
            ctx.count_recv(a.env.len());
        }
        Ok(found)
    }

    /// Blocking match: waits for a matching message.
    pub fn match_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Arrived> {
        loop {
            if let Some(found) = self.match_nonblocking(ctx, ctx_id, src, tag)? {
                return Ok(found);
            }
            // Nothing queued: block for the next wire message, then retry.
            let env = ctx.endpoint().recv_raw()?;
            let a = self.arrived(ctx, env);
            self.unexpected.push_back(a);
        }
    }

    /// Non-blocking peek (for `MPI_Iprobe`): like match, but leaves the
    /// message queued.
    pub fn peek_nonblocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Option<Arrived>> {
        self.pump(ctx)?;
        Ok(self.find(ctx_id, src, tag).map(|i| self.unexpected[i].clone()))
    }

    /// Blocking peek (for `MPI_Probe`).
    pub fn peek_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcSel,
        tag: TagSel,
    ) -> SimResult<Arrived> {
        loop {
            if let Some(found) = self.peek_nonblocking(ctx, ctx_id, src, tag)? {
                return Ok(found);
            }
            let env = ctx.endpoint().recv_raw()?;
            let a = self.arrived(ctx, env);
            self.unexpected.push_back(a);
        }
    }

    /// Used by fault-tolerant paths: true if the engine would block forever
    /// because the fabric is gone.
    pub fn is_disconnected(err: &SimError) -> bool {
        matches!(err, SimError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::{ClusterSpec, Fabric, NoiseModel};
    use std::rc::Rc;
    use std::sync::Arc;

    fn pair() -> (Rc<RankCtx>, Rc<RankCtx>) {
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let c0 = Rc::new(RankCtx::new(0, spec.clone(), ep0, NoiseModel::disabled().stream_for_rank(0)));
        let c1 = Rc::new(RankCtx::new(1, spec, ep1, NoiseModel::disabled().stream_for_rank(1)));
        (c0, c1)
    }

    fn send(c: &RankCtx, dst: usize, ctx_id: u64, tag: i32, data: &[u8]) {
        c.endpoint().send_raw(dst, ctx_id, tag, Bytes::copy_from_slice(data), c).unwrap();
    }

    #[test]
    fn matches_by_context_source_and_tag() {
        let (c0, c1) = pair();
        send(&c0, 1, 7, 5, b"wrong ctx");
        send(&c0, 1, 9, 5, b"right");
        let mut eng = MatchEngine::new();
        let got = eng
            .match_nonblocking(&c1, 9, SrcSel::World(0), TagSel::Is(5))
            .unwrap()
            .expect("should match");
        assert_eq!(&got.env.payload[..], b"right");
        // The wrong-context message stays queued.
        assert_eq!(eng.unexpected_len(), 1);
    }

    #[test]
    fn nonblocking_miss_returns_none() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 1, b"tag one");
        let mut eng = MatchEngine::new();
        assert!(eng
            .match_nonblocking(&c1, 3, SrcSel::World(0), TagSel::Is(2))
            .unwrap()
            .is_none());
        assert_eq!(eng.unexpected_len(), 1);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 42, b"first");
        send(&c0, 1, 3, 43, b"second");
        let mut eng = MatchEngine::new();
        let a = eng.match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any).unwrap().unwrap();
        assert_eq!(&a.env.payload[..], b"first", "arrival order respected");
        let b = eng.match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any).unwrap().unwrap();
        assert_eq!(&b.env.payload[..], b"second");
    }

    #[test]
    fn fifo_non_overtaking_same_tag() {
        let (c0, c1) = pair();
        for i in 0..8u8 {
            send(&c0, 1, 3, 7, &[i]);
        }
        let mut eng = MatchEngine::new();
        for i in 0..8u8 {
            let got =
                eng.match_blocking(&c1, 3, SrcSel::World(0), TagSel::Is(7)).unwrap();
            assert_eq!(got.env.payload[0], i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 7, b"peeked");
        let mut eng = MatchEngine::new();
        let p = eng
            .peek_nonblocking(&c1, 3, SrcSel::World(0), TagSel::Is(7))
            .unwrap()
            .unwrap();
        assert_eq!(&p.env.payload[..], b"peeked");
        assert_eq!(eng.unexpected_len(), 1);
        let m = eng.match_blocking(&c1, 3, SrcSel::World(0), TagSel::Is(7)).unwrap();
        assert_eq!(&m.env.payload[..], b"peeked");
        assert_eq!(eng.unexpected_len(), 0);
    }

    #[test]
    fn arrival_time_recorded_once() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 7, b"x");
        let mut eng = MatchEngine::new();
        let p = eng.peek_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any).unwrap().unwrap();
        let m = eng.match_nonblocking(&c1, 3, SrcSel::Any, TagSel::Any).unwrap().unwrap();
        assert_eq!(p.arrival, m.arrival, "jitter must be drawn exactly once per message");
        assert!(m.arrival >= c1.spec().link_between(0, 1).alpha);
    }
}
