//! `libmpich-wrap.so`: the wrap library that makes the MPICH-flavoured
//! vendor library speak the standard ABI.
//!
//! "Compiled against MPICH's headers" — i.e. this module is the only place
//! outside the vendor crate that knows MPICH's native handle encodings,
//! constants, status layout, and error codes. Every standard-ABI call is
//! translated argument by argument, exactly the per-call work real
//! Mukautuva wrap libraries do.

use std::rc::Rc;

use bytes::Bytes;

use mpi_abi::{
    consts, AbiError, AbiResult, AbiStatus, Datatype, Handle, HandleKind, MpiAbi, ReduceOp,
    UserOpFn,
};
use mpich_sim::{mpih, MpichProcess};
use simnet::RankCtx;

use crate::bimap::BiMap;

/// Translate a native MPICH error code to a standard error class.
fn err_from_native(code: i32) -> AbiError {
    match code {
        mpih::MPI_ERR_BUFFER => AbiError::Buffer,
        mpih::MPI_ERR_COUNT => AbiError::Count,
        mpih::MPI_ERR_TYPE => AbiError::Datatype,
        mpih::MPI_ERR_TAG => AbiError::Tag,
        mpih::MPI_ERR_COMM => AbiError::Comm,
        mpih::MPI_ERR_RANK => AbiError::Rank,
        mpih::MPI_ERR_ROOT => AbiError::Root,
        mpih::MPI_ERR_GROUP => AbiError::Group,
        mpih::MPI_ERR_OP => AbiError::Op,
        mpih::MPI_ERR_REQUEST => AbiError::Request,
        mpih::MPI_ERR_TRUNCATE => AbiError::Truncate,
        mpih::MPI_ERR_ARG => AbiError::Arg,
        mpih::MPI_ERR_INTERN => AbiError::Intern,
        mpih::MPI_ERR_PROC_FAILED => AbiError::ProcFailed,
        mpih::MPI_ERR_SHUTDOWN => AbiError::Shutdown,
        mpih::MPI_ERR_FINALIZED => AbiError::Finalized,
        _ => AbiError::Other,
    }
}

/// The predefined datatype translation table (standard → native).
fn dtype_native_of(d: Datatype) -> mpih::MpiDatatype {
    match d {
        Datatype::Byte => mpih::MPI_BYTE,
        Datatype::Char => mpih::MPI_CHAR,
        Datatype::Int8 => mpih::MPI_INT8_T,
        Datatype::Uint8 => mpih::MPI_UINT8_T,
        Datatype::Int16 => mpih::MPI_INT16_T,
        Datatype::Uint16 => mpih::MPI_UINT16_T,
        Datatype::Int32 => mpih::MPI_INT,
        Datatype::Uint32 => mpih::MPI_UINT32_T,
        Datatype::Int64 => mpih::MPI_INT64_T,
        Datatype::Uint64 => mpih::MPI_UINT64_T,
        Datatype::Float => mpih::MPI_FLOAT,
        Datatype::Double => mpih::MPI_DOUBLE,
    }
}

/// The predefined reduction-op translation table (standard → native).
fn op_native_of(op: ReduceOp) -> mpih::MpiOp {
    match op {
        ReduceOp::Sum => mpih::MPI_SUM,
        ReduceOp::Prod => mpih::MPI_PROD,
        ReduceOp::Min => mpih::MPI_MIN,
        ReduceOp::Max => mpih::MPI_MAX,
        ReduceOp::Land => mpih::MPI_LAND,
        ReduceOp::Lor => mpih::MPI_LOR,
        ReduceOp::Lxor => mpih::MPI_LXOR,
        ReduceOp::Band => mpih::MPI_BAND,
        ReduceOp::Bor => mpih::MPI_BOR,
        ReduceOp::Bxor => mpih::MPI_BXOR,
    }
}

/// The MPICH wrap library.
pub struct MpichWrap {
    native: MpichProcess,
    comms: BiMap<mpih::MpiComm>,
    dtypes: BiMap<mpih::MpiDatatype>,
    ops: BiMap<mpih::MpiOp>,
    reqs: BiMap<mpih::MpiRequest>,
}

impl MpichWrap {
    /// "Load" the wrap library: initialize the vendor library underneath.
    pub fn open(ctx: Rc<RankCtx>) -> MpichWrap {
        MpichWrap {
            native: MpichProcess::init(ctx),
            comms: BiMap::new(HandleKind::Comm),
            dtypes: BiMap::new(HandleKind::Datatype),
            ops: BiMap::new(HandleKind::Op),
            reqs: BiMap::new(HandleKind::Request),
        }
    }

    /// Open with explicit vendor tuning (ablation benchmarks).
    pub fn open_with_tuning(ctx: Rc<RankCtx>, tuning: mpich_sim::Tuning) -> MpichWrap {
        MpichWrap {
            native: MpichProcess::init_with_tuning(ctx, tuning),
            comms: BiMap::new(HandleKind::Comm),
            dtypes: BiMap::new(HandleKind::Datatype),
            ops: BiMap::new(HandleKind::Op),
            reqs: BiMap::new(HandleKind::Request),
        }
    }

    // ---- argument translation ------------------------------------------

    fn comm_in(&self, h: Handle) -> AbiResult<mpih::MpiComm> {
        match h {
            Handle::COMM_WORLD => Ok(mpih::MPI_COMM_WORLD),
            Handle::COMM_SELF => Ok(mpih::MPI_COMM_SELF),
            Handle::COMM_NULL => Err(AbiError::Comm),
            h => self.comms.native_of(h).ok_or(AbiError::Comm),
        }
    }

    fn dtype_in(&self, h: Handle) -> AbiResult<mpih::MpiDatatype> {
        if let Some(d) = Datatype::from_handle(h) {
            return Ok(dtype_native_of(d));
        }
        self.dtypes.native_of(h).ok_or(AbiError::Datatype)
    }

    fn op_in(&self, h: Handle) -> AbiResult<mpih::MpiOp> {
        if let Some(op) = ReduceOp::from_handle(h) {
            return Ok(op_native_of(op));
        }
        self.ops.native_of(h).ok_or(AbiError::Op)
    }

    fn src_in(src: i32) -> i32 {
        match src {
            consts::ANY_SOURCE => mpih::MPI_ANY_SOURCE,
            consts::PROC_NULL => mpih::MPI_PROC_NULL,
            r => r,
        }
    }

    fn dest_in(dest: i32) -> i32 {
        if dest == consts::PROC_NULL {
            mpih::MPI_PROC_NULL
        } else {
            dest
        }
    }

    fn tag_in(tag: i32) -> i32 {
        if tag == consts::ANY_TAG {
            mpih::MPI_ANY_TAG
        } else {
            tag
        }
    }

    fn status_out(st: mpih::MpiStatus) -> AbiStatus {
        let source = match st.mpi_source {
            mpih::MPI_PROC_NULL => consts::PROC_NULL,
            mpih::MPI_ANY_SOURCE => consts::ANY_SOURCE,
            r => r,
        };
        let tag = if st.mpi_tag == mpih::MPI_ANY_TAG {
            consts::ANY_TAG
        } else {
            st.mpi_tag
        };
        AbiStatus {
            source,
            tag,
            error: if st.mpi_error == mpih::MPI_SUCCESS {
                0
            } else {
                err_from_native(st.mpi_error).code()
            },
            count_bytes: st.count_bytes(),
        }
    }

    fn lift<T>(r: Result<T, i32>) -> AbiResult<T> {
        r.map_err(err_from_native)
    }
}

impl MpiAbi for MpichWrap {
    fn library_version(&self) -> String {
        self.native.version().to_string()
    }

    fn finalize(&mut self) -> AbiResult<()> {
        Self::lift(self.native.finalize())
    }

    fn is_finalized(&self) -> bool {
        self.native.is_finalized()
    }

    fn wtime(&mut self) -> f64 {
        self.native.wtime()
    }

    fn comm_size(&mut self, comm: Handle) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_size(c))
    }

    fn comm_rank(&mut self, comm: Handle) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_rank(c))
    }

    fn comm_translate_rank(&mut self, comm: Handle, rank: i32) -> AbiResult<i32> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.comm_translate_rank(c, rank))
    }

    fn send(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.send(buf, dt, Self::dest_in(dest), tag, c))
    }

    fn recv(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let st = Self::lift(
            self.native
                .recv(buf, dt, Self::src_in(src), Self::tag_in(tag), c),
        )?;
        Ok(Self::status_out(st))
    }

    fn isend(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let req = Self::lift(self.native.isend(buf, dt, Self::dest_in(dest), tag, c))?;
        Ok(self.reqs.intern(req))
    }

    fn irecv(
        &mut self,
        max_bytes: usize,
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let req =
            Self::lift(
                self.native
                    .irecv(max_bytes, dt, Self::src_in(src), Self::tag_in(tag), c),
            )?;
        Ok(self.reqs.intern(req))
    }

    fn wait(&mut self, request: Handle) -> AbiResult<(AbiStatus, Option<Bytes>)> {
        let native = self.reqs.remove(request).ok_or(AbiError::Request)?;
        let (st, payload) = Self::lift(self.native.wait(native))?;
        Ok((Self::status_out(st), payload))
    }

    fn test(&mut self, request: Handle) -> AbiResult<Option<(AbiStatus, Option<Bytes>)>> {
        let native = self.reqs.native_of(request).ok_or(AbiError::Request)?;
        match Self::lift(self.native.test(native))? {
            None => Ok(None),
            Some((st, payload)) => {
                self.reqs.remove(request);
                Ok(Some((Self::status_out(st), payload)))
            }
        }
    }

    fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<AbiStatus> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        let st = Self::lift(self.native.sendrecv(
            sendbuf,
            Self::dest_in(dest),
            sendtag,
            recvbuf,
            Self::src_in(src),
            Self::tag_in(recvtag),
            dt,
            c,
        ))?;
        Ok(Self::status_out(st))
    }

    fn probe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<AbiStatus> {
        let c = self.comm_in(comm)?;
        let st = Self::lift(self.native.probe(Self::src_in(src), Self::tag_in(tag), c))?;
        Ok(Self::status_out(st))
    }

    fn iprobe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<Option<AbiStatus>> {
        let c = self.comm_in(comm)?;
        let st = Self::lift(self.native.iprobe(Self::src_in(src), Self::tag_in(tag), c))?;
        Ok(st.map(Self::status_out))
    }

    fn barrier(&mut self, comm: Handle) -> AbiResult<()> {
        let c = self.comm_in(comm)?;
        Self::lift(self.native.barrier(c))
    }

    fn bcast(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.bcast(buf, dt, root, c))
    }

    fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.reduce(sendbuf, recvbuf, dt, o, root, c))
    }

    fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.allreduce(sendbuf, recvbuf, dt, o, c))
    }

    fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.gather(sendbuf, recvbuf, dt, root, c))
    }

    fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.scatter(sendbuf, recvbuf, dt, root, c))
    }

    fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.allgather(sendbuf, recvbuf, dt, c))
    }

    fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, c) = (self.dtype_in(datatype)?, self.comm_in(comm)?);
        Self::lift(self.native.alltoall(sendbuf, recvbuf, dt, c))
    }

    fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()> {
        let (dt, o, c) = (
            self.dtype_in(datatype)?,
            self.op_in(op)?,
            self.comm_in(comm)?,
        );
        Self::lift(self.native.scan(sendbuf, recvbuf, dt, o, c))
    }

    fn comm_dup(&mut self, comm: Handle) -> AbiResult<Handle> {
        let c = self.comm_in(comm)?;
        let dup = Self::lift(self.native.comm_dup(c))?;
        Ok(self.comms.intern(dup))
    }

    fn comm_split(&mut self, comm: Handle, color: i32, key: i32) -> AbiResult<Handle> {
        let c = self.comm_in(comm)?;
        let color = if color == consts::UNDEFINED {
            mpih::MPI_UNDEFINED
        } else {
            color
        };
        let sub = Self::lift(self.native.comm_split(c, color, key))?;
        if sub == mpih::MPI_COMM_NULL {
            Ok(Handle::COMM_NULL)
        } else {
            Ok(self.comms.intern(sub))
        }
    }

    fn comm_free(&mut self, comm: Handle) -> AbiResult<()> {
        let native = self.comms.remove(comm).ok_or(AbiError::Comm)?;
        Self::lift(self.native.comm_free(native))
    }

    fn type_size(&mut self, datatype: Handle) -> AbiResult<usize> {
        let dt = self.dtype_in(datatype)?;
        Self::lift(self.native.type_size(dt))
    }

    fn type_contiguous(&mut self, count: i32, oldtype: Handle) -> AbiResult<Handle> {
        let old = self.dtype_in(oldtype)?;
        let new = Self::lift(self.native.type_contiguous(count, old))?;
        Ok(self.dtypes.intern(new))
    }

    fn type_commit(&mut self, datatype: Handle) -> AbiResult<()> {
        let dt = self.dtype_in(datatype)?;
        Self::lift(self.native.type_commit(dt))
    }

    fn type_free(&mut self, datatype: Handle) -> AbiResult<()> {
        let native = self.dtypes.remove(datatype).ok_or(AbiError::Datatype)?;
        Self::lift(self.native.type_free(native))
    }

    fn op_create(&mut self, function: UserOpFn, commute: bool) -> AbiResult<Handle> {
        // `UserOpFn` and the vendor's user-fn type have identical shapes;
        // the function pointer passes straight through, as in C.
        let native = Self::lift(self.native.op_create(function, commute))?;
        Ok(self.ops.intern(native))
    }

    fn op_free(&mut self, op: Handle) -> AbiResult<()> {
        let native = self.ops.remove(op).ok_or(AbiError::Op)?;
        Self::lift(self.native.op_free(native))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_translation_tables() {
        assert_eq!(MpichWrap::src_in(consts::ANY_SOURCE), mpih::MPI_ANY_SOURCE);
        assert_eq!(MpichWrap::src_in(consts::PROC_NULL), mpih::MPI_PROC_NULL);
        assert_eq!(MpichWrap::src_in(5), 5);
        assert_eq!(MpichWrap::dest_in(consts::PROC_NULL), mpih::MPI_PROC_NULL);
        assert_eq!(MpichWrap::tag_in(consts::ANY_TAG), mpih::MPI_ANY_TAG);
        assert_eq!(MpichWrap::tag_in(42), 42);
    }

    #[test]
    fn status_layout_conversion() {
        let native = mpih::MpiStatus::for_receive(mpih::MPI_PROC_NULL, 7, 144);
        let std = MpichWrap::status_out(native);
        assert_eq!(std.source, consts::PROC_NULL);
        assert_eq!(std.tag, 7);
        assert_eq!(std.count_bytes, 144);
        assert_eq!(std.error, 0);
    }

    #[test]
    fn error_code_translation() {
        assert_eq!(err_from_native(mpih::MPI_ERR_TRUNCATE), AbiError::Truncate);
        assert_eq!(err_from_native(mpih::MPI_ERR_REQUEST), AbiError::Request);
        assert_eq!(
            err_from_native(mpih::MPI_ERR_PROC_FAILED),
            AbiError::ProcFailed
        );
        assert_eq!(err_from_native(9999), AbiError::Other);
    }

    #[test]
    fn predefined_dtype_and_op_tables_are_total() {
        for d in Datatype::ALL {
            // Every predefined standard type maps to a native type of the
            // same size (the size is encoded in the MPICH handle).
            assert_eq!(mpih::builtin_type_size(dtype_native_of(d)), d.size());
        }
        let mut natives: Vec<i32> = ReduceOp::ALL.iter().map(|&o| op_native_of(o)).collect();
        natives.sort_unstable();
        natives.dedup();
        assert_eq!(natives.len(), ReduceOp::ALL.len());
    }
}
