//! The Open MPI-flavoured **native ABI**: what this library's `mpi.h`
//! exposes.
//!
//! Everything here mirrors the representation choices of the Open MPI
//! family — and is deliberately incompatible with `mpich-sim`'s:
//!
//! * handles are **pointers** (modelled as newtyped `usize` addresses into
//!   library-owned object tables; predefined objects live at fixed sentinel
//!   "addresses" the way `&ompi_mpi_comm_world` is a fixed symbol address);
//! * `MPI_Status` has Open MPI's field order, with private `_cancelled` and
//!   `_ucount` fields after the public ones;
//! * wildcard/sentinel constants have Open MPI's values
//!   (`MPI_ANY_SOURCE = -1`, `MPI_PROC_NULL = -2`, …).
//!
//! A binary "compiled against" this module cannot run on `mpich-sim`, and
//! vice versa. Bridging this is the `muk` shim's whole job.

/// Native communicator handle: a pointer-like address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpiComm(pub usize);
/// Native datatype handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpiDatatype(pub usize);
/// Native reduction-op handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpiOp(pub usize);
/// Native request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpiRequest(pub usize);

// Sentinel "addresses" for predefined objects. Spaced like real symbol
// addresses in a loaded shared object.
const BASE: usize = 0x7f2a_0000_0000;

/// `MPI_COMM_NULL` (the null pointer sentinel of the comm kind).
pub const MPI_COMM_NULL: MpiComm = MpiComm(BASE);
/// `&ompi_mpi_comm_world`.
pub const MPI_COMM_WORLD: MpiComm = MpiComm(BASE + 0x1000);
/// `&ompi_mpi_comm_self`.
pub const MPI_COMM_SELF: MpiComm = MpiComm(BASE + 0x1040);
/// Dynamically created communicators are handed out from this address up,
/// in steps of [`HANDLE_STRIDE`].
pub const DYN_COMM_BASE: usize = BASE + 0x1000_0000;

/// Address stride between dynamic objects (like malloc'd structs).
pub const HANDLE_STRIDE: usize = 0x40;

/// `MPI_DATATYPE_NULL`.
pub const MPI_DATATYPE_NULL: MpiDatatype = MpiDatatype(BASE + 0x2000);
/// `&ompi_mpi_byte`.
pub const MPI_BYTE: MpiDatatype = MpiDatatype(BASE + 0x2040);
/// `&ompi_mpi_char`.
pub const MPI_CHAR: MpiDatatype = MpiDatatype(BASE + 0x2080);
/// `&ompi_mpi_int8_t`.
pub const MPI_INT8_T: MpiDatatype = MpiDatatype(BASE + 0x20c0);
/// `&ompi_mpi_uint8_t`.
pub const MPI_UINT8_T: MpiDatatype = MpiDatatype(BASE + 0x2100);
/// `&ompi_mpi_int16_t`.
pub const MPI_INT16_T: MpiDatatype = MpiDatatype(BASE + 0x2140);
/// `&ompi_mpi_uint16_t`.
pub const MPI_UINT16_T: MpiDatatype = MpiDatatype(BASE + 0x2180);
/// `&ompi_mpi_int` (32-bit).
pub const MPI_INT: MpiDatatype = MpiDatatype(BASE + 0x21c0);
/// `&ompi_mpi_uint32_t`.
pub const MPI_UINT32_T: MpiDatatype = MpiDatatype(BASE + 0x2200);
/// `&ompi_mpi_int64_t`.
pub const MPI_INT64_T: MpiDatatype = MpiDatatype(BASE + 0x2240);
/// `&ompi_mpi_uint64_t`.
pub const MPI_UINT64_T: MpiDatatype = MpiDatatype(BASE + 0x2280);
/// `&ompi_mpi_float`.
pub const MPI_FLOAT: MpiDatatype = MpiDatatype(BASE + 0x22c0);
/// `&ompi_mpi_double`.
pub const MPI_DOUBLE: MpiDatatype = MpiDatatype(BASE + 0x2300);
/// Dynamic (derived) datatypes are handed out from here.
pub const DYN_TYPE_BASE: usize = BASE + 0x2000_0000;

/// All predefined (non-null) datatypes with their element sizes.
pub const PREDEFINED_DATATYPES: [(MpiDatatype, usize); 12] = [
    (MPI_BYTE, 1),
    (MPI_CHAR, 1),
    (MPI_INT8_T, 1),
    (MPI_UINT8_T, 1),
    (MPI_INT16_T, 2),
    (MPI_UINT16_T, 2),
    (MPI_INT, 4),
    (MPI_UINT32_T, 4),
    (MPI_INT64_T, 8),
    (MPI_UINT64_T, 8),
    (MPI_FLOAT, 4),
    (MPI_DOUBLE, 8),
];

/// `MPI_OP_NULL`.
pub const MPI_OP_NULL: MpiOp = MpiOp(BASE + 0x3000);
/// `&ompi_mpi_op_max`.
pub const MPI_MAX: MpiOp = MpiOp(BASE + 0x3040);
/// `&ompi_mpi_op_min`.
pub const MPI_MIN: MpiOp = MpiOp(BASE + 0x3080);
/// `&ompi_mpi_op_sum`.
pub const MPI_SUM: MpiOp = MpiOp(BASE + 0x30c0);
/// `&ompi_mpi_op_prod`.
pub const MPI_PROD: MpiOp = MpiOp(BASE + 0x3100);
/// `&ompi_mpi_op_land`.
pub const MPI_LAND: MpiOp = MpiOp(BASE + 0x3140);
/// `&ompi_mpi_op_band`.
pub const MPI_BAND: MpiOp = MpiOp(BASE + 0x3180);
/// `&ompi_mpi_op_lor`.
pub const MPI_LOR: MpiOp = MpiOp(BASE + 0x31c0);
/// `&ompi_mpi_op_bor`.
pub const MPI_BOR: MpiOp = MpiOp(BASE + 0x3200);
/// `&ompi_mpi_op_lxor`.
pub const MPI_LXOR: MpiOp = MpiOp(BASE + 0x3240);
/// `&ompi_mpi_op_bxor`.
pub const MPI_BXOR: MpiOp = MpiOp(BASE + 0x3280);
/// Dynamic (user) ops are handed out from here.
pub const DYN_OP_BASE: usize = BASE + 0x3000_0000;

/// `MPI_REQUEST_NULL`.
pub const MPI_REQUEST_NULL: MpiRequest = MpiRequest(BASE + 0x4000);
/// Dynamic requests are handed out from here.
pub const DYN_REQUEST_BASE: usize = BASE + 0x4000_0000;

// ---------------------------------------------------------------------
// Wildcards & sentinels (Open MPI values — differ from MPICH's!)
// ---------------------------------------------------------------------

/// `MPI_ANY_SOURCE` (Open MPI: −1; MPICH uses −2).
pub const MPI_ANY_SOURCE: i32 = -1;
/// `MPI_ANY_TAG` (Open MPI: −1).
pub const MPI_ANY_TAG: i32 = -1;
/// `MPI_PROC_NULL` (Open MPI: −2; MPICH uses −1).
pub const MPI_PROC_NULL: i32 = -2;
/// `MPI_ROOT`.
pub const MPI_ROOT: i32 = -4;
/// `MPI_UNDEFINED`.
pub const MPI_UNDEFINED: i32 = -32766;
/// Largest supported tag.
pub const MPI_TAG_UB: i32 = 0x7FFF_FFF0;

// ---------------------------------------------------------------------
// Status (Open MPI field layout)
// ---------------------------------------------------------------------

/// `MPI_Status`, Open MPI layout: public fields first, then the private
/// `_cancelled` flag and `_ucount` byte count.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MpiStatus {
    /// `status.MPI_SOURCE`.
    pub mpi_source: i32,
    /// `status.MPI_TAG`.
    pub mpi_tag: i32,
    /// `status.MPI_ERROR`.
    pub mpi_error: i32,
    /// Private: cancelled flag.
    pub cancelled: i32,
    /// Private: bytes transferred.
    pub ucount: usize,
}

impl MpiStatus {
    /// Build a status for a completed receive.
    pub fn for_receive(source: i32, tag: i32, count_bytes: usize) -> MpiStatus {
        MpiStatus {
            mpi_source: source,
            mpi_tag: tag,
            mpi_error: MPI_SUCCESS,
            cancelled: 0,
            ucount: count_bytes,
        }
    }

    /// Total byte count.
    pub fn count_bytes(&self) -> usize {
        self.ucount
    }
}

// ---------------------------------------------------------------------
// Error codes (Open MPI's table; some values differ from MPICH's)
// ---------------------------------------------------------------------

/// `MPI_SUCCESS`.
pub const MPI_SUCCESS: i32 = 0;
/// `MPI_ERR_BUFFER`.
pub const MPI_ERR_BUFFER: i32 = 1;
/// `MPI_ERR_COUNT`.
pub const MPI_ERR_COUNT: i32 = 2;
/// `MPI_ERR_TYPE`.
pub const MPI_ERR_TYPE: i32 = 3;
/// `MPI_ERR_TAG`.
pub const MPI_ERR_TAG: i32 = 4;
/// `MPI_ERR_COMM`.
pub const MPI_ERR_COMM: i32 = 5;
/// `MPI_ERR_RANK`.
pub const MPI_ERR_RANK: i32 = 6;
/// `MPI_ERR_REQUEST` (Open MPI: 7; MPICH uses 19).
pub const MPI_ERR_REQUEST: i32 = 7;
/// `MPI_ERR_ROOT`.
pub const MPI_ERR_ROOT: i32 = 8;
/// `MPI_ERR_GROUP`.
pub const MPI_ERR_GROUP: i32 = 9;
/// `MPI_ERR_OP`.
pub const MPI_ERR_OP: i32 = 10;
/// `MPI_ERR_ARG`.
pub const MPI_ERR_ARG: i32 = 13;
/// `MPI_ERR_TRUNCATE`.
pub const MPI_ERR_TRUNCATE: i32 = 15;
/// `MPI_ERR_OTHER`.
pub const MPI_ERR_OTHER: i32 = 16;
/// `MPI_ERR_INTERN`.
pub const MPI_ERR_INTERN: i32 = 17;
/// Process failed (FT extension; Open MPI/ULFM value).
pub const MPI_ERR_PROC_FAILED: i32 = 57;
/// Substrate shut down underneath the library.
pub const MPI_ERR_SHUTDOWN: i32 = 58;
/// Library finalized.
pub const MPI_ERR_FINALIZED: i32 = 59;

/// Result alias for native Open MPI-flavour calls.
pub type OmpiResult<T> = Result<T, i32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_addresses_are_distinct_and_strided() {
        let addrs: Vec<usize> = PREDEFINED_DATATYPES.iter().map(|(d, _)| d.0).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len());
        for w in addrs.windows(2) {
            assert_eq!(
                w[1] - w[0],
                HANDLE_STRIDE,
                "symbols laid out at fixed stride"
            );
        }
    }

    #[test]
    fn wildcards_differ_from_mpich_flavour() {
        // MPICH: ANY_SOURCE=-2, PROC_NULL=-1. Open MPI: ANY_SOURCE=-1,
        // PROC_NULL=-2. Swapped! This is the classic silent-corruption
        // hazard the standard ABI eliminates.
        assert_eq!(MPI_ANY_SOURCE, -1);
        assert_eq!(MPI_PROC_NULL, -2);
    }

    #[test]
    fn status_layout_has_public_fields_first() {
        let st = MpiStatus::for_receive(3, 9, 128);
        assert_eq!(st.mpi_source, 3);
        assert_eq!(st.mpi_tag, 9);
        assert_eq!(st.count_bytes(), 128);
        assert_eq!(st.cancelled, 0);
    }

    #[test]
    fn dynamic_ranges_do_not_overlap_predefined() {
        // Compile-time facts, asserted in a const block.
        const {
            assert!(DYN_COMM_BASE > MPI_COMM_SELF.0);
            assert!(DYN_TYPE_BASE > MPI_DOUBLE.0);
            assert!(DYN_OP_BASE > MPI_BXOR.0);
            assert!(DYN_REQUEST_BASE > MPI_REQUEST_NULL.0);
        }
    }
}
