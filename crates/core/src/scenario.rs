//! Declarative fault-schedule scenarios: the matrix harness.
//!
//! The paper's core claim is that cross-vendor restart survives *any*
//! failure the runtime can throw. This module turns "any failure" into
//! **data**: a [`FaultSchedule`] is a composable value describing rank
//! fail-storms, correlated node-group kills, slow/straggler ranks, torn
//! tier uploads mid-ship and coordinator leader-kills at a chosen barrier
//! phase — and a [`ScenarioSpec`] is one row of a matrix (app × vendor
//! pair × world size × durability policy × schedule) parsed from a
//! dependency-free TOML-like spec file ([`parse_matrix`]).
//!
//! [`run_scenario`] executes one row and asserts the same three
//! invariants for every schedule:
//!
//! 1. **Consistent unwind** — every rank observes the same failure step,
//!    the run returns (no hang), and the epoch chain holds no partial or
//!    quarantined epoch;
//! 2. **Cross-vendor bit-identical restart** — the job restarted from the
//!    chain under the *other* vendor finishes with memories bitwise equal
//!    to an uninterrupted reference run;
//! 3. **Expected incidents in the flight recorder** — kills surface as
//!    [`EventKind::RankKill`] incidents, stragglers as
//!    [`EventKind::RankStall`], torn uploads as tier `put_retries`,
//!    leader-kills as replica recoveries.
//!
//! The `scenario` binary in `stool-bench` runs a committed matrix
//! (`benches/scenarios/matrix.toml`) and emits one structured JSON result
//! per row into `BENCH_matrix.json`, which `benchgate --matrix` gates
//! exactly. See `docs/scenarios.md`.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use dmtcp_sim::memory::Memory;
use dmtcp_sim::replica::{BarrierPhase, ReplicaFault};
use dmtcp_sim::store::StoreConfig;
use dmtcp_sim::tier::{GetFault, PutFault, TierConfig};
use muk::Vendor;
use simnet::telemetry::EventKind;
use simnet::{ClusterSpec, VirtualTime};

use crate::program::MpiProgram;
use crate::session::{
    Checkpointer, DurabilityPolicy, FaultPlan, ReplicaPolicy, RunOutcome, Session, StorePolicy,
    TierPolicy,
};
use crate::telemetry::TelemetrySnapshot;

// ---------------------------------------------------------------------------
// The fault schedule: failures as data
// ---------------------------------------------------------------------------

/// Who a [`KillEvent`] strikes. The failure is still observed *globally*
/// (every rank unwinds at the same safe point, like an `MPI_Abort`); the
/// victims determine which ranks the flight recorder blames with
/// [`EventKind::RankKill`] and which node-group carries the blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Victims {
    /// The whole world (a cluster-wide outage).
    World,
    /// A fail-storm of specific ranks.
    Ranks(Vec<usize>),
    /// A correlated node-group failure: every rank on the named nodes.
    Nodes(Vec<usize>),
}

impl Victims {
    /// The ranks this selection blames on `cluster`, sorted and deduped.
    pub fn resolve(&self, cluster: &ClusterSpec) -> Vec<usize> {
        let mut ranks: Vec<usize> = match self {
            Victims::World => (0..cluster.nranks()).collect(),
            Victims::Ranks(list) => list.clone(),
            Victims::Nodes(nodes) => (0..cluster.nranks())
                .filter(|&r| nodes.contains(&cluster.node_of(r)))
                .collect(),
        };
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// The node-group blamed for the failure (the first victim's node).
    pub fn blamed_node(&self, cluster: &ClusterSpec) -> usize {
        match self {
            Victims::World => 0,
            Victims::Nodes(nodes) => nodes.first().copied().unwrap_or(0),
            Victims::Ranks(ranks) => ranks.first().map(|&r| cluster.node_of(r)).unwrap_or(0),
        }
    }
}

/// One scheduled kill: the job dies globally when the application reaches
/// `at_step`, blamed on `victims`. Generalizes the single-shot
/// [`FaultPlan`] — a schedule may hold several kills, consumed one per
/// run as the job is restarted from the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillEvent {
    /// The safe-point step at which this kill strikes.
    pub at_step: u64,
    /// The blamed ranks/nodes.
    pub victims: Victims,
}

/// A slow-but-alive rank: every checkpoint safe point in
/// `[from_step, until_step)` costs this rank an extra `delay` of virtual
/// time before it arrives. Models an overheated node or a noisy
/// neighbour; correctness (the tree barrier, the cut) must not depend on
/// arrival skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Straggler {
    /// The delayed rank.
    pub rank: usize,
    /// First safe-point step that stalls (inclusive).
    pub from_step: u64,
    /// First safe-point step that no longer stalls (exclusive).
    pub until_step: u64,
    /// The injected per-safe-point delay.
    pub delay: VirtualTime,
}

/// A composable fault schedule: everything the runtime can throw at one
/// run, as one data value. Consumed by `Session::run_inner` — attach with
/// [`crate::SessionBuilder::fault_schedule`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Scheduled global kills, blamed on ranks or node-groups.
    pub kills: Vec<KillEvent>,
    /// Slow-but-alive ranks (virtual-clock delay injection).
    pub stragglers: Vec<Straggler>,
    /// FIFO upload-fault script applied to the remote tier during the
    /// run (torn/failed uploads mid-ship). Requires an attached tier.
    pub tier_puts: Vec<PutFault>,
    /// FIFO download-fault script applied to the remote tier while
    /// `restore_from_store` hydrates the chain. Requires an attached tier.
    pub tier_gets: Vec<GetFault>,
    /// Scripted coordinator-replica faults (leader kills at a chosen
    /// barrier phase), appended to the replica policy's own script.
    pub replica: Vec<ReplicaFault>,
}

impl FaultSchedule {
    /// Whether the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.stragglers.is_empty()
            && self.tier_puts.is_empty()
            && self.tier_gets.is_empty()
            && self.replica.is_empty()
    }

    /// Add a fail-storm of `ranks` at `step`.
    pub fn kill_ranks(mut self, step: u64, ranks: impl Into<Vec<usize>>) -> Self {
        self.kills.push(KillEvent {
            at_step: step,
            victims: Victims::Ranks(ranks.into()),
        });
        self
    }

    /// Add a correlated node-group kill at `step`.
    pub fn kill_nodes(mut self, step: u64, nodes: impl Into<Vec<usize>>) -> Self {
        self.kills.push(KillEvent {
            at_step: step,
            victims: Victims::Nodes(nodes.into()),
        });
        self
    }

    /// Add a whole-world kill at `step`.
    pub fn kill_world(mut self, step: u64) -> Self {
        self.kills.push(KillEvent {
            at_step: step,
            victims: Victims::World,
        });
        self
    }

    /// Delay `rank` by `delay` at every safe point in `[from, until)`.
    pub fn straggle(mut self, rank: usize, from: u64, until: u64, delay: VirtualTime) -> Self {
        self.stragglers.push(Straggler {
            rank,
            from_step: from,
            until_step: until,
            delay,
        });
        self
    }

    /// Script tier upload faults (FIFO, one per `put` call).
    pub fn tier_put_faults(mut self, faults: impl IntoIterator<Item = PutFault>) -> Self {
        self.tier_puts.extend(faults);
        self
    }

    /// Script tier download faults (FIFO, one per `get` call during
    /// hydration).
    pub fn tier_get_faults(mut self, faults: impl IntoIterator<Item = GetFault>) -> Self {
        self.tier_gets.extend(faults);
        self
    }

    /// Kill the coordinator-replica leader at `phase`.
    pub fn kill_leader_at(mut self, phase: BarrierPhase) -> Self {
        self.replica.push(ReplicaFault::KillLeaderAt(phase));
        self
    }

    /// The step of the earliest scheduled kill, if any.
    pub fn first_kill_step(&self) -> Option<u64> {
        self.kills.iter().map(|k| k.at_step).min()
    }

    /// The straggler entry covering `rank`, if any.
    pub(crate) fn straggler_for(&self, rank: usize) -> Option<Straggler> {
        self.stragglers.iter().find(|s| s.rank == rank).copied()
    }

    /// Internal-consistency checks against the cluster the schedule will
    /// run on. `Hold` faults are rejected: a held tier object would hang
    /// the scenario instead of failing it.
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<(), String> {
        for kill in &self.kills {
            match &kill.victims {
                Victims::World => {}
                Victims::Ranks(ranks) => {
                    if ranks.is_empty() {
                        return Err(format!("kill at step {}: empty rank list", kill.at_step));
                    }
                    if let Some(&r) = ranks.iter().find(|&&r| r >= cluster.nranks()) {
                        return Err(format!(
                            "kill at step {} blames rank {r} but the world has {} ranks",
                            kill.at_step,
                            cluster.nranks()
                        ));
                    }
                }
                Victims::Nodes(nodes) => {
                    if nodes.is_empty() {
                        return Err(format!("kill at step {}: empty node list", kill.at_step));
                    }
                    if let Some(&n) = nodes.iter().find(|&&n| n >= cluster.nodes) {
                        return Err(format!(
                            "kill at step {} blames node {n} but the cluster has {} nodes",
                            kill.at_step, cluster.nodes
                        ));
                    }
                }
            }
        }
        for s in &self.stragglers {
            if s.rank >= cluster.nranks() {
                return Err(format!(
                    "straggler rank {} out of range (world has {} ranks)",
                    s.rank,
                    cluster.nranks()
                ));
            }
            if s.from_step >= s.until_step {
                return Err(format!(
                    "straggler rank {}: empty step window [{}, {})",
                    s.rank, s.from_step, s.until_step
                ));
            }
            if s.delay == VirtualTime::ZERO {
                return Err(format!("straggler rank {}: zero delay", s.rank));
            }
        }
        if self.tier_puts.contains(&PutFault::Hold) {
            return Err("PutFault::Hold would hang a scenario; script Fail or Torn".into());
        }
        if self.tier_gets.contains(&GetFault::Hold) {
            return Err("GetFault::Hold would hang a scenario; script Fail or Torn".into());
        }
        Ok(())
    }

    /// The schedule that remains after a run failed at `failed_step`:
    /// kills at or before that step are consumed, as are the upload
    /// script (spent against the failed run's shipper) and the replica
    /// script (spent against its group). Stragglers and the hydration
    /// script persist — they apply to the restart.
    pub fn after_failure(&self, failed_step: u64) -> FaultSchedule {
        FaultSchedule {
            kills: self
                .kills
                .iter()
                .filter(|k| k.at_step > failed_step)
                .cloned()
                .collect(),
            stragglers: self.stragglers.clone(),
            tier_puts: Vec::new(),
            tier_gets: self.tier_gets.clone(),
            replica: Vec::new(),
        }
    }

    /// Resolve the kill list against the cluster: sorted by step, same-step
    /// events merged, victims expanded to rank lists, plus the legacy
    /// single-shot [`FaultPlan`] folded in as a node-group kill (its `node`
    /// is the blamed node-group).
    pub(crate) fn resolved_kills(
        &self,
        cluster: &ClusterSpec,
        legacy: Option<FaultPlan>,
    ) -> Vec<ResolvedKill> {
        let mut by_step: BTreeMap<u64, (Vec<usize>, usize)> = BTreeMap::new();
        let mut fold = |at_step: u64, victims: &Victims| {
            let ranks = victims.resolve(cluster);
            let node = victims.blamed_node(cluster);
            let entry = by_step.entry(at_step).or_insert_with(|| (Vec::new(), node));
            entry.0.extend(ranks);
        };
        for kill in &self.kills {
            fold(kill.at_step, &kill.victims);
        }
        if let Some(plan) = legacy {
            fold(plan.at_step, &Victims::Nodes(vec![plan.node]));
        }
        by_step
            .into_iter()
            .map(|(at_step, (mut victims, node))| {
                victims.sort_unstable();
                victims.dedup();
                ResolvedKill {
                    at_step,
                    victims,
                    node,
                }
            })
            .collect()
    }
}

/// A kill event resolved against a concrete cluster (victims expanded to
/// ranks). Consumed by `AppCtx::checkpoint_point`.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedKill {
    pub(crate) at_step: u64,
    pub(crate) victims: Vec<usize>,
    pub(crate) node: usize,
}

// ---------------------------------------------------------------------------
// Scenario specs
// ---------------------------------------------------------------------------

/// Which durability legs a scenario attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityKind {
    /// Local delta store only.
    Store,
    /// Delta store + remote second tier.
    Tier,
    /// Delta store + replicated coordinator.
    Replica,
    /// Delta store + tier + replicated coordinator.
    TierReplica,
}

impl DurabilityKind {
    /// Whether a remote tier is attached.
    pub fn has_tier(self) -> bool {
        matches!(self, DurabilityKind::Tier | DurabilityKind::TierReplica)
    }

    /// Whether a replicated coordinator is attached.
    pub fn has_replicas(self) -> bool {
        matches!(self, DurabilityKind::Replica | DurabilityKind::TierReplica)
    }

    /// The spec-file token.
    pub fn token(self) -> &'static str {
        match self {
            DurabilityKind::Store => "store",
            DurabilityKind::Tier => "tier",
            DurabilityKind::Replica => "replica",
            DurabilityKind::TierReplica => "tier+replica",
        }
    }
}

/// One row of the scenario matrix: app × vendor pair × world size ×
/// durability policy × [`FaultSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Row name (unique within a matrix; `[a-z0-9-]`).
    pub name: String,
    /// Application token (`ring`, `sleepy`, `wave`, `comd` — resolved by
    /// the runner's program factory).
    pub app: String,
    /// The vendor the job launches under; restarts alternate to the
    /// *other* vendor first (the paper's headline).
    pub vendor: Vendor,
    /// Cluster nodes.
    pub nodes: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Application steps (safe points).
    pub steps: u64,
    /// Application size knob (payload doubles, grid points, lattice edge —
    /// per-app meaning, resolved by the program factory).
    pub payload: u64,
    /// Periodic checkpoint interval (safe-point steps).
    pub ckpt_every: u64,
    /// Durability legs to attach.
    pub durability: DurabilityKind,
    /// Canonical rank-ordered reductions (required for apps whose
    /// floating-point reductions are not bitwise vendor-independent).
    pub det: bool,
    /// Delete the local chain before the first restart, forcing hydration
    /// from the remote tier alone. Requires a tier.
    pub wipe_local: bool,
    /// Member of the pinned PR-CI subset (nightly runs every row).
    pub pr: bool,
    /// The fault schedule.
    pub schedule: FaultSchedule,
}

impl ScenarioSpec {
    /// A spec with defaults (small ring world) under `name`.
    pub fn named(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            app: "ring".into(),
            vendor: Vendor::Mpich,
            nodes: 3,
            ranks_per_node: 2,
            steps: 24,
            payload: 64,
            ckpt_every: 8,
            durability: DurabilityKind::Store,
            det: false,
            wipe_local: false,
            pr: false,
            schedule: FaultSchedule::default(),
        }
    }

    /// The cluster this row runs on.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::builder()
            .nodes(self.nodes)
            .ranks_per_node(self.ranks_per_node)
            .build()
    }

    /// The *other* vendor — what the first restart runs under.
    pub fn restart_vendor(&self) -> Vendor {
        other_vendor(self.vendor)
    }

    /// Internal-consistency checks (bounds, durability compatibility).
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |msg: String| format!("scenario \"{}\": {msg}", self.name);
        if self.name.is_empty() {
            return Err("scenario with empty name".into());
        }
        if self.steps == 0 {
            return Err(ctx("steps must be positive".into()));
        }
        if self.ckpt_every == 0 || self.ckpt_every >= self.steps {
            return Err(ctx(format!(
                "ckpt_every {} must be in 1..steps ({})",
                self.ckpt_every, self.steps
            )));
        }
        self.schedule.validate(&self.cluster()).map_err(ctx)?;
        if !self.durability.has_tier()
            && (!self.schedule.tier_puts.is_empty() || !self.schedule.tier_gets.is_empty())
        {
            return Err(ctx(format!(
                "tier faults need durability = \"tier\" or \"tier+replica\" (got \"{}\")",
                self.durability.token()
            )));
        }
        if !self.durability.has_replicas() && !self.schedule.replica.is_empty() {
            return Err(ctx(format!(
                "leader-kill needs durability = \"replica\" or \"tier+replica\" (got \"{}\")",
                self.durability.token()
            )));
        }
        if self.wipe_local && !self.durability.has_tier() {
            return Err(ctx("wipe_local needs a remote tier to hydrate from".into()));
        }
        if let Some(first) = self.schedule.first_kill_step() {
            if first <= self.ckpt_every {
                return Err(ctx(format!(
                    "first kill at step {first} precedes the first checkpoint \
                     (ckpt_every = {}); recovery would restart from scratch",
                    self.ckpt_every
                )));
            }
            if first >= self.steps {
                return Err(ctx(format!(
                    "kill at step {first} is past the last step ({})",
                    self.steps
                )));
            }
        }
        Ok(())
    }
}

fn other_vendor(v: Vendor) -> Vendor {
    match v {
        Vendor::Mpich => Vendor::OpenMpi,
        Vendor::OpenMpi => Vendor::Mpich,
    }
}

// ---------------------------------------------------------------------------
// The TOML-like matrix parser (dependency-free, gate.rs style)
// ---------------------------------------------------------------------------

/// Parse a scenario-matrix spec file.
///
/// The format is a strict TOML subset, line-based:
///
/// ```text
/// # comment
/// [scenario.ring-storm-mpich]
/// app = "ring"              # ring | sleepy | wave | comd
/// vendor = "mpich"          # mpich | openmpi
/// nodes = 3
/// ranks_per_node = 2
/// steps = 24
/// payload = 64
/// ckpt_every = 8
/// durability = "store"      # store | tier | replica | tier+replica
/// det = false
/// wipe_local = false
/// pr = true
/// fault = "kill-ranks @14 1,3"
/// ```
///
/// `fault` may repeat; every other key appears at most once per section.
/// Unknown keys are rejected (strict schema, like the benchgate JSON
/// parsers). See `docs/scenarios.md` for the fault grammar.
pub fn parse_matrix(text: &str) -> Result<Vec<ScenarioSpec>, String> {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut current: Option<(ScenarioSpec, Vec<String>)> = None;

    fn finish(
        specs: &mut Vec<ScenarioSpec>,
        current: Option<(ScenarioSpec, Vec<String>)>,
    ) -> Result<(), String> {
        if let Some((spec, _)) = current {
            spec.validate()?;
            if specs.iter().any(|s| s.name == spec.name) {
                return Err(format!("duplicate scenario name \"{}\"", spec.name));
            }
            specs.push(spec);
        }
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            // A '#' inside a quoted value would be a comment too; the
            // grammar has no use for one, so keep the scanner simple.
            Some(pos) if !raw[..pos].contains('"') || raw[..pos].matches('"').count() % 2 == 0 => {
                raw[..pos].trim()
            }
            _ => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: unterminated section header"))?;
            let name = inner.strip_prefix("scenario.").ok_or_else(|| {
                format!("line {line_no}: section must be [scenario.<name>], got [{inner}]")
            })?;
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                return Err(format!(
                    "line {line_no}: scenario name \"{name}\" must be non-empty [a-z0-9-]"
                ));
            }
            finish(&mut specs, current.take())?;
            current = Some((ScenarioSpec::named(name), Vec::new()));
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`, got \"{line}\""))?;
        let (key, value) = (key.trim(), value.trim());
        let (spec, seen) = current
            .as_mut()
            .ok_or_else(|| format!("line {line_no}: \"{key}\" before any [scenario.*] section"))?;
        if key != "fault" {
            if seen.iter().any(|k| k == key) {
                return Err(format!(
                    "line {line_no}: duplicate key \"{key}\" in scenario \"{}\"",
                    spec.name
                ));
            }
            seen.push(key.to_string());
        }
        let err = |msg: String| format!("line {line_no}: {msg}");
        match key {
            "app" => spec.app = parse_str(value).map_err(err)?,
            "vendor" => {
                spec.vendor = match parse_str(value).map_err(err)?.as_str() {
                    "mpich" => Vendor::Mpich,
                    "openmpi" => Vendor::OpenMpi,
                    v => return Err(err(format!("unknown vendor \"{v}\""))),
                }
            }
            "nodes" => spec.nodes = parse_int(value).map_err(err)? as usize,
            "ranks_per_node" => spec.ranks_per_node = parse_int(value).map_err(err)? as usize,
            "steps" => spec.steps = parse_int(value).map_err(err)?,
            "payload" => spec.payload = parse_int(value).map_err(err)?,
            "ckpt_every" => spec.ckpt_every = parse_int(value).map_err(err)?,
            "durability" => {
                spec.durability = match parse_str(value).map_err(err)?.as_str() {
                    "store" => DurabilityKind::Store,
                    "tier" => DurabilityKind::Tier,
                    "replica" => DurabilityKind::Replica,
                    "tier+replica" => DurabilityKind::TierReplica,
                    v => return Err(err(format!("unknown durability \"{v}\""))),
                }
            }
            "det" => spec.det = parse_bool(value).map_err(err)?,
            "wipe_local" => spec.wipe_local = parse_bool(value).map_err(err)?,
            "pr" => spec.pr = parse_bool(value).map_err(err)?,
            "fault" => {
                let fault = parse_str(value).map_err(err)?;
                parse_fault(&fault, &mut spec.schedule).map_err(err)?;
            }
            other => {
                return Err(err(format!(
                    "unknown key \"{other}\" (strict schema; see docs/scenarios.md)"
                )))
            }
        }
    }
    finish(&mut specs, current)?;
    if specs.is_empty() {
        return Err("matrix spec declares no scenarios".into());
    }
    Ok(specs)
}

fn parse_str(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {v}"))?;
    if inner.contains('"') {
        return Err(format!("embedded quote in {v}"));
    }
    Ok(inner.to_string())
}

fn parse_int(v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("expected an unsigned integer, got {v}"))
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("expected true or false, got {v}")),
    }
}

fn parse_usize_list(v: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list element \"{s}\""))
        })
        .collect()
}

fn parse_at_step(tok: &str) -> Result<u64, String> {
    tok.strip_prefix('@')
        .ok_or_else(|| format!("expected @<step>, got \"{tok}\""))
        .and_then(parse_int)
}

/// Parse one `fault = "..."` clause into the schedule. Grammar:
///
/// ```text
/// kill-ranks @<step> <r1,r2,...>
/// kill-nodes @<step> <n1,n2,...>
/// kill-world @<step>
/// straggle rank=<r> from=<s> until=<s> delay_us=<n>
/// tier-put <fail|torn>[,...]
/// tier-get <fail|torn>[,...]
/// leader-kill <arrive|pre-seal|post-seal|release>
/// ```
fn parse_fault(clause: &str, schedule: &mut FaultSchedule) -> Result<(), String> {
    let toks: Vec<&str> = clause.split_whitespace().collect();
    match toks.as_slice() {
        ["kill-ranks", step, ranks] => {
            schedule.kills.push(KillEvent {
                at_step: parse_at_step(step)?,
                victims: Victims::Ranks(parse_usize_list(ranks)?),
            });
        }
        ["kill-nodes", step, nodes] => {
            schedule.kills.push(KillEvent {
                at_step: parse_at_step(step)?,
                victims: Victims::Nodes(parse_usize_list(nodes)?),
            });
        }
        ["kill-world", step] => {
            schedule.kills.push(KillEvent {
                at_step: parse_at_step(step)?,
                victims: Victims::World,
            });
        }
        ["straggle", rest @ ..] => {
            let (mut rank, mut from, mut until, mut delay_us) = (None, None, None, None);
            for kv in rest {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("straggle: expected key=value, got \"{kv}\""))?;
                match k {
                    "rank" => rank = Some(parse_int(v)? as usize),
                    "from" => from = Some(parse_int(v)?),
                    "until" => until = Some(parse_int(v)?),
                    "delay_us" => delay_us = Some(parse_int(v)?),
                    _ => return Err(format!("straggle: unknown key \"{k}\"")),
                }
            }
            schedule.stragglers.push(Straggler {
                rank: rank.ok_or("straggle: missing rank=")?,
                from_step: from.ok_or("straggle: missing from=")?,
                until_step: until.ok_or("straggle: missing until=")?,
                delay: VirtualTime::from_micros(delay_us.ok_or("straggle: missing delay_us=")?),
            });
        }
        ["tier-put", list] => {
            for f in list.split(',') {
                schedule.tier_puts.push(match f.trim() {
                    "fail" => PutFault::Fail,
                    "torn" => PutFault::Torn,
                    other => return Err(format!("tier-put: unknown fault \"{other}\"")),
                });
            }
        }
        ["tier-get", list] => {
            for f in list.split(',') {
                schedule.tier_gets.push(match f.trim() {
                    "fail" => GetFault::Fail,
                    "torn" => GetFault::Torn,
                    other => return Err(format!("tier-get: unknown fault \"{other}\"")),
                });
            }
        }
        ["leader-kill", phase] => {
            let phase = match *phase {
                "arrive" => BarrierPhase::Arrive,
                "pre-seal" => BarrierPhase::PreSeal,
                "post-seal" => BarrierPhase::PostSeal,
                "release" => BarrierPhase::Release,
                other => return Err(format!("leader-kill: unknown phase \"{other}\"")),
            };
            schedule.replica.push(ReplicaFault::KillLeaderAt(phase));
        }
        _ => {
            return Err(format!(
                "unknown fault clause \"{clause}\" (see docs/scenarios.md)"
            ))
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The scenario engine
// ---------------------------------------------------------------------------

/// What one executed scenario reported. `failures` is empty iff the row
/// passed; metrics are deterministic (virtual time, scripted faults) and
/// feed `BENCH_matrix.json`.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Row name.
    pub name: String,
    /// Application token.
    pub app: String,
    /// Launch vendor.
    pub vendor: Vendor,
    /// PR-subset member.
    pub pr: bool,
    /// Invariant failures (empty = passed).
    pub failures: Vec<String>,
    /// Global restarts forced by kill events.
    pub recovery_rounds: u64,
    /// Kill events consumed across the scenario.
    pub kills: u64,
    /// Epochs left on the final chain.
    pub epochs: u64,
    /// Tier upload retries observed (torn/failed uploads recovered).
    pub put_retries: u64,
    /// Straggler stalls recorded by the flight recorder.
    pub stalls: u64,
    /// Replica failover recoveries observed.
    pub elections: u64,
}

impl ScenarioResult {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Accumulated telemetry across a scenario's runs.
#[derive(Default)]
struct Observed {
    rank_kills: u64,
    stalls: u64,
    put_retries: u64,
    recoveries: u64,
    incidents_in_failed_runs: u64,
}

impl Observed {
    fn absorb(&mut self, snap: &TelemetrySnapshot, run_failed: bool) {
        self.rank_kills += snap.emitted(EventKind::RankKill);
        self.stalls += snap.emitted(EventKind::RankStall);
        if let Some(tier) = &snap.tier {
            self.put_retries += tier.put_retries;
        }
        if let Some(replica) = &snap.replica {
            self.recoveries += replica.recoveries;
        }
        if run_failed {
            self.incidents_in_failed_runs += snap.incidents();
        }
    }
}

/// Execute one scenario row: reference run, faulted run, restart chain
/// under the alternating vendor, and the three invariants. Never panics on
/// an invariant violation — failures are collected into the result so a
/// matrix run reports every broken row, not just the first.
///
/// `program` must implement the row's `app` for the row's `steps`/`payload`
/// (the runner's program factory does this mapping); `workdir` hosts the
/// row's chain/tier/replica directories (wiped on entry).
pub fn run_scenario(
    spec: &ScenarioSpec,
    program: &dyn MpiProgram,
    workdir: &Path,
) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: spec.name.clone(),
        app: spec.app.clone(),
        vendor: spec.vendor,
        pr: spec.pr,
        failures: Vec::new(),
        recovery_rounds: 0,
        kills: 0,
        epochs: 0,
        put_retries: 0,
        stalls: 0,
        elections: 0,
    };
    if let Err(msg) = spec.validate() {
        result.failures.push(msg);
        return result;
    }
    let base = workdir.join(&spec.name);
    let _ = std::fs::remove_dir_all(&base);
    let durability = durability_for(spec, &base);
    let mut observed = Observed::default();
    let mut references: BTreeMap<&'static str, Vec<Memory>> = BTreeMap::new();

    // The run/restart chain: launch under the primary vendor with the
    // full schedule; each kill fails the run globally, and the job is
    // restarted from the chain under the alternating vendor with the
    // remaining schedule.
    let mut remaining = spec.schedule.clone();
    let mut vendor = spec.vendor;
    let mut fresh = true;
    let max_rounds = spec.schedule.kills.len() as u64 + 2;
    let final_memories = loop {
        let session = match build_session(spec, vendor, durability.clone(), remaining.clone()) {
            Ok(s) => s,
            Err(e) => {
                result.failures.push(format!("session build: {e}"));
                break None;
            }
        };
        let outcome = if fresh {
            session.launch(program)
        } else {
            session.restore_from_store(program)
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                result.failures.push(format!(
                    "{} run under {} errored: {e}",
                    if fresh { "launch" } else { "restart" },
                    vendor.name()
                ));
                break None;
            }
        };
        let run_failed = outcome.is_failed();
        if let Some(snap) = session.telemetry() {
            observed.absorb(&snap, run_failed);
        }
        match outcome {
            RunOutcome::Completed { memories, .. } => break Some((memories, vendor)),
            RunOutcome::Checkpointed { .. } => {
                result
                    .failures
                    .push("run checkpoint-stopped; scenarios never schedule a Stop".into());
                break None;
            }
            RunOutcome::Failed { failed_step, .. } => {
                result.kills += 1;
                // Invariant 1a: the failure lands exactly where the
                // schedule says (every rank agreed, or run_inner would
                // have errored above).
                match remaining.first_kill_step() {
                    Some(expected) if expected == failed_step => {}
                    Some(expected) => result.failures.push(format!(
                        "failed at step {failed_step}, schedule expected {expected}"
                    )),
                    None => result
                        .failures
                        .push(format!("unscheduled failure at step {failed_step}")),
                }
                // Invariant 1b: the chain survived the unwind whole.
                check_chain(&durability, &mut result.failures);
                result.recovery_rounds += 1;
                if result.recovery_rounds >= max_rounds {
                    result
                        .failures
                        .push(format!("no convergence after {max_rounds} restarts"));
                    break None;
                }
                remaining = remaining.after_failure(failed_step);
                if spec.wipe_local && result.recovery_rounds == 1 {
                    if let Err(msg) = wipe_local_chain(&durability) {
                        result.failures.push(msg);
                        break None;
                    }
                }
                // Restarts alternate vendors, starting with the other one
                // (the paper's headline restart).
                vendor = if result.recovery_rounds % 2 == 1 {
                    spec.restart_vendor()
                } else {
                    spec.vendor
                };
                fresh = chain_is_empty(&durability);
            }
        }
    };

    // Invariant 2: bit-identical final state vs an uninterrupted
    // reference run under the finishing vendor.
    if let Some((memories, final_vendor)) = &final_memories {
        match reference_for(spec, *final_vendor, program, &mut references) {
            Ok(reference) => {
                if let Some(msg) = memories_differ(reference, memories) {
                    result
                        .failures
                        .push(format!("final state under {}: {msg}", final_vendor.name()));
                }
            }
            Err(e) => result.failures.push(e),
        }
        // Rows whose schedule kills nothing still must prove the
        // cross-vendor restart: restore the chain under the other vendor
        // and compare that run too.
        if result.recovery_rounds == 0 {
            verify_restart(spec, program, &durability, &mut references, &mut result);
        }
    }

    // Invariant 3: the flight recorder holds the schedule's expected
    // incident events.
    let expected_victims: u64 = spec
        .schedule
        .resolved_kills(&spec.cluster(), None)
        .iter()
        .map(|k| k.victims.len() as u64)
        .sum();
    if expected_victims > 0 {
        if observed.rank_kills < expected_victims {
            result.failures.push(format!(
                "expected >= {expected_victims} RankKill events, recorder saw {}",
                observed.rank_kills
            ));
        }
        if observed.incidents_in_failed_runs == 0 {
            result
                .failures
                .push("kills recorded no incidents (crash dump would not trigger)".into());
        }
    }
    if !spec.schedule.stragglers.is_empty() && observed.stalls == 0 {
        result
            .failures
            .push("stragglers scheduled but no RankStall events recorded".into());
    }
    if !spec.schedule.tier_puts.is_empty()
        && observed.put_retries < spec.schedule.tier_puts.len() as u64
    {
        result.failures.push(format!(
            "expected >= {} tier put retries (one per scripted upload fault), saw {}",
            spec.schedule.tier_puts.len(),
            observed.put_retries
        ));
    }
    if !spec.schedule.replica.is_empty() && observed.recoveries < spec.schedule.replica.len() as u64
    {
        result.failures.push(format!(
            "expected >= {} replica failover recoveries, saw {}",
            spec.schedule.replica.len(),
            observed.recoveries
        ));
    }

    result.epochs = final_epoch_count(&durability);
    result.put_retries = observed.put_retries;
    result.stalls = observed.stalls;
    result.elections = observed.recoveries;
    result
}

/// Store/tier tunables small enough for matrix worlds: tiny blocks find
/// dedup on tiny images; fast, bounded retries keep torn-upload rows
/// quick and deterministic.
fn durability_for(spec: &ScenarioSpec, base: &Path) -> DurabilityPolicy {
    let store = StorePolicy {
        dir: base.join("chain"),
        config: StoreConfig {
            block_size: 128,
            retain_epochs: 4,
            max_chain: 4,
            ..StoreConfig::default()
        },
        tier: None,
        tenant: String::new(),
    };
    let tier = spec.durability.has_tier().then(|| TierPolicy {
        dir: base.join("tier"),
        config: TierConfig {
            max_attempts: 6,
            backoff: Duration::from_millis(1),
            ..TierConfig::default()
        },
    });
    let replicas = spec.durability.has_replicas().then(|| {
        let mut policy = ReplicaPolicy::new(base.join("replicas"));
        policy.election_timeout = Duration::from_millis(2);
        policy.log.backoff = Duration::from_millis(1);
        policy
    });
    DurabilityPolicy {
        store: Some(store),
        tier,
        replicas,
    }
}

fn build_session(
    spec: &ScenarioSpec,
    vendor: Vendor,
    durability: DurabilityPolicy,
    schedule: FaultSchedule,
) -> crate::error::StoolResult<Session> {
    let mut b = Session::builder()
        .cluster(spec.cluster())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(spec.ckpt_every)
        .durability(durability)
        .fault_schedule(schedule);
    if spec.det {
        b = b.deterministic_reductions();
    }
    b.build()
}

/// The uninterrupted reference run under `vendor` (memoized per vendor —
/// a scenario needs at most two).
fn reference_for<'m>(
    spec: &ScenarioSpec,
    vendor: Vendor,
    program: &dyn MpiProgram,
    cache: &'m mut BTreeMap<&'static str, Vec<Memory>>,
) -> Result<&'m [Memory], String> {
    if !cache.contains_key(vendor.name()) {
        let mut b = Session::builder()
            .cluster(spec.cluster())
            .vendor(vendor)
            .checkpointer(Checkpointer::mana());
        if spec.det {
            b = b.deterministic_reductions();
        }
        let memories = b
            .build()
            .and_then(|s| s.launch(program))
            .and_then(|o| o.memories().map(<[Memory]>::to_vec))
            .map_err(|e| format!("reference run under {}: {e}", vendor.name()))?;
        cache.insert(vendor.name(), memories);
    }
    Ok(cache.get(vendor.name()).expect("just inserted"))
}

/// For kill-free rows: restore the final chain under the other vendor and
/// run the tail to completion; its memories must match that vendor's
/// reference bitwise.
fn verify_restart(
    spec: &ScenarioSpec,
    program: &dyn MpiProgram,
    durability: &DurabilityPolicy,
    references: &mut BTreeMap<&'static str, Vec<Memory>>,
    result: &mut ScenarioResult,
) {
    if spec.wipe_local {
        if let Err(msg) = wipe_local_chain(durability) {
            result.failures.push(msg);
            return;
        }
    }
    let vendor = spec.restart_vendor();
    let restart = FaultSchedule {
        tier_gets: spec.schedule.tier_gets.clone(),
        stragglers: spec.schedule.stragglers.clone(),
        ..FaultSchedule::default()
    };
    let outcome = build_session(spec, vendor, durability.clone(), restart)
        .and_then(|s| s.restore_from_store(program));
    match outcome {
        Err(e) => result
            .failures
            .push(format!("verification restart under {}: {e}", vendor.name())),
        Ok(outcome) => match outcome.memories() {
            Err(e) => result
                .failures
                .push(format!("verification restart under {}: {e}", vendor.name())),
            Ok(memories) => match reference_for(spec, vendor, program, references) {
                Err(e) => result.failures.push(e),
                Ok(reference) => {
                    if let Some(msg) = memories_differ(reference, memories) {
                        result
                            .failures
                            .push(format!("restart under {} diverged: {msg}", vendor.name()));
                    }
                }
            },
        },
    }
}

/// Invariant 1b: after a failed run the chain must be whole — strictly
/// ascending epochs, nothing quarantined, newest epoch loadable.
fn check_chain(durability: &DurabilityPolicy, failures: &mut Vec<String>) {
    let Some(policy) = &durability.store else {
        return;
    };
    match policy.open_store() {
        Err(e) => failures.push(format!("chain reopen after failure: {e}")),
        Ok(store) => {
            if !store.quarantined().is_empty() {
                failures.push(format!(
                    "partial epoch(s) quarantined after unwind: {:?}",
                    store.quarantined()
                ));
            }
            let epochs = store.epochs();
            if epochs.windows(2).any(|w| w[0] >= w[1]) {
                failures.push(format!("epoch chain not strictly ascending: {epochs:?}"));
            }
            if !epochs.is_empty() {
                if let Err(e) = store.load_latest() {
                    failures.push(format!("newest epoch unreadable after unwind: {e}"));
                }
            }
        }
    }
}

/// Ship everything still local to the tier, then delete the local chain:
/// the next restart must hydrate from the tier alone.
fn wipe_local_chain(durability: &DurabilityPolicy) -> Result<(), String> {
    let policy = durability
        .store
        .as_ref()
        .ok_or("wipe_local without a store policy")?;
    let store = policy
        .open_store()
        .map_err(|e| format!("wipe_local reopen: {e}"))?;
    store
        .tier_flush()
        .map_err(|e| format!("wipe_local tier flush: {e}"))?;
    drop(store);
    std::fs::remove_dir_all(&policy.dir)
        .map_err(|e| format!("wipe_local remove {}: {e}", policy.dir.display()))
}

fn chain_is_empty(durability: &DurabilityPolicy) -> bool {
    match &durability.store {
        None => true,
        Some(policy) => match policy.open_store() {
            Ok(store) => store.epochs().is_empty(),
            Err(_) => true,
        },
    }
}

fn final_epoch_count(durability: &DurabilityPolicy) -> u64 {
    match &durability.store {
        None => 0,
        Some(policy) => policy
            .open_store()
            .map(|s| s.epochs().len() as u64)
            .unwrap_or(0),
    }
}

/// Bitwise memory comparison across every typed view. Returns the first
/// difference as a message, `None` when identical.
fn memories_differ(expect: &[Memory], got: &[Memory]) -> Option<String> {
    if expect.len() != got.len() {
        return Some(format!(
            "{} ranks expected, {} produced",
            expect.len(),
            got.len()
        ));
    }
    for (rank, (a, b)) in expect.iter().zip(got).enumerate() {
        let mut names_a: Vec<&str> = a.names().collect();
        let mut names_b: Vec<&str> = b.names().collect();
        names_a.sort_unstable();
        names_b.sort_unstable();
        if names_a != names_b {
            return Some(format!(
                "rank {rank}: memory layout differs ({names_a:?} vs {names_b:?})"
            ));
        }
        for name in names_a {
            if let (Some(xa), Some(xb)) = (a.f64s(name), b.f64s(name)) {
                if xa.len() != xb.len() {
                    return Some(format!("rank {rank} segment {name}: length differs"));
                }
                for (i, (x, y)) in xa.iter().zip(xb).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        return Some(format!(
                            "rank {rank} segment {name}[{i}]: {x:?} vs {y:?} (bitwise)"
                        ));
                    }
                }
                continue;
            }
            if a.bytes(name) != b.bytes(name)
                || a.u64s(name) != b.u64s(name)
                || a.i64s(name) != b.i64s(name)
            {
                return Some(format!("rank {rank} segment {name}: contents differ"));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// JSON emission (consumed by benchgate --matrix)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a matrix run as the `BENCH_matrix.json` document `benchgate
/// --matrix` validates: the suite that ran, the total scenario count of
/// the spec file, and one structured row per executed scenario.
pub fn matrix_json(suite: &str, spec_scenarios: usize, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(suite)));
    out.push_str(&format!("  \"spec_scenarios\": {spec_scenarios},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let failures: Vec<String> = r
            .failures
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"app\": \"{}\", \"vendor\": \"{}\", \"pr\": {}, \
             \"passed\": {}, \"recovery_rounds\": {}, \"kills\": {}, \"epochs\": {}, \
             \"put_retries\": {}, \"stalls\": {}, \"elections\": {}, \"failures\": [{}]}}{}\n",
            json_escape(&r.name),
            json_escape(&r.app),
            r.vendor.name(),
            r.pr,
            r.passed(),
            r.recovery_rounds,
            r.kills,
            r.epochs,
            r.put_retries,
            r.stalls,
            r.elections,
            failures.join(", "),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::builder().nodes(3).ranks_per_node(2).build()
    }

    #[test]
    fn victims_resolve_and_blame() {
        let c = cluster();
        assert_eq!(Victims::World.resolve(&c), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(Victims::Nodes(vec![1]).resolve(&c), vec![2, 3]);
        assert_eq!(Victims::Ranks(vec![5, 1, 5]).resolve(&c), vec![1, 5]);
        assert_eq!(Victims::Ranks(vec![4]).blamed_node(&c), 2);
        assert_eq!(Victims::Nodes(vec![1, 2]).blamed_node(&c), 1);
    }

    #[test]
    fn resolved_kills_merge_and_sort() {
        let schedule = FaultSchedule::default()
            .kill_ranks(20, vec![1])
            .kill_nodes(10, vec![2])
            .kill_ranks(20, vec![3]);
        let legacy = Some(FaultPlan {
            at_step: 15,
            node: 0,
        });
        let kills = schedule.resolved_kills(&cluster(), legacy);
        assert_eq!(kills.len(), 3);
        assert_eq!(kills[0].at_step, 10);
        assert_eq!(kills[0].victims, vec![4, 5]);
        assert_eq!(kills[1].at_step, 15);
        assert_eq!(kills[1].victims, vec![0, 1]);
        assert_eq!(kills[1].node, 0);
        assert_eq!(kills[2].at_step, 20);
        assert_eq!(kills[2].victims, vec![1, 3]);
    }

    #[test]
    fn schedule_validation_catches_bounds_and_holds() {
        let c = cluster();
        assert!(FaultSchedule::default()
            .kill_ranks(5, vec![6])
            .validate(&c)
            .is_err());
        assert!(FaultSchedule::default()
            .kill_nodes(5, vec![3])
            .validate(&c)
            .is_err());
        assert!(FaultSchedule::default()
            .straggle(9, 0, 4, VirtualTime::from_micros(5))
            .validate(&c)
            .is_err());
        assert!(FaultSchedule::default()
            .straggle(1, 4, 4, VirtualTime::from_micros(5))
            .validate(&c)
            .is_err());
        assert!(FaultSchedule::default()
            .tier_put_faults([PutFault::Hold])
            .validate(&c)
            .is_err());
        assert!(FaultSchedule::default()
            .kill_world(3)
            .straggle(1, 0, 4, VirtualTime::from_micros(5))
            .validate(&c)
            .is_ok());
    }

    #[test]
    fn after_failure_consumes_spent_faults() {
        let schedule = FaultSchedule::default()
            .kill_ranks(10, vec![1])
            .kill_ranks(20, vec![2])
            .straggle(0, 5, 25, VirtualTime::from_micros(9))
            .tier_put_faults([PutFault::Torn])
            .tier_get_faults([GetFault::Torn])
            .kill_leader_at(BarrierPhase::PreSeal);
        let rest = schedule.after_failure(10);
        assert_eq!(rest.kills.len(), 1);
        assert_eq!(rest.kills[0].at_step, 20);
        assert_eq!(rest.stragglers.len(), 1);
        assert!(rest.tier_puts.is_empty());
        assert_eq!(rest.tier_gets.len(), 1);
        assert!(rest.replica.is_empty());
    }

    const SAMPLE: &str = r#"
# A comment.
[scenario.ring-storm-mpich]
app = "ring"
vendor = "mpich"
steps = 24
ckpt_every = 8
pr = true
fault = "kill-ranks @14 1,3"

[scenario.wave-leader-openmpi]
app = "wave"
vendor = "openmpi"
steps = 30        # trailing comment
payload = 240
ckpt_every = 10
durability = "tier+replica"
wipe_local = true
fault = "leader-kill pre-seal"
fault = "kill-nodes @15 1"
fault = "tier-put torn,fail"
fault = "tier-get torn"
fault = "straggle rank=2 from=4 until=8 delay_us=500"
"#;

    #[test]
    fn parses_the_sample_matrix() {
        let specs = parse_matrix(SAMPLE).unwrap();
        assert_eq!(specs.len(), 2);
        let ring = &specs[0];
        assert_eq!(ring.name, "ring-storm-mpich");
        assert_eq!(ring.vendor, Vendor::Mpich);
        assert!(ring.pr);
        assert_eq!(ring.schedule.kills.len(), 1);
        assert_eq!(ring.schedule.kills[0].victims, Victims::Ranks(vec![1, 3]));
        let wave = &specs[1];
        assert_eq!(wave.durability, DurabilityKind::TierReplica);
        assert!(wave.wipe_local);
        assert_eq!(wave.schedule.replica.len(), 1);
        assert_eq!(
            wave.schedule.tier_puts,
            vec![PutFault::Torn, PutFault::Fail]
        );
        assert_eq!(wave.schedule.tier_gets, vec![GetFault::Torn]);
        assert_eq!(wave.schedule.stragglers.len(), 1);
        assert_eq!(
            wave.schedule.stragglers[0].delay,
            VirtualTime::from_micros(500)
        );
        assert_eq!(wave.restart_vendor(), Vendor::Mpich);
    }

    #[test]
    fn parser_rejects_bad_matrices() {
        for (bad, why) in [
            ("steps = 4", "key before a section"),
            ("[scenario.X]\nsteps = 4", "uppercase name"),
            ("[scenario.a]\nsteps = \"4\"", "quoted int"),
            ("[scenario.a]\nbogus = 4", "unknown key"),
            ("[scenario.a]\nsteps = 8\nsteps = 9", "duplicate key"),
            (
                "[scenario.a]\nfault = \"kill-ranks 14 1\"",
                "missing @step",
            ),
            ("[scenario.a]\nfault = \"leader-kill seal\"", "bad phase"),
            (
                "[scenario.a]\nsteps = 24\nckpt_every = 8\n[scenario.a]\nsteps = 24\nckpt_every = 8",
                "duplicate section",
            ),
            (
                "[scenario.a]\nsteps = 24\nckpt_every = 8\nfault = \"kill-world @4\"",
                "kill before first checkpoint",
            ),
            (
                "[scenario.a]\nsteps = 24\nckpt_every = 8\nfault = \"tier-put torn\"",
                "tier fault without tier durability",
            ),
            ("", "empty matrix"),
        ] {
            assert!(parse_matrix(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn matrix_json_shape_round_trips_escapes() {
        let r = ScenarioResult {
            name: "a-b".into(),
            app: "ring".into(),
            vendor: Vendor::Mpich,
            pr: true,
            failures: vec!["a \"quoted\" reason".into()],
            recovery_rounds: 1,
            kills: 1,
            epochs: 2,
            put_retries: 0,
            stalls: 0,
            elections: 0,
        };
        let doc = matrix_json("pr", 24, &[r]);
        assert!(doc.contains("\"suite\": \"pr\""));
        assert!(doc.contains("\"spec_scenarios\": 24"));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("\"passed\": false"));
    }
}
