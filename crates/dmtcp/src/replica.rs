//! Replicated coordinator commit log: a quorum of coordinator replicas
//! accepting the records the coordinator already treats as commit points.
//!
//! After the remote tier (PR 4–5) the checkpoint chain survives disk loss
//! and rank fail-stop, but the coordinator/store-writer process itself is
//! still a single point of failure: a coordinator killed mid-rendezvous
//! poisons the world. This module removes that last SPOF the way the
//! paper's related work (FTHP-MPI) layers replication over a
//! fault-intolerant substrate:
//!
//! * a [`ReplicaGroup`] of 3+ replicas runs **single-decree Paxos per log
//!   slot** over [`ReplicaRecord`]s — epoch seals, membership changes and
//!   rendezvous aborts;
//! * each replica persists its acceptor state to an [`ObjectTier`]-backed
//!   log using the same checksummed-record discipline as the tier's epoch
//!   seal (magic + version + payload + FNV trailer, written with
//!   read-back verification): the seal format *is* the log-entry
//!   encoding, there is no second commit path;
//! * a [`LivenessTimer`] (election timeout + heartbeats over an
//!   injectable [`Clock`]) detects a dead leader; the next commit elects
//!   a successor, which **re-adopts** the highest in-flight accepted
//!   record (or finds none and proposes cleanly) before resuming — so a
//!   leader killed at any barrier phase poisons nothing;
//! * a scripted [`ReplicaFault`] harness kills the current leader at
//!   named [`BarrierPhase`]s, which is how the failover battery in
//!   `tests/replica_failover.rs` exercises every takeover window
//!   deterministically.
//!
//! The coordinator drives this through
//! [`crate::coordinator::Coordinator::attach_replicas`]: the `finish()`
//! leader commits the epoch record to a quorum *before* releasing the
//! final barrier, so an epoch the ranks observe as complete is always
//! recoverable from a majority of replica logs.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use simnet::telemetry::{EventKind, Telemetry};

use crate::codec::{CodecError, Reader, Writer};
use crate::tier::{get_retried, put_verified, ObjectTier, TierConfig, TierError};

/// Magic prefix of a replicated log record ("REPLOG", two bytes short).
const RECORD_MAGIC: u64 = 0x5245_504C_4F47_0001;
/// Log record format version.
const RECORD_V1: u64 = 1;

// ---------------------------------------------------------------------------
// Clocks and the liveness timer
// ---------------------------------------------------------------------------

/// A monotonic clock the liveness machinery reads and sleeps on.
///
/// Production code uses [`SystemClock`]; tests inject a [`TestClock`] so
/// election timeouts are deterministic (a "sleep" advances the test
/// clock instead of stalling the test).
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;
    /// Sleep for `d` (or, for a test clock, advance time by `d`).
    fn sleep(&self, d: Duration);
}

/// The real monotonic clock ([`Instant`]-based).
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        // lint:allow(no-sleep-poll) — the SystemClock impl IS the sanctioned OS sleep behind `Clock`.
        std::thread::sleep(d);
    }
}

/// A manually advanced clock for deterministic tests: `sleep` advances
/// time instead of blocking, so an election timeout "elapses" instantly
/// and reproducibly.
pub struct TestClock {
    now: Mutex<Duration>,
}

impl TestClock {
    /// A test clock starting at zero.
    pub fn new() -> TestClock {
        TestClock {
            now: Mutex::new(Duration::ZERO),
        }
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        *self.now.lock().expect("test clock lock") += d;
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        *self.now.lock().expect("test clock lock")
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Election timeout + heartbeat bookkeeping over an injectable clock.
///
/// The leader (or any successful leader-driven operation) calls
/// [`LivenessTimer::beat`]; a follower that finds the leader unresponsive
/// waits for [`LivenessTimer::expired`] before starting an election —
/// takeover happens *within* the election timeout, never before it.
pub struct LivenessTimer {
    clock: Arc<dyn Clock>,
    timeout: Duration,
    last_beat: Mutex<Duration>,
}

impl LivenessTimer {
    /// A timer that expires `timeout` after the most recent beat.
    pub fn new(clock: Arc<dyn Clock>, timeout: Duration) -> LivenessTimer {
        let now = clock.now();
        LivenessTimer {
            clock,
            timeout,
            last_beat: Mutex::new(now),
        }
    }

    /// Record a heartbeat (leader activity observed now).
    pub fn beat(&self) {
        *self.last_beat.lock().expect("timer lock") = self.clock.now();
    }

    /// Whether the election timeout has elapsed since the last beat.
    pub fn expired(&self) -> bool {
        let last = *self.last_beat.lock().expect("timer lock");
        self.clock.now().saturating_sub(last) >= self.timeout
    }

    /// Time left until expiry (zero if already expired).
    pub fn remaining(&self) -> Duration {
        let last = *self.last_beat.lock().expect("timer lock");
        (last + self.timeout).saturating_sub(self.clock.now())
    }

    /// Sleep (on the injected clock) until the timer expires.
    pub fn wait_expiry(&self) {
        while !self.expired() {
            let d = self.remaining().max(Duration::from_micros(100));
            self.clock.sleep(d);
        }
    }

    /// The configured election timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }
}

// ---------------------------------------------------------------------------
// Records and errors
// ---------------------------------------------------------------------------

/// One entry of the replicated coordinator log — exactly the events the
/// coordinator already treats as commit points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaRecord {
    /// A checkpoint epoch sealed at the rendezvous: the coordinator's
    /// `finish()` leader commits this to a quorum before releasing the
    /// final barrier.
    EpochSeal {
        /// The completed epoch number.
        epoch: u64,
        /// The agreed cut step (every rank's resume position).
        cut: u64,
        /// Whether the round agreed to stop the world afterwards.
        stop: bool,
        /// The vendor the epoch's world image is stamped with.
        vendor: String,
    },
    /// A membership change: a rank declared fail-stop (resigned while a
    /// round was in flight).
    Membership {
        /// The rank that left the world.
        rank: u64,
        /// `false` for fail-stop (the only transition logged today).
        alive: bool,
    },
    /// A rendezvous outcome that did not commit: the round was aborted
    /// and the staged epoch discarded atomically.
    Abort {
        /// The epoch whose round aborted.
        epoch: u64,
        /// Why (human-readable; not consulted by recovery).
        reason: String,
    },
}

impl ReplicaRecord {
    /// Encode with the same checksummed-seal discipline as the tier's
    /// epoch seal: magic, version, payload, FNV trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(RECORD_MAGIC);
        w.u64(RECORD_V1);
        match self {
            ReplicaRecord::EpochSeal {
                epoch,
                cut,
                stop,
                vendor,
            } => {
                w.u8(0);
                w.u64(*epoch);
                w.u64(*cut);
                w.u8(u8::from(*stop));
                w.string(vendor);
            }
            ReplicaRecord::Membership { rank, alive } => {
                w.u8(1);
                w.u64(*rank);
                w.u8(u8::from(*alive));
            }
            ReplicaRecord::Abort { epoch, reason } => {
                w.u8(2);
                w.u64(*epoch);
                w.string(reason);
            }
        }
        w.finish()
    }

    /// Decode a record; a corrupt buffer (bad trailer, magic, version or
    /// tag) is rejected, never silently accepted.
    pub fn decode(buf: &[u8]) -> Result<ReplicaRecord, CodecError> {
        let mut r = Reader::checked(buf)?;
        r.expect_magic(RECORD_MAGIC)?;
        let version = r.u64()?;
        if version != RECORD_V1 {
            return Err(CodecError::BadMagic {
                expected: RECORD_V1,
                found: version,
            });
        }
        match r.u8()? {
            0 => Ok(ReplicaRecord::EpochSeal {
                epoch: r.u64()?,
                cut: r.u64()?,
                stop: r.u8()? != 0,
                vendor: r.string()?,
            }),
            1 => Ok(ReplicaRecord::Membership {
                rank: r.u64()?,
                alive: r.u8()? != 0,
            }),
            2 => Ok(ReplicaRecord::Abort {
                epoch: r.u64()?,
                reason: r.string()?,
            }),
            tag => Err(CodecError::BadMagic {
                expected: 2,
                found: tag as u64,
            }),
        }
    }
}

/// Why a replicated-log operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// A quorum of replicas could not be reached: the record is not
    /// durable and the round must abort atomically.
    NoQuorum {
        /// Acceptances needed (majority of the group).
        need: usize,
        /// Acceptances obtained.
        have: usize,
    },
    /// The group was built with fewer than three replicas (or more log
    /// tiers than replicas).
    Config(String),
    /// A replica's durable log failed underneath the protocol.
    Log(TierError),
    /// A persisted log object failed to decode.
    Corrupt {
        /// The offending log key.
        key: String,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::NoQuorum { need, have } => {
                write!(f, "replica quorum unreachable: need {need}, have {have}")
            }
            ReplicaError::Config(m) => write!(f, "replica group misconfigured: {m}"),
            ReplicaError::Log(e) => write!(f, "replica log failed: {e}"),
            ReplicaError::Corrupt { key, detail } => {
                write!(f, "replica log object {key} corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<TierError> for ReplicaError {
    fn from(e: TierError) -> ReplicaError {
        ReplicaError::Log(e)
    }
}

// ---------------------------------------------------------------------------
// Fault scripting
// ---------------------------------------------------------------------------

/// The barrier phases at which the failover battery can kill the leader.
/// Announced by the coordinator's `finish()` leader via
/// [`ReplicaGroup::notify_phase`] in this order per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierPhase {
    /// The finish() leader arrived at the final barrier (round closed,
    /// no replica work done yet).
    Arrive,
    /// The epoch record is built, about to ship to the replicas.
    PreSeal,
    /// The record is quorum-accepted (the epoch is durable).
    PostSeal,
    /// The final barrier is about to release the waiting ranks.
    Release,
}

/// Stable numeric code of a barrier phase, as recorded in telemetry
/// events (0=Arrive, 1=PreSeal, 2=PostSeal, 3=Release).
pub fn phase_code(phase: BarrierPhase) -> u64 {
    match phase {
        BarrierPhase::Arrive => 0,
        BarrierPhase::PreSeal => 1,
        BarrierPhase::PostSeal => 2,
        BarrierPhase::Release => 3,
    }
}

/// One scripted fault for the failover battery, consumed in script order
/// when its phase is announced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFault {
    /// Fail-stop the current leader replica when the given phase is
    /// announced (a no-op if no live leader exists at that moment).
    KillLeaderAt(BarrierPhase),
}

// ---------------------------------------------------------------------------
// Acceptors
// ---------------------------------------------------------------------------

/// Log key of one replica's promise marker.
fn promised_key() -> &'static str {
    "promised"
}

/// Log key of one replica's accepted record for `slot`.
fn slot_key(slot: u64) -> String {
    format!("slot_{slot:06}/accepted")
}

/// Per-slot accepted `(ballot, record)` pairs of one acceptor.
type AcceptedSlots = BTreeMap<u64, (u64, ReplicaRecord)>;

/// One replica's single-decree acceptor state for every slot.
struct AcceptorState {
    /// Highest ballot promised (never accept below it).
    promised: u64,
    /// Per-slot accepted `(ballot, record)`.
    accepted: AcceptedSlots,
}

/// A coordinator replica: the acceptor role plus its durable log.
struct Acceptor {
    id: usize,
    alive: AtomicBool,
    log: Arc<dyn ObjectTier>,
    state: Mutex<AcceptorState>,
}

/// Encode an accepted `(ballot, record)` pair for the durable log; the
/// record's own trailer rides inside as a byte field, so a torn slot
/// object is detected at either layer.
fn encode_accepted(ballot: u64, record: &ReplicaRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(RECORD_MAGIC);
    w.u64(ballot);
    w.bytes(&record.encode());
    w.finish()
}

fn decode_accepted(key: &str, buf: &[u8]) -> Result<(u64, ReplicaRecord), ReplicaError> {
    let corrupt = |detail: String| ReplicaError::Corrupt {
        key: key.to_string(),
        detail,
    };
    let mut r = Reader::checked(buf).map_err(|e| corrupt(format!("outer trailer: {e}")))?;
    r.expect_magic(RECORD_MAGIC)
        .map_err(|e| corrupt(format!("magic: {e}")))?;
    let ballot = r.u64().map_err(|e| corrupt(format!("ballot: {e}")))?;
    let payload = r.bytes().map_err(|e| corrupt(format!("payload: {e}")))?;
    let record = ReplicaRecord::decode(payload).map_err(|e| corrupt(format!("record: {e}")))?;
    Ok((ballot, record))
}

impl Acceptor {
    /// Open an acceptor over its durable log, replaying any persisted
    /// promise and accepted slots (the restart path: a replica rejoins
    /// with exactly the state it had durably acknowledged).
    fn open(
        id: usize,
        log: Arc<dyn ObjectTier>,
        config: TierConfig,
    ) -> Result<Acceptor, ReplicaError> {
        let mut state = AcceptorState {
            promised: 0,
            accepted: BTreeMap::new(),
        };
        match get_retried(&*log, config, promised_key()) {
            Ok(buf) => {
                let mut r = Reader::checked(&buf).map_err(|e| ReplicaError::Corrupt {
                    key: promised_key().to_string(),
                    detail: format!("promise trailer: {e}"),
                })?;
                state.promised = r.u64().map_err(|e| ReplicaError::Corrupt {
                    key: promised_key().to_string(),
                    detail: format!("promise ballot: {e}"),
                })?;
            }
            Err(TierError::NotFound { .. }) => {}
            Err(e) => return Err(ReplicaError::Log(e)),
        }
        for key in log.list("slot_")? {
            let Some(digits) = key
                .strip_prefix("slot_")
                .and_then(|r| r.strip_suffix("/accepted"))
            else {
                continue;
            };
            let Ok(slot) = digits.parse::<u64>() else {
                continue;
            };
            let buf = get_retried(&*log, config, &key)?;
            let (ballot, record) = decode_accepted(&key, &buf)?;
            state.accepted.insert(slot, (ballot, record));
        }
        Ok(Acceptor {
            id,
            alive: AtomicBool::new(true),
            log,
            state: Mutex::new(state),
        })
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Phase 1: promise `ballot` if it is the highest seen, returning the
    /// acceptor's accepted slots so the proposer can re-adopt in-flight
    /// records. `None` = rejected (a higher promise exists).
    fn prepare(
        &self,
        ballot: u64,
        config: TierConfig,
        retries: &mut u64,
    ) -> Result<Option<AcceptedSlots>, ReplicaError> {
        if !self.is_alive() {
            return Ok(None);
        }
        let mut st = self.state.lock().expect("acceptor lock");
        if ballot <= st.promised {
            return Ok(None);
        }
        let mut w = Writer::new();
        w.u64(ballot);
        // lint:allow(guard-across-barrier) — `w.finish()` seals the local byte Writer, not the rank barrier.
        put_verified(&*self.log, config, promised_key(), &w.finish(), retries)?;
        st.promised = ballot;
        Ok(Some(st.accepted.clone()))
    }

    /// Phase 2: accept `(ballot, record)` at `slot` unless a higher
    /// promise exists. The acceptance is durable (written to the log with
    /// read-back verification) *before* it is acknowledged.
    fn accept(
        &self,
        ballot: u64,
        slot: u64,
        record: &ReplicaRecord,
        config: TierConfig,
        retries: &mut u64,
    ) -> Result<bool, ReplicaError> {
        if !self.is_alive() {
            return Ok(false);
        }
        let mut st = self.state.lock().expect("acceptor lock");
        if ballot < st.promised {
            return Ok(false);
        }
        put_verified(
            &*self.log,
            config,
            &slot_key(slot),
            &encode_accepted(ballot, record),
            retries,
        )?;
        st.promised = ballot;
        st.accepted.insert(slot, (ballot, record.clone()));
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// The replica group
// ---------------------------------------------------------------------------

/// Tunables of a [`ReplicaGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Number of replicas (≥ 3; quorum is a majority).
    pub replicas: usize,
    /// How long a dead leader goes undetected before takeover.
    pub election_timeout: Duration,
    /// Retry/backoff/deadline policy for the replicas' durable log I/O
    /// (the same knobs as the tier shipper).
    pub log: TierConfig,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            replicas: 3,
            election_timeout: Duration::from_millis(50),
            log: TierConfig::default(),
        }
    }
}

/// What the group has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Records committed to a quorum.
    pub commits: u64,
    /// Elections run (including the initial one).
    pub elections: u64,
    /// Elections that replaced a dead incumbent (the failover count).
    pub recoveries: u64,
    /// In-flight records a new leader re-adopted and re-drove to quorum.
    pub re_adopted: u64,
    /// Log-write retry attempts beyond the first, across replicas.
    pub log_retries: u64,
}

struct GroupState {
    /// The current leader replica, if one has been elected and is not
    /// known dead.
    leader: Option<usize>,
    /// The leader's ballot (0 = no ballot issued yet).
    ballot: u64,
    /// Highest ballot observed anywhere (elections must exceed it).
    max_ballot: u64,
    /// Next unassigned log slot.
    next_slot: u64,
    /// Scripted faults, consumed front-first as phases are announced.
    faults: VecDeque<ReplicaFault>,
    stats: ReplicaStats,
}

/// A group of coordinator replicas running single-decree Paxos per log
/// slot, with timeout-driven leader failover.
///
/// The handle is the *proposer side*: the coordinator's `finish()` leader
/// calls [`ReplicaGroup::commit`] with the epoch record and the call
/// returns only once a majority of replicas has durably accepted it (or
/// errs with [`ReplicaError::NoQuorum`], in which case the round aborts
/// atomically). Replica fail-stop is modelled with [`ReplicaGroup::kill`];
/// a killed leader is detected via the [`LivenessTimer`] and replaced on
/// the next commit, re-adopting whatever record was in flight.
pub struct ReplicaGroup {
    config: ReplicaConfig,
    clock: Arc<dyn Clock>,
    timer: LivenessTimer,
    acceptors: Vec<Acceptor>,
    state: Mutex<GroupState>,
    /// Attached flight recorder (absent on bare groups).
    telemetry: OnceLock<Arc<Telemetry>>,
    /// Virtual-clock stamp of the round being committed, set by the
    /// coordinator before it drives the group (the group itself runs on
    /// a wall [`Clock`] and has no virtual time of its own).
    vnow_ns: AtomicU64,
}

impl ReplicaGroup {
    /// Build a group over explicit per-replica durable logs (one
    /// [`ObjectTier`] each — `FsTier` directories in production,
    /// `MemTier`/`FlakyTier` in tests). Replays any state the logs
    /// already hold, so re-opening the same logs resumes the group.
    pub fn new(
        config: ReplicaConfig,
        clock: Arc<dyn Clock>,
        logs: Vec<Arc<dyn ObjectTier>>,
    ) -> Result<ReplicaGroup, ReplicaError> {
        if config.replicas < 3 {
            return Err(ReplicaError::Config(format!(
                "need at least 3 replicas, got {}",
                config.replicas
            )));
        }
        if logs.len() != config.replicas {
            return Err(ReplicaError::Config(format!(
                "{} replicas but {} logs",
                config.replicas,
                logs.len()
            )));
        }
        let mut acceptors = Vec::with_capacity(logs.len());
        let mut max_ballot = 0;
        let mut next_slot = 0;
        for (id, log) in logs.into_iter().enumerate() {
            let acceptor = Acceptor::open(id, log, config.log)?;
            {
                let st = acceptor.state.lock().expect("acceptor lock");
                max_ballot = max_ballot.max(st.promised);
                if let Some((&slot, _)) = st.accepted.last_key_value() {
                    next_slot = next_slot.max(slot + 1);
                }
            }
            acceptors.push(acceptor);
        }
        let timer = LivenessTimer::new(clock.clone(), config.election_timeout);
        Ok(ReplicaGroup {
            config,
            clock,
            timer,
            acceptors,
            state: Mutex::new(GroupState {
                leader: None,
                ballot: 0,
                max_ballot,
                next_slot,
                faults: VecDeque::new(),
                stats: ReplicaStats::default(),
            }),
            telemetry: OnceLock::new(),
            vnow_ns: AtomicU64::new(0),
        })
    }

    /// Attach a flight recorder (first attachment wins). Elections,
    /// per-slot accepts, and quorum losses flow onto its replica lane.
    pub fn attach_telemetry(&self, tel: Arc<Telemetry>) {
        let _ = self.telemetry.set(tel);
    }

    /// Stamp the virtual-clock time of the round about to be driven
    /// (called by the coordinator, which does carry a virtual clock).
    pub fn stamp_vnow(&self, vclock_ns: u64) {
        self.vnow_ns.fetch_max(vclock_ns, Ordering::SeqCst);
        if let Some(tel) = self.telemetry.get() {
            tel.observe_time(vclock_ns);
        }
    }

    /// Emit one event on the replica lane, stamped with the round's
    /// virtual clock.
    fn emit(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if let Some(tel) = self.telemetry.get() {
            let vnow = self.vnow_ns.load(Ordering::SeqCst).max(tel.observed_now());
            tel.emit(tel.replica_lane(), kind, vnow, a, b, c);
        }
    }

    /// A group over fresh in-memory logs (tests and benches).
    pub fn in_memory(config: ReplicaConfig, clock: Arc<dyn Clock>) -> ReplicaGroup {
        let logs = (0..config.replicas)
            .map(|_| Arc::new(crate::tier::MemTier::new()) as Arc<dyn ObjectTier>)
            .collect();
        ReplicaGroup::new(config, clock, logs).expect("in-memory replica group")
    }

    /// Majority size of the group.
    pub fn quorum(&self) -> usize {
        self.config.replicas / 2 + 1
    }

    /// The current leader replica, if any.
    pub fn leader(&self) -> Option<usize> {
        self.state.lock().expect("group lock").leader
    }

    /// Live replica count.
    pub fn live(&self) -> usize {
        self.acceptors.iter().filter(|a| a.is_alive()).count()
    }

    /// Fail-stop replica `id` (idempotent). A killed leader stays leader
    /// on paper until the liveness timeout expires and the next commit
    /// elects a successor.
    pub fn kill(&self, id: usize) {
        if let Some(a) = self.acceptors.get(id) {
            a.alive.store(false, Ordering::SeqCst);
        }
    }

    /// Revive replica `id` (a replaced node rejoining). Its acceptor
    /// state was never lost — the durable log is the state.
    pub fn revive(&self, id: usize) {
        if let Some(a) = self.acceptors.get(id) {
            a.alive.store(true, Ordering::SeqCst);
        }
    }

    /// Append scripted faults for the failover battery.
    pub fn script_faults(&self, faults: impl IntoIterator<Item = ReplicaFault>) {
        self.state.lock().expect("group lock").faults.extend(faults);
    }

    /// Install the initial leader now instead of lazily at the first
    /// commit. Idempotent. Sessions running a phase-scripted failover
    /// battery prime the group on attach so a `KillLeaderAt` fault has an
    /// incumbent to strike from the very first epoch barrier (otherwise
    /// the first round's kill waits for a leader that is only elected
    /// *inside* that round's commit).
    pub fn prime(&self) -> Result<(), ReplicaError> {
        self.ensure_leader()
    }

    /// Announce a barrier phase (called by the coordinator's `finish()`
    /// leader). If the front of the fault script names this phase *and* a
    /// live leader exists, that leader is fail-stopped here; with no live
    /// leader the fault stays scripted (it waits for a later round that
    /// has one — a priming round must not consume it as a no-op).
    pub fn notify_phase(&self, phase: BarrierPhase) {
        let victim = {
            let mut st = self.state.lock().expect("group lock");
            match st.faults.front() {
                Some(ReplicaFault::KillLeaderAt(p)) if *p == phase => {
                    let victim = st.leader.filter(|&id| self.acceptors[id].is_alive());
                    if victim.is_some() {
                        st.faults.pop_front();
                    }
                    victim
                }
                _ => None,
            }
        };
        if let Some(id) = victim {
            self.emit(EventKind::FaultKill, id as u64, phase_code(phase), 0);
            self.kill(id);
        }
    }

    /// The group's liveness timer (election timeout + heartbeats).
    pub fn timer(&self) -> &LivenessTimer {
        &self.timer
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReplicaStats {
        self.state.lock().expect("group lock").stats
    }

    /// Commit one record to a quorum, transparently failing over if the
    /// leader is dead: the caller never sees a takeover, only the commit
    /// completing under whichever leader survived. Returns the log slot.
    ///
    /// Errs with [`ReplicaError::NoQuorum`] only when a majority of
    /// replicas is unreachable — the caller must then abort its round
    /// atomically (nothing was committed anywhere).
    pub fn commit(&self, record: ReplicaRecord) -> Result<u64, ReplicaError> {
        // Bounded retries: each iteration either commits or replaces the
        // leader; with every replica failing at most once, 2N + 2 rounds
        // cover any schedule the fault scripts can produce.
        for _ in 0..2 * self.config.replicas + 2 {
            self.ensure_leader()?;
            let (ballot, slot) = {
                let st = self.state.lock().expect("group lock");
                (st.ballot, st.next_slot)
            };
            if self.drive_accept(ballot, slot, &record)? {
                let mut st = self.state.lock().expect("group lock");
                st.next_slot = slot + 1;
                st.stats.commits += 1;
                drop(st);
                self.timer.beat();
                return Ok(slot);
            }
            // The leader lost its ballot (superseded) or died under us:
            // demote and retry through an election.
            let mut st = self.state.lock().expect("group lock");
            if st.ballot == ballot {
                st.leader = None;
            }
        }
        self.emit(EventKind::QuorumLost, self.quorum() as u64, 0, 0);
        if let Some(tel) = self.telemetry.get() {
            tel.note_incident();
        }
        Err(ReplicaError::NoQuorum {
            need: self.quorum(),
            have: 0,
        })
    }

    /// Replay the quorum-committed log from the replicas' durable logs:
    /// for each slot, the highest-ballot record a majority of logs agree
    /// on. This is the restart path — it reads *only* the logs (through
    /// the retrying, fault-injectable get path), not in-memory state.
    pub fn committed(&self) -> Result<Vec<(u64, ReplicaRecord)>, ReplicaError> {
        let mut by_slot: BTreeMap<u64, Vec<(u64, ReplicaRecord)>> = BTreeMap::new();
        for acceptor in &self.acceptors {
            // A killed replica's *process* is gone but its durable log
            // survives (that is the restart story); replay reads every
            // log that still exists.
            for key in acceptor.log.list("slot_")? {
                let Some(digits) = key
                    .strip_prefix("slot_")
                    .and_then(|r| r.strip_suffix("/accepted"))
                else {
                    continue;
                };
                let Ok(slot) = digits.parse::<u64>() else {
                    continue;
                };
                let buf = get_retried(&*acceptor.log, self.config.log, &key)?;
                let entry = decode_accepted(&key, &buf)?;
                by_slot.entry(slot).or_default().push(entry);
            }
        }
        let quorum = self.quorum();
        let mut out = Vec::new();
        for (slot, entries) in by_slot {
            // Count agreement on the highest ballot present; a slot that
            // never reached a majority is in flight, not committed.
            let Some(&(top, _)) = entries.iter().max_by_key(|(b, _)| *b) else {
                continue;
            };
            let agree: Vec<_> = entries.iter().filter(|(b, _)| *b == top).collect();
            if agree.len() >= quorum {
                out.push((slot, agree[0].1.clone()));
            }
        }
        Ok(out)
    }

    /// Make sure a live leader with a valid ballot exists, electing one
    /// if needed. Detection of a dead incumbent waits out the election
    /// timeout first (that is what "within the election timeout" means).
    fn ensure_leader(&self) -> Result<(), ReplicaError> {
        let incumbent = {
            let st = self.state.lock().expect("group lock");
            st.leader
        };
        match incumbent {
            Some(id) if self.acceptors[id].is_alive() => {
                self.timer.beat();
                Ok(())
            }
            Some(_) => {
                // The leader is dead but nobody knows yet: followers
                // notice only when the heartbeat goes silent for the
                // full election timeout.
                self.timer.wait_expiry();
                self.elect(true)
            }
            None => self.elect(false),
        }
    }

    /// Run phase 1 with a fresh ballot from the lowest-id live replica,
    /// re-adopting the highest in-flight accepted record if one exists.
    fn elect(&self, recovery: bool) -> Result<(), ReplicaError> {
        let candidate = self
            .acceptors
            .iter()
            .find(|a| a.is_alive())
            .map(|a| a.id)
            .ok_or(ReplicaError::NoQuorum {
                need: self.quorum(),
                have: 0,
            })?;
        let n = self.config.replicas as u64;
        let ballot = {
            let st = self.state.lock().expect("group lock");
            (st.max_ballot / n + 1) * n + candidate as u64
        };
        let mut retries = 0u64;
        let mut promises = Vec::new();
        for acceptor in &self.acceptors {
            let accepted = acceptor.prepare(ballot, self.config.log, &mut retries)?;
            self.emit(
                EventKind::Prepare,
                ballot,
                acceptor.id as u64,
                accepted.is_some() as u64,
            );
            if let Some(accepted) = accepted {
                promises.push(accepted);
            }
        }
        {
            let mut st = self.state.lock().expect("group lock");
            st.max_ballot = st.max_ballot.max(ballot);
            st.stats.log_retries += retries;
        }
        if promises.len() < self.quorum() {
            self.emit(
                EventKind::QuorumLost,
                self.quorum() as u64,
                promises.len() as u64,
                0,
            );
            if let Some(tel) = self.telemetry.get() {
                tel.note_incident();
            }
            return Err(ReplicaError::NoQuorum {
                need: self.quorum(),
                have: promises.len(),
            });
        }
        // The new leader's view of the log: everything below the highest
        // accepted slot is already quorum-committed (slots advance only
        // after commit); the highest slot itself may be in flight and
        // must be re-adopted so the old leader's proposal survives it.
        let mut in_flight: Option<(u64, u64, ReplicaRecord)> = None;
        for accepted in &promises {
            if let Some((&slot, (b, record))) = accepted.last_key_value() {
                let better = match &in_flight {
                    None => true,
                    Some((s, ib, _)) => slot > *s || (slot == *s && *b > *ib),
                };
                if better {
                    in_flight = Some((slot, *b, record.clone()));
                }
            }
        }
        {
            let mut st = self.state.lock().expect("group lock");
            st.leader = Some(candidate);
            st.ballot = ballot;
            st.stats.elections += 1;
            if recovery {
                st.stats.recoveries += 1;
            }
        }
        self.timer.beat();
        if let Some((slot, _, record)) = in_flight {
            let next = {
                let st = self.state.lock().expect("group lock");
                st.next_slot
            };
            if slot >= next {
                // Replay: re-drive the in-flight record to quorum under
                // the new ballot before accepting new proposals.
                if self.drive_accept(ballot, slot, &record)? {
                    let mut st = self.state.lock().expect("group lock");
                    st.next_slot = slot + 1;
                    st.stats.re_adopted += 1;
                } else {
                    let mut st = self.state.lock().expect("group lock");
                    st.leader = None;
                }
            }
        }
        self.emit(
            EventKind::BallotWon,
            ballot,
            candidate as u64,
            promises.len() as u64,
        );
        self.emit(
            EventKind::LeaderElected,
            candidate as u64,
            ballot,
            recovery as u64,
        );
        if recovery {
            // A takeover is the incident the flight recorder exists for:
            // make sure the session dumps this round's timeline.
            if let Some(tel) = self.telemetry.get() {
                tel.note_incident();
            }
        }
        Ok(())
    }

    /// Phase 2 for one slot: true once a quorum durably accepted, false
    /// if the ballot was superseded or too few replicas are live.
    fn drive_accept(
        &self,
        ballot: u64,
        slot: u64,
        record: &ReplicaRecord,
    ) -> Result<bool, ReplicaError> {
        let mut acks = 0;
        let mut retries = 0u64;
        for acceptor in &self.acceptors {
            if acceptor.accept(ballot, slot, record, self.config.log, &mut retries)? {
                self.emit(EventKind::Accept, ballot, slot, acceptor.id as u64);
                acks += 1;
            }
        }
        {
            let mut st = self.state.lock().expect("group lock");
            st.stats.log_retries += retries;
        }
        if acks >= self.quorum() {
            self.emit(EventKind::SlotCommit, slot, ballot, 0);
            return Ok(true);
        }
        if self.live() < self.quorum() {
            self.emit(EventKind::QuorumLost, self.quorum() as u64, acks as u64, 0);
            if let Some(tel) = self.telemetry.get() {
                tel.note_incident();
            }
            return Err(ReplicaError::NoQuorum {
                need: self.quorum(),
                have: acks,
            });
        }
        Ok(false)
    }

    /// The clock the group (and its timer) runs on.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::MemTier;

    fn group3() -> ReplicaGroup {
        ReplicaGroup::in_memory(ReplicaConfig::default(), Arc::new(TestClock::new()))
    }

    fn seal(epoch: u64) -> ReplicaRecord {
        ReplicaRecord::EpochSeal {
            epoch,
            cut: epoch * 10,
            stop: false,
            vendor: "MPICH".to_string(),
        }
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        for record in [
            seal(7),
            ReplicaRecord::Membership {
                rank: 3,
                alive: false,
            },
            ReplicaRecord::Abort {
                epoch: 2,
                reason: "quorum lost".to_string(),
            },
        ] {
            let buf = record.encode();
            assert_eq!(ReplicaRecord::decode(&buf).unwrap(), record);
        }
    }

    #[test]
    fn corrupt_record_rejected() {
        let mut buf = seal(1).encode();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(ReplicaRecord::decode(&buf).is_err());
    }

    #[test]
    fn commits_reach_quorum_and_replay() {
        let g = group3();
        for e in 1..=3 {
            let slot = g.commit(seal(e)).unwrap();
            assert_eq!(slot, e - 1);
        }
        let committed = g.committed().unwrap();
        assert_eq!(committed.len(), 3);
        for (i, (slot, record)) in committed.iter().enumerate() {
            assert_eq!(*slot, i as u64);
            assert_eq!(*record, seal(i as u64 + 1));
        }
        assert_eq!(g.stats().commits, 3);
        assert_eq!(g.stats().elections, 1);
        assert_eq!(g.stats().recoveries, 0);
    }

    #[test]
    fn dead_leader_replaced_within_timeout() {
        let clock = Arc::new(TestClock::new());
        let g = ReplicaGroup::in_memory(ReplicaConfig::default(), clock.clone());
        g.commit(seal(1)).unwrap();
        let leader = g.leader().unwrap();
        let before = clock.now();
        g.kill(leader);
        g.commit(seal(2)).unwrap();
        let waited = clock.now() - before;
        assert!(
            waited >= Duration::from_millis(1),
            "takeover waited the timeout"
        );
        assert_ne!(g.leader().unwrap(), leader);
        assert_eq!(g.stats().recoveries, 1);
        assert_eq!(g.committed().unwrap().len(), 2);
    }

    #[test]
    fn minority_kills_never_lose_commits() {
        let clock = Arc::new(TestClock::new());
        let config = ReplicaConfig {
            replicas: 5,
            ..ReplicaConfig::default()
        };
        let g = ReplicaGroup::in_memory(config, clock);
        g.commit(seal(1)).unwrap();
        g.kill(g.leader().unwrap());
        g.commit(seal(2)).unwrap();
        g.kill(g.leader().unwrap());
        g.commit(seal(3)).unwrap();
        let committed = g.committed().unwrap();
        assert_eq!(committed.len(), 3);
        assert_eq!(g.stats().recoveries, 2);
    }

    #[test]
    fn majority_loss_is_no_quorum() {
        let g = group3();
        g.commit(seal(1)).unwrap();
        g.kill(0);
        g.kill(1);
        match g.commit(seal(2)) {
            Err(ReplicaError::NoQuorum { need, .. }) => assert_eq!(need, 2),
            other => panic!("expected NoQuorum, got {other:?}"),
        }
        // The committed prefix survives untouched.
        assert_eq!(g.committed().unwrap().len(), 1);
    }

    #[test]
    fn reopened_logs_resume_the_group() {
        let logs: Vec<Arc<dyn ObjectTier>> = (0..3)
            .map(|_| Arc::new(MemTier::new()) as Arc<dyn ObjectTier>)
            .collect();
        let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
        {
            let g =
                ReplicaGroup::new(ReplicaConfig::default(), clock.clone(), logs.clone()).unwrap();
            g.commit(seal(1)).unwrap();
            g.commit(seal(2)).unwrap();
        }
        let g = ReplicaGroup::new(ReplicaConfig::default(), clock, logs).unwrap();
        let committed = g.committed().unwrap();
        assert_eq!(committed.len(), 2);
        // New proposals land after the replayed log, not over it.
        let slot = g.commit(seal(3)).unwrap();
        assert_eq!(slot, 2);
    }

    #[test]
    fn scripted_fault_kills_leader_at_phase() {
        let g = group3();
        g.commit(seal(1)).unwrap();
        let leader = g.leader().unwrap();
        g.script_faults([ReplicaFault::KillLeaderAt(BarrierPhase::PreSeal)]);
        g.notify_phase(BarrierPhase::Arrive); // does not match: no kill
        assert!(g.acceptors[leader].is_alive());
        g.notify_phase(BarrierPhase::PreSeal);
        assert!(!g.acceptors[leader].is_alive());
        // The next commit recovers transparently.
        g.commit(seal(2)).unwrap();
        assert_eq!(g.stats().recoveries, 1);
        assert_eq!(g.committed().unwrap().len(), 2);
    }
}
