//! Flight-recorder telemetry: lock-free per-lane event rings, a
//! process-wide metrics registry, and merged crash-dump timelines.
//!
//! Every layer of the stack (fabric/matching, coordinator, store, tier,
//! replica group) emits fixed-size structured [`Event`]s into bounded
//! ring buffers — one *lane* per rank plus one per subsystem — stamped
//! with both wall time and the simnet virtual clock. The hot path is
//! **zero-alloc and lock-free**: an emit is one `fetch_add` ticket plus
//! seven atomic stores into a seqlock-style slot, so a rank that panics
//! mid-emit can never leave a lock poisoned, and the dump path (which
//! only *reads* atomics) can always produce a post-mortem.
//!
//! * **Rings are flight recorders.** When a lane wraps, the oldest
//!   events are overwritten; per-kind emitted counters survive the wrap,
//!   so registry metrics stay exact even when the ring holds only the
//!   recent tail.
//! * **Torn slots are skipped, never trusted.** A slot's sequence word
//!   is `2·ticket+1` while a writer is mid-flight and `2·ticket+2` once
//!   published; readers double-check it around the field reads and drop
//!   anything in between — a writer killed between the two stores costs
//!   one event, not a deadlock or a garbage record.
//! * **Timelines merge on the virtual clock.** [`Telemetry::events`]
//!   collects every lane and sorts by `(virtual time, wall time, lane,
//!   ticket)`; [`Telemetry::dump`] writes the merged timeline as JSON
//!   lines and as a Chrome `trace_event` file (open in
//!   `chrome://tracing` or Perfetto) under a one-shot atomic claim.
//!
//! Emitters that do not carry a rank's virtual clock (the store writer,
//! the tier shipper, the replica group) stamp events with
//! [`Telemetry::observed_now`], the high-water mark of every virtual
//! timestamp the recorder has seen — background work sorts after the
//! rank activity that caused it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of system lanes appended after the rank lanes:
/// coordinator, store, tier, replica.
pub const SYSTEM_LANES: usize = 4;

/// Default ring capacity of one rank lane (events).
pub const DEFAULT_RANK_RING: usize = 256;

/// Default ring capacity of one system lane (events). System lanes
/// carry the control-plane story (barrier phases, commits, elections),
/// so they keep a deeper tail than the per-rank message lanes.
pub const DEFAULT_SYSTEM_RING: usize = 1024;

// ---------------------------------------------------------------------------
// Event kinds
// ---------------------------------------------------------------------------

/// Number of event kinds (the size of the per-kind counter table).
pub const KIND_COUNT: usize = 27;

/// What happened. Each kind carries up to three `u64` payload fields
/// whose meanings are given by [`EventKind::field_names`].
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A posted receive matched a message (rank lane): `src`, `tag`, `seq`.
    MsgMatch = 0,
    /// A checkpoint was requested on the coordinator: `epoch`, `mode`.
    CkptRequest = 1,
    /// A checkpoint cut was scheduled: `cut`, `mode`, `epoch`.
    CkptScheduled = 2,
    /// A rank finalized the gather cut: `rank`, `cut`, `epoch`.
    CutFinalized = 3,
    /// A rank entered the rendezvous: `rank`, `cut`, `epoch`.
    RendezvousEnter = 4,
    /// A rank resigned (fail-stop): `rank`, `epoch`, `aborted`.
    Resign = 5,
    /// The finish() leader announced a barrier phase: `phase` (0=Arrive,
    /// 1=PreSeal, 2=PostSeal, 3=Release), `epoch`, `cut`.
    BarrierPhase = 6,
    /// A coordinator epoch sealed at the rendezvous: `epoch`, `cut`, `stop`.
    EpochCommit = 7,
    /// A barrier was poisoned (a waiter unwound): `epoch`.
    Poison = 8,
    /// The delta store committed a chain epoch: `epoch`, `full`, `blocks_new`.
    StoreCommit = 9,
    /// Retention GC ran: `deleted`, `kept`, `guarded` (undurable epochs
    /// the tier guard pinned locally).
    GcDecision = 10,
    /// An epoch with an unreadable manifest was renamed aside: `epoch`.
    Quarantine = 11,
    /// The tier shipper started uploading an epoch: `epoch`.
    TierShip = 12,
    /// An epoch's seal landed durably in the tier: `epoch`, `bytes`,
    /// `retries`.
    SealDurable = 13,
    /// The shipper abandoned an epoch (sticky error): `epoch`, `retries`.
    TierFail = 14,
    /// Paxos phase 1 sent to one acceptor: `ballot`, `acceptor`,
    /// `promised` (1 if the acceptor promised).
    Prepare = 15,
    /// Paxos phase 2 durably accepted by one acceptor: `ballot`, `slot`,
    /// `acceptor`.
    Accept = 16,
    /// A record reached quorum at a log slot: `slot`, `ballot`.
    SlotCommit = 17,
    /// A candidate's ballot won a quorum of promises: `ballot`,
    /// `candidate`, `promises`.
    BallotWon = 18,
    /// A leader took over the replica group: `leader`, `ballot`,
    /// `recovery` (1 if it replaced a dead incumbent).
    LeaderElected = 19,
    /// A majority of replicas was unreachable: `need`, `have`.
    QuorumLost = 20,
    /// The fault script killed a replica: `victim`, `phase`.
    FaultKill = 21,
    /// The image sink reported a failure: `epoch`.
    SinkError = 22,
    /// A rank body unwound (panic or error): `rank`.
    RankUnwind = 23,
    /// The lockcheck detector flagged a lock-order hazard: `code`
    /// (0 = ordering cycle, 1 = reentrant acquisition, 2 = guard held
    /// across a rendezvous point), `locks` involved, `fingerprint`
    /// (stable hash of the lock-name set, for dedup across dumps).
    LockCycle = 24,
    /// An injected straggler delay stalled a rank at a safe point (rank
    /// lane): `rank`, `delay_ns`, `step`.
    RankStall = 25,
    /// A fault-schedule kill event struck a rank (rank lane): `victim`,
    /// `step`, `node` (the blamed node-group).
    RankKill = 26,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::MsgMatch,
        EventKind::CkptRequest,
        EventKind::CkptScheduled,
        EventKind::CutFinalized,
        EventKind::RendezvousEnter,
        EventKind::Resign,
        EventKind::BarrierPhase,
        EventKind::EpochCommit,
        EventKind::Poison,
        EventKind::StoreCommit,
        EventKind::GcDecision,
        EventKind::Quarantine,
        EventKind::TierShip,
        EventKind::SealDurable,
        EventKind::TierFail,
        EventKind::Prepare,
        EventKind::Accept,
        EventKind::SlotCommit,
        EventKind::BallotWon,
        EventKind::LeaderElected,
        EventKind::QuorumLost,
        EventKind::FaultKill,
        EventKind::SinkError,
        EventKind::RankUnwind,
        EventKind::LockCycle,
        EventKind::RankStall,
        EventKind::RankKill,
    ];

    /// The kind's stable name (used in dumps and metric keys).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::MsgMatch => "MsgMatch",
            EventKind::CkptRequest => "CkptRequest",
            EventKind::CkptScheduled => "CkptScheduled",
            EventKind::CutFinalized => "CutFinalized",
            EventKind::RendezvousEnter => "RendezvousEnter",
            EventKind::Resign => "Resign",
            EventKind::BarrierPhase => "BarrierPhase",
            EventKind::EpochCommit => "EpochCommit",
            EventKind::Poison => "Poison",
            EventKind::StoreCommit => "StoreCommit",
            EventKind::GcDecision => "GcDecision",
            EventKind::Quarantine => "Quarantine",
            EventKind::TierShip => "TierShip",
            EventKind::SealDurable => "SealDurable",
            EventKind::TierFail => "TierFail",
            EventKind::Prepare => "Prepare",
            EventKind::Accept => "Accept",
            EventKind::SlotCommit => "SlotCommit",
            EventKind::BallotWon => "BallotWon",
            EventKind::LeaderElected => "LeaderElected",
            EventKind::QuorumLost => "QuorumLost",
            EventKind::FaultKill => "FaultKill",
            EventKind::SinkError => "SinkError",
            EventKind::RankUnwind => "RankUnwind",
            EventKind::LockCycle => "LockCycle",
            EventKind::RankStall => "RankStall",
            EventKind::RankKill => "RankKill",
        }
    }

    /// Names of the three payload fields (`"_"` = unused; dumps omit it).
    pub fn field_names(self) -> [&'static str; 3] {
        match self {
            EventKind::MsgMatch => ["src", "tag", "seq"],
            EventKind::CkptRequest => ["epoch", "mode", "_"],
            EventKind::CkptScheduled => ["cut", "mode", "epoch"],
            EventKind::CutFinalized => ["rank", "cut", "epoch"],
            EventKind::RendezvousEnter => ["rank", "cut", "epoch"],
            EventKind::Resign => ["rank", "epoch", "aborted"],
            EventKind::BarrierPhase => ["phase", "epoch", "cut"],
            EventKind::EpochCommit => ["epoch", "cut", "stop"],
            EventKind::Poison => ["epoch", "_", "_"],
            EventKind::StoreCommit => ["epoch", "full", "blocks_new"],
            EventKind::GcDecision => ["deleted", "kept", "guarded"],
            EventKind::Quarantine => ["epoch", "_", "_"],
            EventKind::TierShip => ["epoch", "_", "_"],
            EventKind::SealDurable => ["epoch", "bytes", "retries"],
            EventKind::TierFail => ["epoch", "retries", "_"],
            EventKind::Prepare => ["ballot", "acceptor", "promised"],
            EventKind::Accept => ["ballot", "slot", "acceptor"],
            EventKind::SlotCommit => ["slot", "ballot", "_"],
            EventKind::BallotWon => ["ballot", "candidate", "promises"],
            EventKind::LeaderElected => ["leader", "ballot", "recovery"],
            EventKind::QuorumLost => ["need", "have", "_"],
            EventKind::FaultKill => ["victim", "phase", "_"],
            EventKind::SinkError => ["epoch", "_", "_"],
            EventKind::RankUnwind => ["rank", "_", "_"],
            EventKind::LockCycle => ["code", "locks", "fingerprint"],
            EventKind::RankStall => ["rank", "delay_ns", "step"],
            EventKind::RankKill => ["victim", "step", "node"],
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One recorded event, as read back out of a lane ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The lane it was recorded on (rank id, or a system lane).
    pub lane: u32,
    /// The lane-local emit ticket (monotonic per lane).
    pub ticket: u64,
    /// Virtual-clock timestamp in nanoseconds (0 if the emitter had no
    /// clock and nothing had been observed yet).
    pub vclock_ns: u64,
    /// Wall-clock timestamp in nanoseconds since the Unix epoch.
    pub wall_ns: u64,
    /// First payload field (see [`EventKind::field_names`]).
    pub a: u64,
    /// Second payload field.
    pub b: u64,
    /// Third payload field.
    pub c: u64,
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit length is `i` (bucket 0 holds zero; the last bucket
/// saturates).
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A monotonically increasing named counter. Cloning shares the cell;
/// increments are single atomic adds (cache the handle on hot paths).
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A named gauge: a value that can move both ways (queue depths, live
/// replica counts).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over power-of-two value ranges: bucket `i`
/// counts observations with bit length `i`, so byte sizes and latencies
/// land in log-scaled buckets without configuration.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::SeqCst)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::SeqCst)
    }

    /// Bucket counts (bucket `i` = values of bit length `i`).
    pub fn buckets(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::SeqCst))
            .collect()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one registry metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram reading.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Per-bucket counts.
        buckets: Vec<u64>,
    },
}

impl MetricValue {
    /// The scalar view: counter/gauge value, or a histogram's sum.
    pub fn scalar(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram { sum, .. } => *sum,
        }
    }
}

/// The process-wide named metrics registry. Registration takes a short
/// mutex; reads and writes through the returned handles are lock-free.
/// Every lock acquisition is poison-safe: a thread that panicked while
/// registering cannot wedge later registrations or the dump path.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// Recover the map even if a panicking thread poisoned the lock: the
/// registry's invariants hold at every await-free step, so the data is
/// always consistent.
fn registry_lock(m: &Mutex<BTreeMap<String, Metric>>) -> MutexGuard<'_, BTreeMap<String, Metric>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name`. A name already registered as
    /// a different metric type yields a fresh detached counter rather
    /// than panicking (the dump shows the originally registered metric).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = registry_lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = registry_lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = registry_lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// A point-in-time reading of every registered metric, by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let map = registry_lock(&self.inner);
        map.iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.buckets(),
                    },
                };
                (name.clone(), value)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The lane rings
// ---------------------------------------------------------------------------

/// One seqlock-style ring slot: `seq` is `2·ticket+1` while a writer is
/// mid-flight and `2·ticket+2` once published; readers validate it on
/// both sides of the field reads.
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    vclock: AtomicU64,
    wall: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            vclock: AtomicU64::new(0),
            wall: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// One bounded event ring (power-of-two capacity).
struct Lane {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Lane {
    fn new(capacity: usize) -> Lane {
        let cap = capacity.max(2).next_power_of_two();
        Lane {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    #[inline]
    fn slot_for(&self, ticket: u64) -> &Slot {
        &self.slots[(ticket as usize) & (self.slots.len() - 1)]
    }

    /// Read every published event still resident in the ring, in ticket
    /// order, skipping torn or overwritten slots.
    fn collect(&self, lane_id: u32, into: &mut Vec<Event>) {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for ticket in start..head {
            let slot = self.slot_for(ticket);
            let published = 2 * ticket + 2;
            if slot.seq.load(Ordering::SeqCst) != published {
                continue;
            }
            let kind = slot.kind.load(Ordering::SeqCst);
            let vclock = slot.vclock.load(Ordering::SeqCst);
            let wall = slot.wall.load(Ordering::SeqCst);
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            let c = slot.c.load(Ordering::SeqCst);
            // Re-check: a concurrent writer lapping this slot between the
            // reads would have bumped seq; drop the torn read.
            if slot.seq.load(Ordering::SeqCst) != published {
                continue;
            }
            let Some(kind) = EventKind::from_u64(kind) else {
                continue;
            };
            into.push(Event {
                kind,
                lane: lane_id,
                ticket,
                vclock_ns: vclock,
                wall_ns: wall,
                a,
                b,
                c,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

/// Construction knobs of a [`Telemetry`] recorder.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Ring capacity per rank lane (0 = [`DEFAULT_RANK_RING`]).
    pub rank_ring: usize,
    /// Ring capacity per system lane (0 = [`DEFAULT_SYSTEM_RING`]).
    pub system_ring: usize,
    /// Where [`Telemetry::dump`] writes the crash-dump timeline; `None`
    /// disables dumping (events are still snapshot-able in memory).
    pub dump_dir: Option<PathBuf>,
    /// Echo every emitted event to stderr (the trace-level filter;
    /// default quiet).
    pub echo: bool,
    /// Label this recorder belongs to one tenant of a multi-tenant
    /// cluster; stamped into dump headers and echo lines so interleaved
    /// output from concurrent worlds stays attributable.
    pub tag: Option<String>,
}

/// The flight recorder: per-rank + per-subsystem event lanes, the
/// metrics registry, per-kind emitted counters that survive ring wrap,
/// and the one-shot crash-dump path.
pub struct Telemetry {
    nranks: usize,
    lanes: Vec<Lane>,
    registry: MetricsRegistry,
    emitted: [AtomicU64; KIND_COUNT],
    observed: AtomicU64,
    incidents: AtomicU64,
    dumped: AtomicBool,
    dump_dir: Option<PathBuf>,
    echo: AtomicBool,
    tag: Option<String>,
}

impl Telemetry {
    /// A recorder for a world of `nranks` ranks with default ring sizes.
    pub fn new(nranks: usize) -> Telemetry {
        Telemetry::with_config(nranks, TelemetryConfig::default())
    }

    /// A recorder with explicit knobs.
    pub fn with_config(nranks: usize, config: TelemetryConfig) -> Telemetry {
        let rank_cap = if config.rank_ring == 0 {
            DEFAULT_RANK_RING
        } else {
            config.rank_ring
        };
        let sys_cap = if config.system_ring == 0 {
            DEFAULT_SYSTEM_RING
        } else {
            config.system_ring
        };
        let lanes = (0..nranks + SYSTEM_LANES)
            .map(|i| Lane::new(if i < nranks { rank_cap } else { sys_cap }))
            .collect();
        Telemetry {
            nranks,
            lanes,
            registry: MetricsRegistry::new(),
            emitted: std::array::from_fn(|_| AtomicU64::new(0)),
            observed: AtomicU64::new(0),
            incidents: AtomicU64::new(0),
            dumped: AtomicBool::new(false),
            dump_dir: config.dump_dir,
            echo: AtomicBool::new(config.echo),
            tag: config.tag,
        }
    }

    /// The tenant tag this recorder was built with, if any.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// World size this recorder was built for.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The coordinator system lane.
    pub fn coord_lane(&self) -> u32 {
        self.nranks as u32
    }

    /// The delta-store system lane.
    pub fn store_lane(&self) -> u32 {
        self.nranks as u32 + 1
    }

    /// The tier-shipper system lane.
    pub fn tier_lane(&self) -> u32 {
        self.nranks as u32 + 2
    }

    /// The replica-group system lane.
    pub fn replica_lane(&self) -> u32 {
        self.nranks as u32 + 3
    }

    /// Human name of a lane (used in dumps).
    pub fn lane_name(&self, lane: u32) -> String {
        let n = self.nranks as u32;
        match lane.checked_sub(n) {
            None => format!("rank{lane}"),
            Some(0) => "coord".to_string(),
            Some(1) => "store".to_string(),
            Some(2) => "tier".to_string(),
            Some(3) => "replica".to_string(),
            Some(_) => format!("lane{lane}"),
        }
    }

    /// The process-wide metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Enable/disable echoing emitted events to stderr.
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::SeqCst);
    }

    /// Whether event echo is on.
    pub fn echo(&self) -> bool {
        self.echo.load(Ordering::SeqCst)
    }

    /// Fold a virtual-clock observation into the recorder's high-water
    /// mark (emitters without a clock stamp with [`Telemetry::observed_now`]).
    #[inline]
    pub fn observe_time(&self, vclock_ns: u64) {
        self.observed.fetch_max(vclock_ns, Ordering::Relaxed);
    }

    /// The highest virtual-clock timestamp observed so far.
    #[inline]
    pub fn observed_now(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Record an incident (failover, quorum loss, sink failure, rank
    /// unwind). A session that saw any incident dumps its timeline at
    /// the end of the run.
    pub fn note_incident(&self) {
        self.incidents.fetch_add(1, Ordering::SeqCst);
    }

    /// Incidents recorded so far.
    pub fn incidents(&self) -> u64 {
        self.incidents.load(Ordering::SeqCst)
    }

    /// Fold lockcheck findings into the recorder: one [`EventKind::LockCycle`]
    /// event on `lane` per incident (payload: hazard code, lock count,
    /// stable fingerprint), plus an incident note each so the session
    /// dumps its timeline at the end of the run.
    pub fn note_lock_incidents(&self, lane: u32, incidents: &[sanity::lockcheck::LockIncident]) {
        for inc in incidents {
            self.emit_system(
                lane,
                EventKind::LockCycle,
                inc.code(),
                inc.locks(),
                inc.fingerprint(),
            );
            self.note_incident();
        }
    }

    /// Emit one event onto `lane` with an explicit virtual-clock stamp.
    /// Lock-free and alloc-free unless echo is on. Out-of-range lanes
    /// clamp to the last system lane rather than panicking — a telemetry
    /// bug must never take down the workload it observes.
    pub fn emit(&self, lane: u32, kind: EventKind, vclock_ns: u64, a: u64, b: u64, c: u64) {
        self.observe_time(vclock_ns);
        self.emitted[kind as usize].fetch_add(1, Ordering::Relaxed);
        let lane_ref = self
            .lanes
            .get(lane as usize)
            .unwrap_or_else(|| &self.lanes[self.lanes.len() - 1]);
        // lint:region-start(no-alloc-in-emit) — the seqlock store sequence:
        // a killed writer must leave at worst a torn slot, never a held
        // allocator lock, so nothing here may allocate.
        let ticket = lane_ref.head.fetch_add(1, Ordering::SeqCst);
        let slot = lane_ref.slot_for(ticket);
        slot.seq.store(2 * ticket + 1, Ordering::SeqCst);
        slot.kind.store(kind as u64, Ordering::SeqCst);
        slot.vclock.store(vclock_ns, Ordering::SeqCst);
        slot.wall.store(wall_now_ns(), Ordering::SeqCst);
        slot.a.store(a, Ordering::SeqCst);
        slot.b.store(b, Ordering::SeqCst);
        slot.c.store(c, Ordering::SeqCst);
        slot.seq.store(2 * ticket + 2, Ordering::SeqCst);
        // lint:region-end(no-alloc-in-emit)
        if self.echo() {
            match self.tag.as_deref() {
                // lint:allow(no-eprintln) — echo mode mirrors events to stderr on request.
                Some(tag) => eprintln!(
                    "[tel:{tag}] {} vt={}ns {} a={a} b={b} c={c}",
                    self.lane_name(lane),
                    vclock_ns,
                    kind.name(),
                ),
                // lint:allow(no-eprintln) — echo mode mirrors events to stderr on request.
                None => eprintln!(
                    "[tel] {} vt={}ns {} a={a} b={b} c={c}",
                    self.lane_name(lane),
                    vclock_ns,
                    kind.name(),
                ),
            }
        }
    }

    /// Emit onto a rank lane with an explicit virtual-clock stamp.
    #[inline]
    pub fn emit_rank(&self, rank: usize, kind: EventKind, vclock_ns: u64, a: u64, b: u64, c: u64) {
        self.emit(rank as u32, kind, vclock_ns, a, b, c);
    }

    /// Emit onto a system lane stamped with [`Telemetry::observed_now`]
    /// (for emitters that do not carry a rank's virtual clock).
    #[inline]
    pub fn emit_system(&self, lane: u32, kind: EventKind, a: u64, b: u64, c: u64) {
        self.emit(lane, kind, self.observed_now(), a, b, c);
    }

    /// How many events of `kind` were ever emitted (survives ring wrap).
    pub fn emitted(&self, kind: EventKind) -> u64 {
        self.emitted[kind as usize].load(Ordering::SeqCst)
    }

    /// Total events ever emitted across all kinds.
    pub fn emitted_total(&self) -> u64 {
        self.emitted.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }

    /// Per-kind emitted counts, in [`EventKind::ALL`] order.
    pub fn emitted_by_kind(&self) -> Vec<(EventKind, u64)> {
        EventKind::ALL
            .iter()
            .map(|&k| (k, self.emitted(k)))
            .collect()
    }

    /// The merged timeline: every resident event from every lane,
    /// sorted by `(virtual clock, wall clock, lane, ticket)`.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            lane.collect(i as u32, &mut out);
        }
        out.sort_by_key(|e| (e.vclock_ns, e.wall_ns, e.lane, e.ticket));
        out
    }

    /// Start an emit on `lane` and abandon it mid-flight, exactly as a
    /// rank killed between the seqlock stores would. Test hook for the
    /// poison-safety guarantee: the dump path must skip the torn slot.
    #[doc(hidden)]
    pub fn begin_torn_emit(&self, lane: u32) {
        let lane_ref = self
            .lanes
            .get(lane as usize)
            .unwrap_or_else(|| &self.lanes[self.lanes.len() - 1]);
        // lint:region-start(no-alloc-in-emit) — mirrors the real emit path.
        let ticket = lane_ref.head.fetch_add(1, Ordering::SeqCst);
        let slot = lane_ref.slot_for(ticket);
        slot.seq.store(2 * ticket + 1, Ordering::SeqCst);
        slot.kind
            .store(EventKind::MsgMatch as u64, Ordering::SeqCst);
        // ... and the writer dies here: seq never reaches 2·ticket+2.
        // lint:region-end(no-alloc-in-emit)
    }

    /// Dump the merged timeline to the configured directory, once: the
    /// first caller wins an atomic claim, every later (or concurrent)
    /// call is a no-op. The write path takes no lock an emitting thread
    /// could hold, so a panicking rank mid-emit cannot deadlock it.
    ///
    /// Returns the JSON-lines path on the winning call.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dump_dir.clone()?;
        if self.dumped.swap(true, Ordering::SeqCst) {
            return None;
        }
        self.write_dump(&dir, reason).ok()
    }

    /// Whether [`Telemetry::dump`] has already claimed its one shot.
    pub fn dump_claimed(&self) -> bool {
        self.dumped.load(Ordering::SeqCst)
    }

    /// Write the merged timeline under `dir` unconditionally (the
    /// engine behind [`Telemetry::dump`]; tests call it directly).
    /// Produces `flight.jsonl` (one JSON object per event) and
    /// `flight.trace.json` (Chrome `trace_event` format).
    pub fn write_dump(&self, dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let events = self.events();
        let jsonl_path = dir.join("flight.jsonl");
        let trace_path = dir.join("flight.trace.json");

        let mut jsonl = String::new();
        jsonl.push_str(&format!(
            "{{\"type\":\"header\",\"reason\":{},\"tenant\":{},\"nranks\":{},\"events\":{},\"incidents\":{}}}\n",
            json_string(reason),
            json_string(self.tag.as_deref().unwrap_or("")),
            self.nranks,
            events.len(),
            self.incidents(),
        ));
        for e in &events {
            jsonl.push_str(&self.event_json(e));
            jsonl.push('\n');
        }
        jsonl.push_str(&format!(
            "{{\"type\":\"metrics\",\"values\":{}}}\n",
            metrics_json(&self.registry.snapshot())
        ));
        std::fs::write(&jsonl_path, jsonl)?;

        let mut trace = String::from("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"reason\":");
        trace.push_str(&json_string(reason));
        trace.push_str("},\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                trace.push(',');
            }
            trace.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{}.{:03},\"pid\":0,\"tid\":{},\"args\":{}}}",
                json_string(e.kind.name()),
                json_string(&self.lane_name(e.lane)),
                e.vclock_ns / 1_000,
                e.vclock_ns % 1_000,
                e.lane,
                args_json(e),
            ));
        }
        trace.push_str("]}");
        std::fs::write(&trace_path, trace)?;
        Ok(jsonl_path)
    }

    /// One event as a JSON-lines object.
    fn event_json(&self, e: &Event) -> String {
        format!(
            "{{\"type\":\"event\",\"kind\":{},\"lane\":{},\"lane_name\":{},\"ticket\":{},\"vt_ns\":{},\"wall_ns\":{},\"args\":{}}}",
            json_string(e.kind.name()),
            e.lane,
            json_string(&self.lane_name(e.lane)),
            e.ticket,
            e.vclock_ns,
            e.wall_ns,
            args_json(e),
        )
    }
}

/// Wall-clock nanoseconds since the Unix epoch (0 if the system clock
/// is before the epoch).
fn wall_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An event's named payload fields as a JSON object (unused fields
/// omitted).
fn args_json(e: &Event) -> String {
    let names = e.kind.field_names();
    let values = [e.a, e.b, e.c];
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in names.iter().zip(values) {
        if *name == "_" {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{}", json_string(name), value));
    }
    out.push('}');
    out
}

/// The registry snapshot as a JSON object.
fn metrics_json(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in snapshot {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&json_string(name));
        out.push(':');
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => out.push_str(&v.to_string()),
            MetricValue::Histogram { count, sum, .. } => {
                out.push_str(&format!("{{\"count\":{count},\"sum\":{sum}}}"));
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_read_back_round_trip() {
        let tel = Telemetry::new(2);
        tel.emit_rank(0, EventKind::MsgMatch, 100, 1, 7, 0);
        tel.emit_system(tel.coord_lane(), EventKind::EpochCommit, 3, 40, 0);
        let events = tel.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MsgMatch);
        assert_eq!(events[0].vclock_ns, 100);
        // The system emit stamped with the observed high-water mark.
        assert_eq!(events[1].kind, EventKind::EpochCommit);
        assert_eq!(events[1].vclock_ns, 100);
        assert_eq!(tel.emitted(EventKind::MsgMatch), 1);
        assert_eq!(tel.emitted_total(), 2);
    }

    #[test]
    fn ring_wrap_keeps_the_tail_and_the_counters() {
        let tel = Telemetry::with_config(
            1,
            TelemetryConfig {
                rank_ring: 8,
                ..TelemetryConfig::default()
            },
        );
        for i in 0..100u64 {
            tel.emit_rank(0, EventKind::MsgMatch, i, i, 0, 0);
        }
        let events = tel.events();
        // Only the last 8 survive in the ring ...
        assert_eq!(events.len(), 8);
        let tickets: Vec<u64> = events.iter().map(|e| e.ticket).collect();
        assert_eq!(tickets, (92..100).collect::<Vec<_>>());
        assert_eq!(events.last().unwrap().a, 99);
        // ... but the per-kind counter saw all 100.
        assert_eq!(tel.emitted(EventKind::MsgMatch), 100);
    }

    #[test]
    fn merged_timeline_is_vclock_sorted() {
        let tel = Telemetry::new(3);
        tel.emit_rank(2, EventKind::MsgMatch, 300, 0, 0, 0);
        tel.emit_rank(0, EventKind::MsgMatch, 100, 0, 0, 0);
        tel.emit_rank(1, EventKind::MsgMatch, 200, 0, 0, 0);
        let events = tel.events();
        let clocks: Vec<u64> = events.iter().map(|e| e.vclock_ns).collect();
        assert_eq!(clocks, vec![100, 200, 300]);
    }

    #[test]
    fn torn_emit_is_skipped_not_trusted() {
        let tel = Telemetry::new(1);
        tel.emit_rank(0, EventKind::MsgMatch, 1, 0, 0, 0);
        tel.begin_torn_emit(0);
        tel.emit_rank(0, EventKind::MsgMatch, 2, 0, 0, 0);
        let events = tel.events();
        assert_eq!(events.len(), 2, "torn slot must be dropped");
        assert!(events.iter().all(|e| e.vclock_ns > 0));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.incr();
        c.add(4);
        // Re-registration returns the same cell.
        assert_eq!(reg.counter("a.count").get(), 5);
        reg.gauge("b.gauge").set(17);
        let h = reg.histogram("c.hist");
        h.observe(0);
        h.observe(1);
        h.observe(1000);
        let snap = reg.snapshot();
        assert_eq!(snap["a.count"], MetricValue::Counter(5));
        assert_eq!(snap["b.gauge"], MetricValue::Gauge(17));
        match &snap["c.hist"] {
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                assert_eq!(*count, 3);
                assert_eq!(*sum, 1001);
                assert_eq!(buckets[0], 1); // zero
                assert_eq!(buckets[1], 1); // one
                assert_eq!(buckets[10], 1); // 1000 has bit length 10
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn dump_writes_jsonl_and_trace_once() {
        let dir = std::env::temp_dir().join(format!(
            "stool_tel_dump_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tel = Telemetry::with_config(
            1,
            TelemetryConfig {
                dump_dir: Some(dir.clone()),
                ..TelemetryConfig::default()
            },
        );
        tel.emit_rank(0, EventKind::MsgMatch, 5, 1, 2, 3);
        tel.begin_torn_emit(0); // must not break the dump
        let path = tel.dump("test \"quoted\" reason").expect("first dump wins");
        assert!(path.exists());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"kind\":\"MsgMatch\""));
        assert!(body.contains("test \\\"quoted\\\" reason"));
        let trace = std::fs::read_to_string(dir.join("flight.trace.json")).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\":\"MsgMatch\""));
        // Second dump is a no-op under the atomic claim.
        assert!(tel.dump("again").is_none());
        assert!(tel.dump_claimed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lane_names_and_system_lanes() {
        let tel = Telemetry::new(4);
        assert_eq!(tel.lane_name(0), "rank0");
        assert_eq!(tel.lane_name(tel.coord_lane()), "coord");
        assert_eq!(tel.lane_name(tel.store_lane()), "store");
        assert_eq!(tel.lane_name(tel.tier_lane()), "tier");
        assert_eq!(tel.lane_name(tel.replica_lane()), "replica");
    }
}
