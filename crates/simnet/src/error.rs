//! Substrate-level errors.

use std::fmt;

/// Result alias for substrate operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised by the simulated cluster substrate.
///
/// These model transport-level failures (the kind a real MPI library would
/// observe from its network layer), not MPI semantic errors — those are the
/// business of the vendor libraries built on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Destination rank is out of range for the fabric.
    NoSuchRank {
        /// The offending rank id.
        rank: usize,
        /// Number of ranks in the fabric.
        nranks: usize,
    },
    /// The peer rank has been marked failed (fail-stop fault injection).
    PeerFailed {
        /// The failed peer.
        rank: usize,
    },
    /// This rank itself has been marked failed; it must stop communicating.
    SelfFailed,
    /// The fabric has been shut down (all senders dropped).
    Disconnected,
    /// A rank thread panicked during a `World::run` and the run was aborted.
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// Panic payload rendered to text, when available.
        message: String,
    },
    /// A configuration was rejected (e.g. zero ranks).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchRank { rank, nranks } => {
                write!(f, "no such rank {rank} (fabric has {nranks} ranks)")
            }
            SimError::PeerFailed { rank } => write!(f, "peer rank {rank} has failed"),
            SimError::SelfFailed => write!(f, "this rank has been marked failed"),
            SimError::Disconnected => write!(f, "fabric disconnected"),
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid cluster configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NoSuchRank { rank: 9, nranks: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("4 ranks"));
        let e = SimError::RankPanicked {
            rank: 2,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
