//! # muk — a Mukautuva-like MPI ABI compatibility layer
//!
//! Mukautuva (Hammond, 2023) demonstrated that a single standard ABI can
//! front arbitrary MPI implementations: one shared library (`libmuk.so`)
//! exports the standard MPI symbols, detects the real MPI at runtime, and
//! `dlopen`s a small *wrap library* (`libmpich-wrap.so`, `libompi-wrap.so`)
//! compiled against that vendor's headers to do the per-call translation.
//!
//! This crate reproduces that architecture:
//!
//! * [`registry`] — the "dynamic loader": a soname-keyed table of wrap
//!   library factories ([`registry::open_wrap`] is our `dlopen`);
//! * [`mpich_wrap`] / [`ompi_wrap`] — the wrap libraries: each implements
//!   the standard [`mpi_abi::MpiAbi`] function table over one vendor's
//!   native API, translating handles (bidirectional tables), constants
//!   (`ANY_SOURCE` −1↔−2 …), datatypes, reduction ops, status layouts, and
//!   error codes;
//! * [`shim`] — `libmuk.so` itself: [`shim::MukShim`] fronts a wrap library,
//!   charges the per-call translation overhead to the rank's virtual clock
//!   (the cost the paper measures in §5.1), and reports a combined library
//!   version string.
//!
//! The MANA-like checkpointer (`mana-sim`) binds to [`shim::MukShim`] only,
//! which is precisely how the paper's revised MANA needs to be compiled just
//! once and re-used over MPICH, Open MPI, "or some other MPI implementation
//! that supports the Mukautuva interface."
//!
//! [`mpi_abi::MpiAbi`]: mpi_abi::MpiAbi

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimap;
pub mod fold;
pub mod mpich_wrap;
pub mod ompi_wrap;
pub mod overhead;
pub mod registry;
pub mod shim;

pub use overhead::MukOverhead;
pub use registry::{open_wrap, soname_for, Vendor};
pub use shim::MukShim;
