//! Cluster description: nodes, interconnect, operating-system features.
//!
//! The defaults reproduce the paper's testbed: the Discovery cluster at
//! MGHPCC — 4 compute nodes, 48 MPI processes total, 10 GbE interconnect,
//! CentOS 7 with Linux kernel 3.10 (so **no** user-space FSGSBASE).

use crate::link::{LinkClass, LinkModel};
use crate::noise::NoiseModel;
use crate::time::VirtualTime;

/// A Linux kernel version, used to gate kernel features the paper depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelVersion {
    /// Major version (e.g. 3 in 3.10.0).
    pub major: u32,
    /// Minor version (e.g. 10 in 3.10.0).
    pub minor: u32,
    /// Patch level.
    pub patch: u32,
}

impl KernelVersion {
    /// Construct a kernel version.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        KernelVersion {
            major,
            minor,
            patch,
        }
    }

    /// CentOS 7's kernel, as used on the paper's Discovery cluster.
    pub const CENTOS7: KernelVersion = KernelVersion::new(3, 10, 0);

    /// A modern kernel with user-space FSGSBASE support.
    pub const MODERN: KernelVersion = KernelVersion::new(5, 15, 0);

    /// Whether user-space programs may write the FS/GS base registers
    /// directly (introduced in Linux 5.9). Without this, MANA's split-process
    /// context switch must fall back to `arch_prctl(2)` — a syscall — on
    /// every crossing between the upper and lower half, which the paper
    /// identifies as the main cause of its small-message overhead.
    pub fn has_userspace_fsgsbase(self) -> bool {
        (self.major, self.minor) >= (5, 9)
    }
}

impl std::fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// The inter-node interconnect technology.
///
/// Each variant carries a canned latency/bandwidth point; custom hardware can
/// be described with [`Interconnect::Custom`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interconnect {
    /// 10-gigabit Ethernet with a TCP software stack (the paper's testbed).
    TenGbE,
    /// 100-gigabit Ethernet (RoCE-style latencies).
    HundredGbE,
    /// EDR InfiniBand-class network.
    Infiniband,
    /// Custom parameters: one-way latency and bandwidth in bytes/second.
    Custom {
        /// One-way small-message latency.
        latency: VirtualTime,
        /// Sustained point-to-point bandwidth, bytes per second.
        bandwidth_bps: f64,
    },
}

impl Interconnect {
    /// The link model for this interconnect.
    pub fn link_model(self) -> LinkModel {
        match self {
            // ~28 us one-way small message latency over TCP on 10 GbE and
            // ~1.1 GB/s achievable bandwidth match common measurements and
            // put the simulated OSU curves on the paper's absolute scale.
            Interconnect::TenGbE => LinkModel::new(VirtualTime::from_nanos(28_000), 1.10e9),
            Interconnect::HundredGbE => LinkModel::new(VirtualTime::from_nanos(6_000), 11.0e9),
            Interconnect::Infiniband => LinkModel::new(VirtualTime::from_nanos(1_300), 11.5e9),
            Interconnect::Custom {
                latency,
                bandwidth_bps,
            } => LinkModel::new(latency, bandwidth_bps),
        }
    }

    /// Short human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Interconnect::TenGbE => "10GbE",
            Interconnect::HundredGbE => "100GbE",
            Interconnect::Infiniband => "InfiniBand",
            Interconnect::Custom { .. } => "custom",
        }
    }
}

/// Full description of a simulated cluster.
///
/// Construct with [`ClusterSpec::builder`]; [`ClusterSpec::discovery`] gives
/// the paper's testbed verbatim.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: usize,
    /// MPI processes (ranks) per node.
    pub ranks_per_node: usize,
    /// Inter-node network.
    pub interconnect: Interconnect,
    /// Intra-node (shared-memory) link model.
    pub shm_link: LinkModel,
    /// Kernel version on the compute nodes.
    pub kernel: KernelVersion,
    /// Relative compute speed of the nodes (1.0 = the paper's Xeon E5-2690v3).
    pub cpu_speed: f64,
    /// Stochastic jitter applied to message costs (off by default).
    pub noise: NoiseModel,
    /// Extra wire bytes charged per message (headers, framing).
    pub header_bytes: usize,
}

impl ClusterSpec {
    /// Begin building a cluster description.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// The paper's testbed: 4 nodes × 12 ranks = 48 MPI processes,
    /// 10 GbE, CentOS 7 (kernel 3.10, no user-space FSGSBASE).
    pub fn discovery() -> ClusterSpec {
        ClusterSpec::builder()
            .nodes(4)
            .ranks_per_node(12)
            .interconnect(Interconnect::TenGbE)
            .kernel(KernelVersion::CENTOS7)
            .build()
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node hosting a given rank (block distribution, as with typical
    /// `mpirun` defaults).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The link class connecting two ranks.
    pub fn link_class(&self, a: usize, b: usize) -> LinkClass {
        if self.same_node(a, b) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// The link model for a (src, dst) rank pair.
    pub fn link_between(&self, a: usize, b: usize) -> LinkModel {
        match self.link_class(a, b) {
            LinkClass::IntraNode => self.shm_link,
            LinkClass::InterNode => self.interconnect.link_model(),
        }
    }

    /// Validate the spec. Returns an error message for nonsense configs.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        if self.ranks_per_node == 0 {
            return Err("cluster must have at least one rank per node".into());
        }
        if self.cpu_speed <= 0.0 {
            return Err("cpu_speed must be positive".into());
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::discovery()
    }
}

/// Builder for [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct ClusterSpecBuilder {
    nodes: usize,
    ranks_per_node: usize,
    interconnect: Interconnect,
    shm_link: LinkModel,
    kernel: KernelVersion,
    cpu_speed: f64,
    noise: NoiseModel,
    header_bytes: usize,
}

impl Default for ClusterSpecBuilder {
    fn default() -> Self {
        ClusterSpecBuilder {
            nodes: 1,
            ranks_per_node: 2,
            interconnect: Interconnect::TenGbE,
            // Shared-memory transport: sub-microsecond latency, ~6 GB/s
            // effective copy bandwidth (two copies through a CMA-style path).
            shm_link: LinkModel::new(VirtualTime::from_nanos(400), 6.0e9),
            kernel: KernelVersion::CENTOS7,
            cpu_speed: 1.0,
            noise: NoiseModel::disabled(),
            header_bytes: 64,
        }
    }
}

impl ClusterSpecBuilder {
    /// Set the number of compute nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Set the number of ranks per node.
    pub fn ranks_per_node(mut self, rpn: usize) -> Self {
        self.ranks_per_node = rpn;
        self
    }

    /// Set the inter-node interconnect.
    pub fn interconnect(mut self, ic: Interconnect) -> Self {
        self.interconnect = ic;
        self
    }

    /// Override the intra-node (shared-memory) link model.
    pub fn shm_link(mut self, link: LinkModel) -> Self {
        self.shm_link = link;
        self
    }

    /// Set the kernel version (controls FSGSBASE availability).
    pub fn kernel(mut self, kernel: KernelVersion) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the relative CPU speed (scales modelled compute time).
    pub fn cpu_speed(mut self, speed: f64) -> Self {
        self.cpu_speed = speed;
        self
    }

    /// Enable stochastic jitter on message costs.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Set per-message header bytes charged on the wire.
    pub fn header_bytes(mut self, bytes: usize) -> Self {
        self.header_bytes = bytes;
        self
    }

    /// Finish building.
    pub fn build(self) -> ClusterSpec {
        ClusterSpec {
            nodes: self.nodes,
            ranks_per_node: self.ranks_per_node,
            interconnect: self.interconnect,
            shm_link: self.shm_link,
            kernel: self.kernel,
            cpu_speed: self.cpu_speed,
            noise: self.noise,
            header_bytes: self.header_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_matches_paper_testbed() {
        let spec = ClusterSpec::discovery();
        assert_eq!(spec.nodes, 4);
        assert_eq!(spec.nranks(), 48);
        assert_eq!(spec.interconnect.name(), "10GbE");
        assert_eq!(spec.kernel, KernelVersion::CENTOS7);
        assert!(!spec.kernel.has_userspace_fsgsbase());
    }

    #[test]
    fn fsgsbase_gate_is_5_9() {
        assert!(!KernelVersion::new(3, 10, 0).has_userspace_fsgsbase());
        assert!(!KernelVersion::new(5, 8, 18).has_userspace_fsgsbase());
        assert!(KernelVersion::new(5, 9, 0).has_userspace_fsgsbase());
        assert!(KernelVersion::new(6, 1, 0).has_userspace_fsgsbase());
    }

    #[test]
    fn node_mapping_is_block() {
        let spec = ClusterSpec::builder().nodes(4).ranks_per_node(12).build();
        assert_eq!(spec.node_of(0), 0);
        assert_eq!(spec.node_of(11), 0);
        assert_eq!(spec.node_of(12), 1);
        assert_eq!(spec.node_of(47), 3);
        assert!(spec.same_node(0, 11));
        assert!(!spec.same_node(11, 12));
    }

    #[test]
    fn link_selection_by_topology() {
        let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
        assert_eq!(spec.link_class(0, 1), LinkClass::IntraNode);
        assert_eq!(spec.link_class(0, 2), LinkClass::InterNode);
        // Intra-node latency must be far below inter-node latency.
        assert!(spec.link_between(0, 1).alpha < spec.link_between(0, 2).alpha);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut spec = ClusterSpec::discovery();
        spec.nodes = 0;
        assert!(spec.validate().is_err());
        let mut spec = ClusterSpec::discovery();
        spec.ranks_per_node = 0;
        assert!(spec.validate().is_err());
        let mut spec = ClusterSpec::discovery();
        spec.cpu_speed = 0.0;
        assert!(spec.validate().is_err());
        assert!(ClusterSpec::discovery().validate().is_ok());
    }

    #[test]
    fn interconnect_ordering_is_physical() {
        let ten = Interconnect::TenGbE.link_model();
        let hundred = Interconnect::HundredGbE.link_model();
        let ib = Interconnect::Infiniband.link_model();
        assert!(ten.alpha > hundred.alpha);
        assert!(hundred.alpha > ib.alpha);
        assert!(ten.beta_inv_bps < hundred.beta_inv_bps);
    }

    #[test]
    fn kernel_display() {
        assert_eq!(KernelVersion::CENTOS7.to_string(), "3.10.0");
    }
}
