//! Fault-injection battery for the delta store's remote second tier:
//! scripted upload errors, torn objects, and slow tiers racing retention
//! GC — in every scenario the chain must stay restorable, locally or
//! from the tier.

use std::sync::Arc;
use std::time::Duration;

use mpi_stool::dmtcp::{
    DeltaStore, FlakyTier, FsTier, GetFault, ObjectTier, PutFault, RankImage, Scrubber,
    StoreConfig, StoreError, StoreWriter, TierConfig, TierError, WorldImage,
};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stool_tier_faults_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudorandom bytes (xorshift64*): realistic content
/// that neither dedups away nor compresses to nothing.
fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// A world image whose "static" section is stable per rank and whose
/// "hot" section follows `fill`.
fn image(epoch: u64, nranks: usize, fill: u8, static_len: usize) -> WorldImage {
    let ranks = (0..nranks)
        .map(|r| {
            let mut img = RankImage::new(r, nranks, epoch);
            img.put_section("static", fill_bytes(r as u64 + 1, static_len));
            img.put_section("hot", fill_bytes((fill as u64) << 8 | r as u64, 700));
            img
        })
        .collect();
    WorldImage::new("MPICH".to_string(), ranks)
}

fn small_cfg() -> StoreConfig {
    StoreConfig {
        block_size: 128,
        retain_epochs: 4,
        max_chain: 4,
        ..StoreConfig::default()
    }
}

/// Fast-retry shipper config for fault tests.
fn tier_cfg() -> TierConfig {
    TierConfig {
        max_attempts: 4,
        backoff: Duration::from_millis(1),
        ..TierConfig::default()
    }
}

#[test]
fn upload_errors_mid_epoch_are_retried_with_backoff() {
    let store_dir = tmp_dir("retry_store");
    let tier_dir = tmp_dir("retry_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    // Two failures strike in the middle of the epoch's object sequence
    // (blocks, manifest, seal): the shipper must retry past both.
    flaky.script_puts([PutFault::Fail, PutFault::Fail]);

    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x11, 2000)).unwrap();
    store.tier_flush().expect("retries must absorb both faults");
    assert_eq!(store.tier_durable(), vec![1]);
    let stats = store.tier_stats().unwrap();
    assert_eq!(stats.epochs_shipped, 1);
    assert!(stats.put_retries >= 2, "stats: {stats:?}");
    assert!(stats.bytes_shipped > 0);
    // Restore still succeeds — locally and from the tier alone.
    assert_eq!(store.load_latest().unwrap(), image(1, 2, 0x11, 2000));
    drop(store);
    std::fs::remove_dir_all(&store_dir).unwrap();
    let hydrated = DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky, tier_cfg()).unwrap();
    assert_eq!(hydrated.load_latest().unwrap(), image(1, 2, 0x11, 2000));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn persistent_upload_failure_goes_sticky_but_never_loses_local_state() {
    let store_dir = tmp_dir("sticky_store");
    let tier_dir = tmp_dir("sticky_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    // More consecutive failures than the attempt budget: the shipper
    // error goes sticky after max_attempts.
    flaky.script_puts(std::iter::repeat_n(PutFault::Fail, 32));

    let cfg = StoreConfig {
        retain_epochs: 1,
        max_chain: 0, // every epoch a full base: GC would normally keep 1
        ..small_cfg()
    };
    let mut store = DeltaStore::open_with_tier(&store_dir, cfg, flaky, tier_cfg()).unwrap();
    for e in 1..=5 {
        store.commit(&image(e, 2, e as u8, 1500)).unwrap();
    }
    match store.tier_flush() {
        Err(StoreError::Tier(TierError::Io { .. })) => {}
        other => panic!("expected the sticky injected failure, got {other:?}"),
    }
    let stats = store.tier_stats().unwrap();
    assert_eq!(stats.epochs_shipped, 0);
    assert_eq!(stats.ship_failures, 1, "first epoch failed, then sticky");
    // Nothing is durable remotely, so the GC guard retained every epoch
    // a plain store would have collected.
    assert!(store.tier_durable().is_empty());
    assert_eq!(store.epochs(), &[1, 2, 3, 4, 5]);
    // Every epoch still restores from the local chain.
    for e in 1..=5 {
        assert_eq!(store.load_epoch(e).unwrap(), image(e, 2, e as u8, 1500));
    }
    drop(store);
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn torn_object_is_rejected_by_crc_and_reuploaded() {
    let store_dir = tmp_dir("torn_store");
    let tier_dir = tmp_dir("torn_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    // Every object of the first epoch lands torn once: the put reports
    // success but the stored bytes are short. Only read-back CRC
    // verification can catch this; each object must be re-uploaded.
    flaky.script_puts([PutFault::Torn, PutFault::Torn, PutFault::Torn]);

    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x33, 2500)).unwrap();
    store
        .tier_flush()
        .expect("torn uploads must be re-uploaded");
    let stats = store.tier_stats().unwrap();
    assert!(
        stats.put_retries >= 3,
        "one re-upload per torn object: {stats:?}"
    );
    assert_eq!(store.tier_durable(), vec![1]);
    drop(store);

    // The tier copy is bit-perfect: delete the whole local store and
    // hydrate from the tier alone.
    std::fs::remove_dir_all(&store_dir).unwrap();
    let store = DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky, tier_cfg()).unwrap();
    assert_eq!(store.epochs(), &[1]);
    assert_eq!(store.load_latest().unwrap(), image(1, 2, 0x33, 2500));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn slow_tier_cannot_race_gc_into_deleting_an_unshipped_epoch() {
    // The durability-guard regression test: retention is aggressive
    // (keep 1, all-full-base epochs) but the tier is stalled, so GC must
    // retain every unshipped epoch; once the tier drains, the next
    // commit collects them.
    let store_dir = tmp_dir("gcrace_store");
    let tier_dir = tmp_dir("gcrace_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    flaky.hold_all();

    let cfg = StoreConfig {
        retain_epochs: 1,
        max_chain: 0, // every epoch a self-contained full base
        ..small_cfg()
    };
    let mut store = DeltaStore::open_with_tier(&store_dir, cfg, flaky.clone(), tier_cfg()).unwrap();
    for e in 1..=5 {
        let s = store.commit(&image(e, 2, e as u8, 1200)).unwrap();
        assert!(s.full);
    }
    // The shipper is wedged inside the held upload: nothing durable,
    // nothing deletable — retain_epochs=1 notwithstanding.
    assert!(store.tier_durable().is_empty());
    assert_eq!(store.epochs(), &[1, 2, 3, 4, 5]);
    for e in 1..=5 {
        assert_eq!(store.load_epoch(e).unwrap(), image(e, 2, e as u8, 1200));
    }

    // Release the tier; once every epoch is durable the next commit's GC
    // applies the configured retention again.
    flaky.release();
    store.tier_flush().unwrap();
    assert_eq!(store.tier_durable(), vec![1, 2, 3, 4, 5]);
    store.commit(&image(6, 2, 6, 1200)).unwrap();
    store.tier_flush().unwrap();
    assert!(
        store.epochs().len() <= 2,
        "durable epochs must be collectable again: {:?}",
        store.epochs()
    );
    assert_eq!(store.load_latest().unwrap(), image(6, 2, 6, 1200));
    drop(store);

    // And the collected epochs live on in the tier: a remote-only
    // restore of the newest epoch works.
    std::fs::remove_dir_all(&store_dir).unwrap();
    let store = DeltaStore::open_with_tier(&store_dir, cfg, flaky, tier_cfg()).unwrap();
    assert_eq!(store.load_latest().unwrap(), image(6, 2, 6, 1200));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn scrubber_heals_a_quarantined_chain_head_from_the_tier() {
    let store_dir = tmp_dir("scrub_store");
    let tier_dir = tmp_dir("scrub_tier");
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    {
        let mut store =
            DeltaStore::open_with_tier(&store_dir, small_cfg(), tier.clone(), tier_cfg()).unwrap();
        for e in 1..=3 {
            store.commit(&image(e, 2, e as u8, 1800)).unwrap();
        }
        store.tier_flush().unwrap();
    }
    // Rot the chain head's manifest on disk; a plain (tier-less) open
    // quarantines it exactly as PR 4 shipped.
    let head_manifest = store_dir.join("epoch_000003").join("manifest.bin");
    let mut buf = std::fs::read(&head_manifest).unwrap();
    let mid = buf.len() / 2;
    buf[mid] ^= 0xFF;
    std::fs::write(&head_manifest, &buf).unwrap();

    let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
    assert_eq!(store.quarantined(), &[3]);
    assert_eq!(store.epochs(), &[1, 2], "fell back to the readable epoch");
    assert!(store_dir.join("epoch_000003.bad").is_dir());

    // The scrubber re-fetches the epoch from the healthy tier, verifies
    // it, and heals the chain in place.
    let report = Scrubber::new(tier.clone()).scrub(&mut store).unwrap();
    assert_eq!(report.healed, vec![3]);
    assert!(report.missing.is_empty());
    assert!(store.quarantined().is_empty(), "quarantine list cleared");
    assert_eq!(store.epochs(), &[1, 2, 3]);
    assert!(!store_dir.join("epoch_000003.bad").exists(), ".bad dropped");
    assert_eq!(store.load_latest().unwrap(), image(3, 2, 3, 1800));

    // Idempotence: a second scrub (and a scrub of a healthy chain) is a
    // verified no-op.
    let again = Scrubber::new(tier).scrub(&mut store).unwrap();
    assert!(
        again.is_noop(),
        "second scrub must change nothing: {again:?}"
    );
    assert_eq!(again.verified, 3);

    // The healed chain keeps working: the next commit extends it.
    let s4 = store.commit(&image(4, 2, 4, 1800)).unwrap();
    assert!(!s4.full, "healed head serves as the delta base");
    assert_eq!(store.load_latest().unwrap(), image(4, 2, 4, 1800));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn scrub_without_a_tier_copy_leaves_the_quarantine_for_forensics() {
    let store_dir = tmp_dir("noheal_store");
    let tier_dir = tmp_dir("noheal_tier");
    {
        let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
        for e in 1..=2 {
            store.commit(&image(e, 2, e as u8, 900)).unwrap();
        }
    }
    let head_manifest = store_dir.join("epoch_000002").join("manifest.bin");
    std::fs::write(&head_manifest, b"garbage").unwrap();
    let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
    assert_eq!(store.quarantined(), &[2]);

    // An empty tier has nothing to heal from: the .bad directory stays.
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    let report = Scrubber::new(tier).scrub(&mut store).unwrap();
    assert_eq!(report.missing, vec![2]);
    assert!(report.healed.is_empty());
    assert!(
        store_dir.join("epoch_000002.bad").is_dir(),
        "kept for forensics"
    );
    assert_eq!(store.quarantined(), &[2]);
    // The fallback chain still restores.
    assert_eq!(store.load_latest().unwrap(), image(1, 2, 1, 900));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn stale_bad_dir_with_a_healthy_live_epoch_is_cleaned() {
    // After a quarantine the chain reuses the epoch number (PR 4
    // behavior), leaving a stale .bad twin behind. Scrub removes it
    // without touching the healthy live epoch.
    let store_dir = tmp_dir("clean_store");
    let tier_dir = tmp_dir("clean_tier");
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    {
        let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
        store.commit(&image(1, 2, 1, 600)).unwrap();
        store.commit(&image(2, 2, 2, 600)).unwrap();
    }
    let head_manifest = store_dir.join("epoch_000002").join("manifest.bin");
    std::fs::write(&head_manifest, b"garbage").unwrap();
    {
        // Quarantine, then recommit epoch 2 with fresh content.
        let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
        assert_eq!(store.quarantined(), &[2]);
        let s = store.commit(&image(2, 2, 9, 600)).unwrap();
        assert_eq!(s.epoch, 2);
    }
    assert!(store_dir.join("epoch_000002.bad").is_dir());

    let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
    let report = Scrubber::new(tier).scrub(&mut store).unwrap();
    assert_eq!(report.cleaned, vec![2]);
    assert!(report.healed.is_empty() && report.missing.is_empty());
    assert!(!store_dir.join("epoch_000002.bad").exists());
    assert_eq!(store.load_latest().unwrap(), image(2, 2, 9, 600));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn missing_base_under_a_current_head_is_hydrated_back() {
    // Partial disk damage: the chain head survives but its *base* epoch
    // directory is lost. The tier-attached open must notice the head's
    // manifest references a missing epoch and pull exactly that epoch
    // back — the local head being current is no excuse to skip repair.
    let store_dir = tmp_dir("basegap_store");
    let tier_dir = tmp_dir("basegap_tier");
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    {
        let mut store =
            DeltaStore::open_with_tier(&store_dir, small_cfg(), tier.clone(), tier_cfg()).unwrap();
        store.commit(&image(1, 2, 1, 2000)).unwrap(); // full base
        store.commit(&image(2, 2, 2, 2000)).unwrap(); // delta on 1
        store.commit(&image(3, 2, 3, 2000)).unwrap(); // delta on 1
        store.tier_flush().unwrap();
    }
    // The base vanishes; the head (epoch 3) is intact and current.
    std::fs::remove_dir_all(store_dir.join("epoch_000001")).unwrap();
    {
        // Without the tier the chain is broken at restore time.
        let broken = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
        assert!(matches!(
            broken.load_latest(),
            Err(StoreError::MissingEpoch { epoch: 1 })
        ));
    }
    let store = DeltaStore::open_with_tier(&store_dir, small_cfg(), tier, tier_cfg()).unwrap();
    assert!(
        store_dir.join("epoch_000001").is_dir(),
        "base hydrated back"
    );
    assert_eq!(store.load_latest().unwrap(), image(3, 2, 3, 2000));
    assert_eq!(store.load_epoch(1).unwrap(), image(1, 2, 1, 2000));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn stale_seal_from_a_quarantined_predecessor_is_reshipped_not_trusted() {
    // Quarantine + epoch-number reuse: the tier still holds the
    // quarantined predecessor's content under the reused number. The
    // reconcile must notice the seal's manifest CRC disagrees with the
    // local epoch, treat it as NOT durable (GC must not delete the only
    // copy of the current content), and re-ship — so a remote-only
    // restore returns the *current* state, never the stale one.
    let store_dir = tmp_dir("staleseal_store");
    let tier_dir = tmp_dir("staleseal_tier");
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    {
        let mut store =
            DeltaStore::open_with_tier(&store_dir, small_cfg(), tier.clone(), tier_cfg()).unwrap();
        store.commit(&image(1, 2, 1, 1200)).unwrap();
        store.commit(&image(2, 2, 0xAA, 1200)).unwrap(); // content A ships
        store.tier_flush().unwrap();
    }
    // Epoch 2's local manifest rots; a tier-less open quarantines it and
    // the next commit reuses number 2 with content B.
    let manifest = store_dir.join("epoch_000002").join("manifest.bin");
    std::fs::write(&manifest, b"garbage").unwrap();
    {
        let mut store = DeltaStore::open_with(&store_dir, small_cfg()).unwrap();
        assert_eq!(store.quarantined(), &[2]);
        let s = store.commit(&image(2, 2, 0xBB, 1200)).unwrap(); // content B
        assert_eq!(s.epoch, 2);
    }
    // Reattach the tier: the stale seal must not count as durable.
    {
        let store =
            DeltaStore::open_with_tier(&store_dir, small_cfg(), tier.clone(), tier_cfg()).unwrap();
        store.tier_flush().unwrap();
        assert_eq!(store.tier_durable(), vec![1, 2]);
        let stats = store.tier_stats().unwrap();
        assert!(
            stats.epochs_shipped >= 1,
            "the mismatched epoch must be re-shipped: {stats:?}"
        );
    }
    // Remote-only restore now returns content B, bit-identically.
    std::fs::remove_dir_all(&store_dir).unwrap();
    let store = DeltaStore::open_with_tier(&store_dir, small_cfg(), tier, tier_cfg()).unwrap();
    assert_eq!(store.load_latest().unwrap(), image(2, 2, 0xBB, 1200));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn background_writer_ships_through_the_tier_end_to_end() {
    // The full async pipeline: StoreWriter commits in the background,
    // the shipper uploads behind it, and a remote-only reopen restores.
    let store_dir = tmp_dir("writer_store");
    let tier_dir = tmp_dir("writer_tier");
    let tier: Arc<dyn ObjectTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    let writer =
        StoreWriter::spawn_with_tier(&store_dir, small_cfg(), tier.clone(), tier_cfg()).unwrap();
    for e in 1..=3 {
        writer.submit(image(e, 3, e as u8, 1400)).unwrap();
    }
    writer.flush().unwrap();
    let (store, stats) = writer.finish().unwrap();
    assert_eq!(stats.len(), 3);
    store.tier_flush().unwrap();
    assert_eq!(store.tier_durable(), vec![1, 2, 3]);
    drop(store);

    std::fs::remove_dir_all(&store_dir).unwrap();
    let store = DeltaStore::open_with_tier(&store_dir, small_cfg(), tier, tier_cfg()).unwrap();
    assert_eq!(store.load_latest().unwrap(), image(3, 3, 3, 1400));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn download_errors_during_hydration_are_retried() {
    let store_dir = tmp_dir("get_retry_store");
    let tier_dir = tmp_dir("get_retry_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x21, 1500)).unwrap();
    store.tier_flush().unwrap();
    drop(store);

    // Remote-only reopen with two transient download failures in the
    // middle of the hydration object sequence: the retrying get path
    // must absorb both.
    std::fs::remove_dir_all(&store_dir).unwrap();
    flaky.script_gets([GetFault::Fail, GetFault::Fail]);
    let hydrated =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    assert_eq!(hydrated.load_latest().unwrap(), image(1, 2, 0x21, 1500));
    assert!(
        flaky.injected() >= 2,
        "both scripted faults fired: {}",
        flaky.injected()
    );
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn torn_seal_download_hides_the_epoch_never_installs_garbage() {
    let store_dir = tmp_dir("get_torn_store");
    let tier_dir = tmp_dir("get_torn_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x31, 1500)).unwrap();
    store.tier_flush().unwrap();
    drop(store);

    // A torn seal download "succeeds" with bad bytes; only its checksum
    // can catch it. The seal sweep must treat the epoch as unsealed —
    // invisible — rather than install anything from it.
    std::fs::remove_dir_all(&store_dir).unwrap();
    flaky.script_gets([GetFault::Torn]);
    let hydrated =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    assert!(
        matches!(hydrated.load_latest(), Err(StoreError::Empty)),
        "a torn seal must hide the epoch, not install garbage"
    );
    drop(hydrated);
    // The fault script is drained; a clean reopen hydrates fully.
    std::fs::remove_dir_all(&store_dir).unwrap();
    let hydrated = DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky, tier_cfg()).unwrap();
    assert_eq!(hydrated.load_latest().unwrap(), image(1, 2, 0x31, 1500));
    std::fs::remove_dir_all(&store_dir).unwrap();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn rotted_tier_object_surfaces_corrupt_not_garbage() {
    let store_dir = tmp_dir("rot_store");
    let tier_dir = tmp_dir("rot_tier");
    let fs: Arc<FsTier> = Arc::new(FsTier::open(&tier_dir).unwrap());
    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), fs.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x51, 1500)).unwrap();
    store.tier_flush().unwrap();
    drop(store);

    // The tier-side blocks object rots (truncated in place): the seal
    // still decodes, so hydration fetches the epoch — and must refuse
    // the payload on the seal's length/CRC verification.
    let mut blocks = fs.get("epoch_000001/blocks.bin").unwrap();
    blocks.pop();
    fs.put("epoch_000001/blocks.bin", &blocks).unwrap();
    std::fs::remove_dir_all(&store_dir).unwrap();
    let err = DeltaStore::open_with_tier(&store_dir, small_cfg(), fs, tier_cfg())
        .map(|_| ())
        .expect_err("a rotted object must not hydrate");
    assert!(
        matches!(err, StoreError::Tier(TierError::Corrupt { .. })),
        "expected Corrupt, got {err:?}"
    );
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}

#[test]
fn unreachable_tier_surfaces_timeout_at_the_retry_deadline() {
    let store_dir = tmp_dir("get_deadline_store");
    let tier_dir = tmp_dir("get_deadline_tier");
    let flaky = Arc::new(FlakyTier::new(Arc::new(FsTier::open(&tier_dir).unwrap())));
    let mut store =
        DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky.clone(), tier_cfg()).unwrap();
    store.commit(&image(1, 2, 0x41, 1500)).unwrap();
    store.tier_flush().unwrap();
    drop(store);

    // Every download fails and the backoff schedule would exceed the
    // configured deadline: the hydration bounds its wall-clock with
    // Timeout instead of sleeping out the whole retry budget.
    std::fs::remove_dir_all(&store_dir).unwrap();
    flaky.script_gets(std::iter::repeat_n(GetFault::Fail, 64));
    let cfg = TierConfig {
        max_attempts: 16,
        backoff: Duration::from_millis(50),
        deadline: Some(Duration::from_millis(5)),
        ..TierConfig::default()
    };
    let err = DeltaStore::open_with_tier(&store_dir, small_cfg(), flaky, cfg)
        .map(|_| ())
        .expect_err("an unreachable tier must not hydrate");
    assert!(
        matches!(err, StoreError::Tier(TierError::Timeout { op: "get", .. })),
        "expected a bounded Timeout, got {err:?}"
    );
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&tier_dir).unwrap();
}
