//! Library-internal object tables: communicators, datatypes, reduction ops,
//! requests.
//!
//! Slot allocation is strictly monotonic (freed slots are never reused).
//! That keeps handle allocation deterministic across ranks and across
//! checkpoint/restart replays — the property MANA's virtual-id replay log
//! relies on.

use std::sync::Arc;

use bytes::Bytes;

use crate::kernels::ElemKind;
use crate::mpih::{self, MpiComm, MpiDatatype, MpiOp, MpiRequest, MpiStatus, MpichResult};

/// A user-defined reduction function (same shape as the standard ABI's
/// `UserOpFn`, declared independently: this library does not know about the
/// standard ABI).
pub type MpichUserFn = fn(invec: &[u8], inoutvec: &mut [u8], elem_size: usize);

/// Cheap-to-clone communicator facts used throughout the library.
#[derive(Debug, Clone)]
pub struct CommInfo {
    /// Context-id base: point-to-point traffic uses `ctx_base`, collective
    /// traffic `ctx_base + 1` (the MPICH context-id pairing trick).
    pub ctx_base: u64,
    /// Members: index = communicator rank, value = world (fabric) rank.
    pub ranks: Arc<Vec<usize>>,
    /// This process's rank within the communicator.
    pub my_rank: i32,
}

impl CommInfo {
    /// Communicator size.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of a communicator rank, validating range.
    pub fn world_of(&self, comm_rank: i32) -> MpichResult<usize> {
        usize::try_from(comm_rank)
            .ok()
            .and_then(|r| self.ranks.get(r).copied())
            .ok_or(mpih::MPI_ERR_RANK)
    }

    /// Communicator rank of a world rank, if a member.
    pub fn comm_rank_of_world(&self, world: usize) -> Option<i32> {
        self.ranks
            .iter()
            .position(|&w| w == world)
            .map(|p| p as i32)
    }

    /// The point-to-point context id.
    pub fn p2p_ctx(&self) -> u64 {
        self.ctx_base
    }

    /// The collective context id.
    pub fn coll_ctx(&self) -> u64 {
        self.ctx_base + 1
    }
}

/// A derived datatype record.
#[derive(Debug, Clone)]
pub struct DerivedType {
    /// Total size in bytes of one element of the derived type.
    pub size: usize,
    /// Element kind when reductions are meaningful (contiguous of builtin).
    pub elem: Option<ElemKind>,
    /// Whether `MPI_Type_commit` has been called.
    pub committed: bool,
}

/// A reduction-op record (only user-defined ops live in the table; builtins
/// are recognized by handle value).
pub struct UserOp {
    /// The combining function.
    pub func: MpichUserFn,
    /// Whether the op is commutative.
    pub commute: bool,
}

/// Nonblocking-request state.
pub enum RequestObj {
    /// An eager send: complete at post time.
    SendDone,
    /// A receive that has not yet matched.
    RecvPending {
        /// Context id to match.
        ctx_id: u64,
        /// Source selector: communicator members, or any.
        src_world: Option<usize>,
        /// Tag selector (`None` = any tag).
        tag: Option<i32>,
        /// Posted buffer capacity in bytes.
        max_bytes: usize,
        /// The communicator's member list (for status source translation).
        ranks: Arc<Vec<usize>>,
    },
    /// A receive completed early (matched while progressing another call).
    RecvDone {
        /// Completed status.
        status: MpiStatus,
        /// Received payload.
        payload: Bytes,
    },
}

/// All object tables of one library instance (one per rank).
pub struct Tables {
    comms: Vec<Option<CommInfo>>,
    dtypes: Vec<Option<DerivedType>>,
    ops: Vec<Option<UserOp>>,
    requests: Vec<Option<RequestObj>>,
}

impl Tables {
    /// Create tables with `MPI_COMM_WORLD` (slot 0) and `MPI_COMM_SELF`
    /// (slot 1) installed.
    pub fn new(world_size: usize, my_world_rank: usize) -> Tables {
        let world = CommInfo {
            ctx_base: 0,
            ranks: Arc::new((0..world_size).collect()),
            my_rank: my_world_rank as i32,
        };
        let selfc = CommInfo {
            ctx_base: 2,
            ranks: Arc::new(vec![my_world_rank]),
            my_rank: 0,
        };
        Tables {
            comms: vec![Some(world), Some(selfc)],
            dtypes: Vec::new(),
            ops: Vec::new(),
            requests: Vec::new(),
        }
    }

    // ---- communicators -------------------------------------------------

    /// Resolve a native communicator handle.
    pub fn comm(&self, comm: MpiComm) -> MpichResult<&CommInfo> {
        let slot = match comm {
            mpih::MPI_COMM_WORLD => 0,
            mpih::MPI_COMM_SELF => 1,
            c if (c as u32) & 0xFF00_0000 == mpih::DYN_COMM_BASE as u32 => {
                ((c as u32) & 0x00FF_FFFF) as usize
            }
            _ => return Err(mpih::MPI_ERR_COMM),
        };
        self.comms
            .get(slot)
            .and_then(|o| o.as_ref())
            .ok_or(mpih::MPI_ERR_COMM)
    }

    /// Install a new communicator; returns its native handle.
    pub fn add_comm(&mut self, info: CommInfo) -> MpiComm {
        let slot = self.comms.len();
        assert!(
            (2..0x00FF_FFFF).contains(&slot),
            "communicator table exhausted"
        );
        self.comms.push(Some(info));
        mpih::DYN_COMM_BASE | slot as i32
    }

    /// Free a dynamic communicator (predefined comms cannot be freed).
    pub fn free_comm(&mut self, comm: MpiComm) -> MpichResult<()> {
        if comm == mpih::MPI_COMM_WORLD || comm == mpih::MPI_COMM_SELF {
            return Err(mpih::MPI_ERR_COMM);
        }
        let slot = if (comm as u32) & 0xFF00_0000 == mpih::DYN_COMM_BASE as u32 {
            ((comm as u32) & 0x00FF_FFFF) as usize
        } else {
            return Err(mpih::MPI_ERR_COMM);
        };
        match self.comms.get_mut(slot) {
            Some(entry @ Some(_)) => {
                *entry = None;
                Ok(())
            }
            _ => Err(mpih::MPI_ERR_COMM),
        }
    }

    // ---- datatypes ------------------------------------------------------

    /// Size in bytes of one element of `dt` (builtin or derived).
    pub fn type_size(&self, dt: MpiDatatype) -> MpichResult<usize> {
        if mpih::PREDEFINED_DATATYPES.contains(&dt) {
            return Ok(mpih::builtin_type_size(dt));
        }
        self.derived(dt).map(|d| d.size)
    }

    /// Element kind for reductions: builtin kinds directly, or the base
    /// kind of a contiguous derived type.
    pub fn elem_kind(&self, dt: MpiDatatype) -> MpichResult<ElemKind> {
        if let Some(kind) = ElemKind::of_builtin(dt) {
            return Ok(kind);
        }
        self.derived(dt)?.elem.ok_or(mpih::MPI_ERR_TYPE)
    }

    /// Resolve a derived datatype handle.
    pub fn derived(&self, dt: MpiDatatype) -> MpichResult<&DerivedType> {
        let slot = self.derived_slot(dt)?;
        self.dtypes
            .get(slot)
            .and_then(|o| o.as_ref())
            .ok_or(mpih::MPI_ERR_TYPE)
    }

    fn derived_slot(&self, dt: MpiDatatype) -> MpichResult<usize> {
        if (dt as u32) & 0xFF00_0000 == mpih::DYN_TYPE_BASE as u32 {
            Ok(((dt as u32) & 0x00FF_FFFF) as usize)
        } else {
            Err(mpih::MPI_ERR_TYPE)
        }
    }

    /// Install a derived datatype; returns its native handle.
    pub fn add_derived(&mut self, d: DerivedType) -> MpiDatatype {
        let slot = self.dtypes.len();
        assert!(slot < 0x00FF_FFFF, "datatype table exhausted");
        self.dtypes.push(Some(d));
        mpih::DYN_TYPE_BASE | slot as i32
    }

    /// Mark a derived type committed.
    pub fn commit_type(&mut self, dt: MpiDatatype) -> MpichResult<()> {
        let slot = self.derived_slot(dt)?;
        match self.dtypes.get_mut(slot).and_then(|o| o.as_mut()) {
            Some(d) => {
                d.committed = true;
                Ok(())
            }
            None => Err(mpih::MPI_ERR_TYPE),
        }
    }

    /// Free a derived type.
    pub fn free_type(&mut self, dt: MpiDatatype) -> MpichResult<()> {
        let slot = self.derived_slot(dt)?;
        match self.dtypes.get_mut(slot) {
            Some(entry @ Some(_)) => {
                *entry = None;
                Ok(())
            }
            _ => Err(mpih::MPI_ERR_TYPE),
        }
    }

    // ---- reduction ops --------------------------------------------------

    /// Whether `op` is one of the predefined reduction handles.
    pub fn is_builtin_op(op: MpiOp) -> bool {
        (mpih::MPI_MAX..=mpih::MPI_BXOR).contains(&op)
    }

    /// Resolve a user-defined op handle.
    pub fn user_op(&self, op: MpiOp) -> MpichResult<&UserOp> {
        if (op as u32) & 0xFF00_0000 != mpih::DYN_OP_BASE as u32 {
            return Err(mpih::MPI_ERR_OP);
        }
        let slot = ((op as u32) & 0x00FF_FFFF) as usize;
        self.ops
            .get(slot)
            .and_then(|o| o.as_ref())
            .ok_or(mpih::MPI_ERR_OP)
    }

    /// Install a user-defined op; returns its native handle.
    pub fn add_user_op(&mut self, op: UserOp) -> MpiOp {
        let slot = self.ops.len();
        assert!(slot < 0x00FF_FFFF, "op table exhausted");
        self.ops.push(Some(op));
        mpih::DYN_OP_BASE | slot as i32
    }

    /// Free a user-defined op.
    pub fn free_op(&mut self, op: MpiOp) -> MpichResult<()> {
        if (op as u32) & 0xFF00_0000 != mpih::DYN_OP_BASE as u32 {
            return Err(mpih::MPI_ERR_OP);
        }
        let slot = ((op as u32) & 0x00FF_FFFF) as usize;
        match self.ops.get_mut(slot) {
            Some(entry @ Some(_)) => {
                *entry = None;
                Ok(())
            }
            _ => Err(mpih::MPI_ERR_OP),
        }
    }

    // ---- requests --------------------------------------------------------

    /// Install a request; returns its native handle.
    pub fn add_request(&mut self, r: RequestObj) -> MpiRequest {
        let slot = self.requests.len();
        assert!(slot < 0x00FF_FFFE, "request table exhausted");
        self.requests.push(Some(r));
        mpih::DYN_REQUEST_BASE | (slot + 1) as i32
    }

    /// Take a request out of the table (it completes exactly once).
    pub fn take_request(&mut self, req: MpiRequest) -> MpichResult<RequestObj> {
        let slot = self.request_slot(req)?;
        self.requests
            .get_mut(slot)
            .and_then(|o| o.take())
            .ok_or(mpih::MPI_ERR_REQUEST)
    }

    /// Put a still-pending request back (used by `test` on no-completion).
    pub fn put_back_request(&mut self, req: MpiRequest, r: RequestObj) -> MpichResult<()> {
        let slot = self.request_slot(req)?;
        match self.requests.get_mut(slot) {
            Some(entry @ None) => {
                *entry = Some(r);
                Ok(())
            }
            _ => Err(mpih::MPI_ERR_REQUEST),
        }
    }

    fn request_slot(&self, req: MpiRequest) -> MpichResult<usize> {
        if req == mpih::MPI_REQUEST_NULL {
            return Err(mpih::MPI_ERR_REQUEST);
        }
        if (req as u32) & 0xFF00_0000 == mpih::DYN_REQUEST_BASE as u32 {
            let slot = ((req as u32) & 0x00FF_FFFF) as usize;
            if slot == 0 {
                return Err(mpih::MPI_ERR_REQUEST);
            }
            Ok(slot - 1)
        } else {
            Err(mpih::MPI_ERR_REQUEST)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_and_self_preinstalled() {
        let t = Tables::new(8, 3);
        let w = t.comm(mpih::MPI_COMM_WORLD).unwrap();
        assert_eq!(w.size(), 8);
        assert_eq!(w.my_rank, 3);
        assert_eq!(w.p2p_ctx(), 0);
        assert_eq!(w.coll_ctx(), 1);
        let s = t.comm(mpih::MPI_COMM_SELF).unwrap();
        assert_eq!(s.size(), 1);
        assert_eq!(s.my_rank, 0);
        assert!(t.comm(mpih::MPI_COMM_NULL).is_err());
        assert!(t.comm(0x1234_5678).is_err());
    }

    #[test]
    fn comm_info_rank_translation() {
        let info = CommInfo {
            ctx_base: 4,
            ranks: Arc::new(vec![5, 9, 2]),
            my_rank: 1,
        };
        assert_eq!(info.world_of(0).unwrap(), 5);
        assert_eq!(info.world_of(2).unwrap(), 2);
        assert!(info.world_of(3).is_err());
        assert!(info.world_of(-1).is_err());
        assert_eq!(info.comm_rank_of_world(9), Some(1));
        assert_eq!(info.comm_rank_of_world(7), None);
    }

    #[test]
    fn dynamic_comm_lifecycle() {
        let mut t = Tables::new(4, 0);
        let info = CommInfo {
            ctx_base: 4,
            ranks: Arc::new(vec![0, 1]),
            my_rank: 0,
        };
        let h = t.add_comm(info);
        assert_eq!((h as u32) & 0xFF00_0000, mpih::DYN_COMM_BASE as u32);
        assert_eq!(t.comm(h).unwrap().size(), 2);
        t.free_comm(h).unwrap();
        assert!(t.comm(h).is_err());
        assert_eq!(t.free_comm(h), Err(mpih::MPI_ERR_COMM));
        assert_eq!(t.free_comm(mpih::MPI_COMM_WORLD), Err(mpih::MPI_ERR_COMM));
    }

    #[test]
    fn slots_are_not_reused_after_free() {
        let mut t = Tables::new(4, 0);
        let a = t.add_comm(CommInfo {
            ctx_base: 4,
            ranks: Arc::new(vec![0]),
            my_rank: 0,
        });
        t.free_comm(a).unwrap();
        let b = t.add_comm(CommInfo {
            ctx_base: 6,
            ranks: Arc::new(vec![0]),
            my_rank: 0,
        });
        assert_ne!(a, b, "freed slots must not be recycled (determinism)");
    }

    #[test]
    fn datatype_sizes_builtin_and_derived() {
        let mut t = Tables::new(2, 0);
        assert_eq!(t.type_size(mpih::MPI_DOUBLE).unwrap(), 8);
        let h = t.add_derived(DerivedType {
            size: 24,
            elem: Some(ElemKind::Float(8)),
            committed: false,
        });
        assert_eq!(t.type_size(h).unwrap(), 24);
        assert!(!t.derived(h).unwrap().committed);
        t.commit_type(h).unwrap();
        assert!(t.derived(h).unwrap().committed);
        t.free_type(h).unwrap();
        assert!(t.type_size(h).is_err());
        assert!(t.type_size(0x7777).is_err());
    }

    #[test]
    fn elem_kind_through_contiguous() {
        let mut t = Tables::new(2, 0);
        assert_eq!(t.elem_kind(mpih::MPI_INT).unwrap(), ElemKind::Int(4));
        let h = t.add_derived(DerivedType {
            size: 32,
            elem: Some(ElemKind::Float(8)),
            committed: true,
        });
        assert_eq!(t.elem_kind(h).unwrap(), ElemKind::Float(8));
        let opaque = t.add_derived(DerivedType {
            size: 3,
            elem: None,
            committed: true,
        });
        assert_eq!(t.elem_kind(opaque), Err(mpih::MPI_ERR_TYPE));
    }

    #[test]
    fn op_table() {
        fn my_op(a: &[u8], b: &mut [u8], _s: usize) {
            for (x, y) in a.iter().zip(b.iter_mut()) {
                *y ^= x;
            }
        }
        let mut t = Tables::new(2, 0);
        assert!(Tables::is_builtin_op(mpih::MPI_SUM));
        assert!(!Tables::is_builtin_op(mpih::MPI_OP_NULL));
        let h = t.add_user_op(UserOp {
            func: my_op,
            commute: true,
        });
        assert!(t.user_op(h).unwrap().commute);
        assert!(t.user_op(mpih::MPI_SUM).is_err());
        t.free_op(h).unwrap();
        assert!(t.user_op(h).is_err());
    }

    #[test]
    fn request_take_and_put_back() {
        let mut t = Tables::new(2, 0);
        let h = t.add_request(RequestObj::SendDone);
        assert_ne!(h, mpih::MPI_REQUEST_NULL);
        let obj = t.take_request(h).unwrap();
        assert!(matches!(obj, RequestObj::SendDone));
        // Double-complete is an error.
        assert!(t.take_request(h).is_err());
        // Put back then take again.
        t.put_back_request(h, RequestObj::SendDone).unwrap();
        assert!(t.take_request(h).is_ok());
        assert!(t.take_request(mpih::MPI_REQUEST_NULL).is_err());
    }
}
