//! Standardized predefined datatypes.
//!
//! The ABI fixes the handle values of the predefined datatypes and their
//! sizes, so a binary compiled against the standard `mpi.h` can pass
//! `MPI_DOUBLE` to any compliant library. (Datatype handle translation is
//! one of the concrete problem areas Hammond et al. report from building
//! Mukautuva; the `muk` crate has a table-driven translator for exactly
//! this reason.)

use crate::handle::{Handle, HandleKind};

/// The predefined datatypes of the standard ABI.
///
/// Derived datatypes (contiguous, etc.) are library-created objects and get
/// dynamic handles; this enum covers the predefined set, which is what the
/// workloads in the paper's evaluation use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// Untyped bytes (`MPI_BYTE`).
    Byte,
    /// `MPI_CHAR` (1 byte).
    Char,
    /// `MPI_INT8_T`.
    Int8,
    /// `MPI_UINT8_T`.
    Uint8,
    /// `MPI_INT16_T`.
    Int16,
    /// `MPI_UINT16_T`.
    Uint16,
    /// `MPI_INT32_T` / `MPI_INT` on LP64.
    Int32,
    /// `MPI_UINT32_T`.
    Uint32,
    /// `MPI_INT64_T` / `MPI_LONG` on LP64.
    Int64,
    /// `MPI_UINT64_T`.
    Uint64,
    /// `MPI_FLOAT`.
    Float,
    /// `MPI_DOUBLE`.
    Double,
}

impl Datatype {
    /// All predefined datatypes, in ABI index order.
    pub const ALL: [Datatype; 12] = [
        Datatype::Byte,
        Datatype::Char,
        Datatype::Int8,
        Datatype::Uint8,
        Datatype::Int16,
        Datatype::Uint16,
        Datatype::Int32,
        Datatype::Uint32,
        Datatype::Int64,
        Datatype::Uint64,
        Datatype::Float,
        Datatype::Double,
    ];

    /// The ABI handle index for this datatype (1-based; 0 is
    /// `MPI_DATATYPE_NULL`).
    pub const fn abi_index(self) -> u32 {
        match self {
            Datatype::Byte => 1,
            Datatype::Char => 2,
            Datatype::Int8 => 3,
            Datatype::Uint8 => 4,
            Datatype::Int16 => 5,
            Datatype::Uint16 => 6,
            Datatype::Int32 => 7,
            Datatype::Uint32 => 8,
            Datatype::Int64 => 9,
            Datatype::Uint64 => 10,
            Datatype::Float => 11,
            Datatype::Double => 12,
        }
    }

    /// The standardized handle value.
    pub const fn handle(self) -> Handle {
        Handle::predefined(HandleKind::Datatype, self.abi_index())
    }

    /// Recover the datatype from a standardized handle, if predefined.
    pub fn from_handle(h: Handle) -> Option<Datatype> {
        if h.kind() != HandleKind::Datatype {
            return None;
        }
        Datatype::ALL
            .into_iter()
            .find(|d| d.abi_index() == h.index())
    }

    /// Size in bytes of one element.
    pub const fn size(self) -> usize {
        match self {
            Datatype::Byte | Datatype::Char | Datatype::Int8 | Datatype::Uint8 => 1,
            Datatype::Int16 | Datatype::Uint16 => 2,
            Datatype::Int32 | Datatype::Uint32 | Datatype::Float => 4,
            Datatype::Int64 | Datatype::Uint64 | Datatype::Double => 8,
        }
    }

    /// Total buffer length in bytes for `count` elements.
    pub const fn extent(self, count: usize) -> usize {
        self.size() * count
    }

    /// Whether reduction arithmetic is defined for this type
    /// (true for all numeric types; `Byte`/`Char` support only bitwise ops).
    pub const fn is_numeric(self) -> bool {
        !matches!(self, Datatype::Byte | Datatype::Char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_round_trip() {
        for d in Datatype::ALL {
            assert_eq!(Datatype::from_handle(d.handle()), Some(d));
            assert!(d.handle().is_predefined());
        }
    }

    #[test]
    fn null_and_foreign_handles_rejected() {
        assert_eq!(Datatype::from_handle(Handle::DATATYPE_NULL), None);
        assert_eq!(Datatype::from_handle(Handle::COMM_WORLD), None);
        assert_eq!(
            Datatype::from_handle(Handle::dynamic(HandleKind::Datatype, 0x1001)),
            None
        );
    }

    #[test]
    fn sizes_match_rust_layouts() {
        assert_eq!(Datatype::Double.size(), std::mem::size_of::<f64>());
        assert_eq!(Datatype::Float.size(), std::mem::size_of::<f32>());
        assert_eq!(Datatype::Int32.size(), std::mem::size_of::<i32>());
        assert_eq!(Datatype::Int64.size(), std::mem::size_of::<i64>());
        assert_eq!(Datatype::Byte.size(), 1);
    }

    #[test]
    fn abi_indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in Datatype::ALL {
            assert!(seen.insert(d.abi_index()), "duplicate abi index for {d:?}");
            assert_ne!(d.abi_index(), 0, "index 0 is DATATYPE_NULL");
        }
    }

    #[test]
    fn extent_multiplies() {
        assert_eq!(Datatype::Double.extent(10), 80);
        assert_eq!(Datatype::Byte.extent(10), 10);
    }
}
