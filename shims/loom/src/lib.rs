//! Offline, API-compatible subset of the [`loom`] model checker.
//!
//! [`model`] runs a closure under **every** thread interleaving the
//! schedule bounds admit: threads spawned with [`thread::spawn`] are
//! real OS threads, but a token-passing scheduler lets exactly one run
//! at a time and inserts a *scheduling point* at every visible
//! operation ([`sync::Mutex`] lock/unlock, every [`sync::atomic`] op,
//! spawn, join, [`thread::yield_now`]). At each point where more than
//! one thread could proceed, the choice is recorded on a path; when an
//! execution finishes, the last not-yet-exhausted choice is advanced
//! and the closure re-runs. The search is a plain DFS over those paths,
//! so for the small protocol models this shim targets (two or three
//! threads, a dozen operations) it is exhaustive.
//!
//! Scope, honestly stated:
//!
//! * **Sequential consistency only.** Every atomic op behaves `SeqCst`
//!   regardless of the `Ordering` passed; the weak-memory reorderings
//!   real loom models are not explored. The protocols under test here
//!   (the telemetry seqlock, the store's mux-lane cursor) are written
//!   with `SeqCst` ops, so SC exploration matches what ships.
//! * **Deadlocks are detected**: if every unfinished thread is blocked,
//!   the execution fails with the offending schedule path.
//! * **Panics propagate**: an assertion failure in any thread aborts
//!   the run and re-panics on the caller with the schedule path that
//!   produced it, so a failing interleaving is reproducible by eye.
//! * Bounds ([`Bounds`]) cap threads per execution, scheduling branches
//!   per execution, and total executions. Exceeding a bound is a
//!   *failure*, not a truncation — a model that outgrows its bounds no
//!   longer proves anything, and says so.
//!
//! [`loom`]: https://docs.rs/loom

use std::sync::Arc;

mod rt;

pub mod sync;
pub mod thread;

pub use rt::Bounds;

/// Exhaustively explore every interleaving of `f` under the default
/// [`Bounds`]. Panics (with the schedule path) on the first failing
/// interleaving: assertion failure, deadlock, or exceeded bound.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Bounds::default(), f)
}

/// [`model`] with explicit bounds.
pub fn model_with<F>(bounds: Bounds, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::explore(bounds, Arc::new(f));
}
