//! Unified observability for sessions.
//!
//! The flight recorder itself lives in [`simnet::telemetry`] (the layer
//! that owns the virtual clock); this module re-exports it and adds the
//! session-level [`TelemetrySnapshot`], which unifies the recorder's
//! event/metric state with the per-subsystem statistics the run
//! produced — the delta store's [`EpochStats`], the remote tier's
//! [`TierStats`] and the replicated coordinator's [`ReplicaStats`] —
//! behind one [`crate::Session::telemetry`] call.
//!
//! See `docs/observability.md` for the event taxonomy, the crash-dump
//! timeline formats and how to open them.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dmtcp_sim::{EpochStats, ReplicaStats, TierStats};

pub use simnet::telemetry::{
    Counter, Event, EventKind, Gauge, Histogram, MetricValue, MetricsRegistry, Telemetry,
    TelemetryConfig,
};

/// Everything one run recorded, in one place: the flight recorder
/// (events + metrics registry) plus the statistics of every attached
/// subsystem. Returned by [`crate::Session::telemetry`] after a launch,
/// restore, or resilient run; cheap to clone (the recorder is shared).
#[derive(Clone)]
pub struct TelemetrySnapshot {
    /// The run's flight recorder: merged event timeline, metrics
    /// registry, per-kind emitted counters, incident count.
    pub recorder: Arc<Telemetry>,
    /// Per-epoch delta-store commit statistics, in commit order (empty
    /// when the session attached no store).
    pub epochs: Vec<EpochStats>,
    /// Remote-tier shipping statistics (`None` when the session attached
    /// no tier).
    pub tier: Option<TierStats>,
    /// Replica-group statistics (`None` when the session attached no
    /// replicated coordinator).
    pub replica: Option<ReplicaStats>,
    /// Where the end-of-run crash-dump timeline was written, if the run
    /// recorded incidents (or failed) and a dump directory was
    /// configured. Points at the `flight.jsonl` file; the Chrome
    /// `flight.trace.json` sits next to it.
    pub dump: Option<PathBuf>,
}

impl TelemetrySnapshot {
    /// The merged event timeline, ordered by virtual clock (then wall
    /// clock, lane, ticket).
    pub fn events(&self) -> Vec<Event> {
        self.recorder.events()
    }

    /// A point-in-time copy of every registered metric.
    pub fn metrics(&self) -> BTreeMap<String, MetricValue> {
        self.recorder.metrics().snapshot()
    }

    /// How many events of `kind` the run emitted — counted at emit time,
    /// so the number survives ring wrap.
    pub fn emitted(&self, kind: EventKind) -> u64 {
        self.recorder.emitted(kind)
    }

    /// Total events emitted across all kinds.
    pub fn emitted_total(&self) -> u64 {
        self.recorder.emitted_total()
    }

    /// Per-kind emit counts, in kind order, zero entries omitted.
    pub fn emitted_by_kind(&self) -> Vec<(EventKind, u64)> {
        self.recorder.emitted_by_kind()
    }

    /// How many incidents (recovery elections, quorum losses, sink
    /// errors, failed tier ships, rank unwinds) the run recorded.
    pub fn incidents(&self) -> u64 {
        self.recorder.incidents()
    }

    /// Write the merged timeline under `dir` regardless of the one-shot
    /// end-of-run dump (post-mortem export of a healthy run). Returns
    /// the `flight.jsonl` path.
    pub fn write_dump(&self, dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
        self.recorder.write_dump(dir, reason)
    }
}

impl fmt::Debug for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetrySnapshot")
            .field("events", &self.recorder.emitted_total())
            .field("incidents", &self.recorder.incidents())
            .field("epochs", &self.epochs.len())
            .field("tier", &self.tier)
            .field("replica", &self.replica)
            .field("dump", &self.dump)
            .finish()
    }
}
