//! Standardized opaque handles.
//!
//! The ABI working group's central design question is how `MPI_Comm` and
//! friends are represented in memory, since MPICH uses `int` handles and
//! Open MPI uses pointers. The standard ABI resolves this with a fixed-width
//! opaque integer whose *values* are standardized for predefined objects.
//!
//! Our encoding (documented so the shim and checkpointer can rely on it):
//!
//! ```text
//!  63            56 55                32 31                             0
//! ┌────────────────┬────────────────────┬────────────────────────────────┐
//! │ kind tag (u8)  │ flags (reserved)   │ object index (u32)             │
//! └────────────────┴────────────────────┴────────────────────────────────┘
//! ```
//!
//! * Predefined objects have index < [`Handle::FIRST_DYNAMIC_INDEX`].
//! * `Handle(0)` is the universal null handle (`MPI_*_NULL` for every kind
//!   compares equal to it after masking the kind tag; kind-specific nulls
//!   use index 0 with the kind tag set).

use std::fmt;

/// What kind of MPI object a handle names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum HandleKind {
    /// An invalid/unknown handle.
    Invalid = 0x00,
    /// Communicator.
    Comm = 0x01,
    /// Process group.
    Group = 0x02,
    /// Datatype.
    Datatype = 0x03,
    /// Reduction operation.
    Op = 0x04,
    /// Nonblocking-operation request.
    Request = 0x05,
    /// Error handler.
    Errhandler = 0x06,
}

impl HandleKind {
    /// All meaningful kinds (excludes `Invalid`).
    pub const ALL: [HandleKind; 6] = [
        HandleKind::Comm,
        HandleKind::Group,
        HandleKind::Datatype,
        HandleKind::Op,
        HandleKind::Request,
        HandleKind::Errhandler,
    ];

    fn from_tag(tag: u8) -> HandleKind {
        match tag {
            0x01 => HandleKind::Comm,
            0x02 => HandleKind::Group,
            0x03 => HandleKind::Datatype,
            0x04 => HandleKind::Op,
            0x05 => HandleKind::Request,
            0x06 => HandleKind::Errhandler,
            _ => HandleKind::Invalid,
        }
    }
}

/// A standardized 64-bit opaque MPI handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Handle(pub u64);

impl Handle {
    /// Dynamic (library-created) objects get indices from here up;
    /// everything below is reserved for predefined objects.
    pub const FIRST_DYNAMIC_INDEX: u32 = 0x1000;

    /// The absolute null handle.
    pub const NULL: Handle = Handle(0);

    // ---- Predefined communicators -------------------------------------

    /// `MPI_COMM_NULL`.
    pub const COMM_NULL: Handle = Handle::predefined(HandleKind::Comm, 0);
    /// `MPI_COMM_WORLD`.
    pub const COMM_WORLD: Handle = Handle::predefined(HandleKind::Comm, 1);
    /// `MPI_COMM_SELF`.
    pub const COMM_SELF: Handle = Handle::predefined(HandleKind::Comm, 2);

    // ---- Predefined requests -------------------------------------------

    /// `MPI_REQUEST_NULL`.
    pub const REQUEST_NULL: Handle = Handle::predefined(HandleKind::Request, 0);

    // ---- Predefined ops (values mirrored in [`crate::op`]) -------------

    /// `MPI_OP_NULL`.
    pub const OP_NULL: Handle = Handle::predefined(HandleKind::Op, 0);

    // ---- Predefined datatypes (values mirrored in [`crate::datatype`]) -

    /// `MPI_DATATYPE_NULL`.
    pub const DATATYPE_NULL: Handle = Handle::predefined(HandleKind::Datatype, 0);

    /// Build a predefined handle (const-friendly).
    pub const fn predefined(kind: HandleKind, index: u32) -> Handle {
        Handle(((kind as u64) << 56) | index as u64)
    }

    /// Build a dynamic handle for a library-created object.
    ///
    /// # Panics
    /// If `slot` collides with the predefined range.
    pub fn dynamic(kind: HandleKind, slot: u32) -> Handle {
        assert!(
            slot >= Self::FIRST_DYNAMIC_INDEX,
            "dynamic handle slot {slot:#x} collides with predefined range"
        );
        Handle(((kind as u64) << 56) | slot as u64)
    }

    /// The kind tag.
    pub fn kind(self) -> HandleKind {
        HandleKind::from_tag((self.0 >> 56) as u8)
    }

    /// The object index within its kind.
    pub fn index(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// Whether this is a predefined object of its kind.
    pub fn is_predefined(self) -> bool {
        self.kind() != HandleKind::Invalid && self.index() < Self::FIRST_DYNAMIC_INDEX
    }

    /// Whether this is the null handle of its kind (index 0) or the
    /// absolute null.
    pub fn is_null(self) -> bool {
        self.index() == 0
    }

    /// Raw 64-bit value (what would cross a C ABI boundary).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstruct from a raw 64-bit value.
    pub const fn from_raw(raw: u64) -> Handle {
        Handle(raw)
    }

    /// Check that the handle has the expected kind and is non-null.
    pub fn expect_kind(self, kind: HandleKind) -> Result<Handle, crate::error::AbiError> {
        if self.kind() != kind || self.is_null() {
            Err(crate::error::AbiError::for_kind(kind))
        } else {
            Ok(self)
        }
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}#{}{}",
            self.kind(),
            self.index(),
            if self.is_predefined() { "*" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_values_are_fixed() {
        // These exact numeric values are the ABI contract: they must never
        // change, or previously "compiled" applications would break.
        assert_eq!(Handle::COMM_WORLD.raw(), 0x0100_0000_0000_0001);
        assert_eq!(Handle::COMM_SELF.raw(), 0x0100_0000_0000_0002);
        assert_eq!(Handle::COMM_NULL.raw(), 0x0100_0000_0000_0000);
        assert_eq!(Handle::REQUEST_NULL.raw(), 0x0500_0000_0000_0000);
    }

    #[test]
    fn kind_and_index_round_trip() {
        for kind in HandleKind::ALL {
            let h = Handle::predefined(kind, 7);
            assert_eq!(h.kind(), kind);
            assert_eq!(h.index(), 7);
            assert!(h.is_predefined());
            let d = Handle::dynamic(kind, 0x2000);
            assert_eq!(d.kind(), kind);
            assert_eq!(d.index(), 0x2000);
            assert!(!d.is_predefined());
        }
    }

    #[test]
    fn null_detection() {
        assert!(Handle::NULL.is_null());
        assert!(Handle::COMM_NULL.is_null());
        assert!(!Handle::COMM_WORLD.is_null());
    }

    #[test]
    #[should_panic(expected = "collides with predefined range")]
    fn dynamic_slot_in_predefined_range_panics() {
        let _ = Handle::dynamic(HandleKind::Comm, 3);
    }

    #[test]
    fn expect_kind_accepts_and_rejects() {
        assert!(Handle::COMM_WORLD.expect_kind(HandleKind::Comm).is_ok());
        assert!(Handle::COMM_WORLD
            .expect_kind(HandleKind::Datatype)
            .is_err());
        assert!(Handle::COMM_NULL.expect_kind(HandleKind::Comm).is_err());
    }

    #[test]
    fn raw_round_trip() {
        let h = Handle::dynamic(HandleKind::Request, 0x1234);
        assert_eq!(Handle::from_raw(h.raw()), h);
    }

    #[test]
    fn debug_format_is_readable() {
        assert_eq!(format!("{:?}", Handle::COMM_WORLD), "Comm#1*");
        assert_eq!(
            format!("{:?}", Handle::dynamic(HandleKind::Op, 0x1001)),
            "Op#4097"
        );
    }
}
