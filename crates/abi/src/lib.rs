//! # mpi-abi — the proposed standard MPI ABI
//!
//! This crate is the Rust analogue of the `mpi.h` being standardized by the
//! MPI Forum's ABI working group for MPI-5 (and prototyped by Mukautuva):
//! it pins down **how MPI data is represented**, not just how functions are
//! called.
//!
//! Everything an "application binary" may depend on lives here and **only**
//! here:
//!
//! * [`Handle`] — 64-bit opaque handles with a fixed, documented encoding
//!   (kind tag in the top byte, predefined objects at fixed values);
//! * [`consts`] — integer constants (`ANY_SOURCE`, `ANY_TAG`, `PROC_NULL`, …)
//!   with standardized values;
//! * [`Datatype`] — predefined datatypes with fixed handle values and sizes;
//! * [`ReduceOp`] — predefined reduction operations with fixed handle values;
//! * [`AbiStatus`] — the standardized status object layout;
//! * [`AbiError`] — standardized error classes and code values;
//! * [`MpiAbi`] — the complete function table (the Rust analogue of the
//!   symbol set an ABI-compliant `libmpi.so` must export).
//!
//! An application written against this crate is "compiled once": it can run
//! over any library that implements [`MpiAbi`] — the Mukautuva-like shim in
//! the `muk` crate implements it over either vendor library, and the
//! MANA-like wrappers in `mana-sim` interpose on it transparently. That is
//! the first leg of the paper's three-legged stool.
//!
//! Vendor libraries (`mpich-sim`, `ompi-sim`) deliberately do **not** use
//! these encodings internally: each has its own incompatible native ABI,
//! which is exactly the problem the standard ABI exists to solve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consts;
pub mod datatype;
pub mod error;
pub mod handle;
pub mod op;
pub mod status;
pub mod traits;
pub mod version;

pub use datatype::Datatype;
pub use error::{AbiError, AbiResult};
pub use handle::{Handle, HandleKind};
pub use op::ReduceOp;
pub use status::AbiStatus;
pub use traits::{MpiAbi, UserOpFn};
pub use version::AbiVersion;
