//! ≥ 512-rank worlds: the striped fabric, the tree-barrier coordinator,
//! and the full vendor stack at scale.
//!
//! These are the integration-level guarantees behind the scale rework:
//! a fail-stop in a 512-rank world must unwind *every* blocked receiver
//! via one condvar cascade (no polling, no stragglers), the tree barrier
//! must complete a 512-rank rendezvous with a uniform cut, and the
//! collectives must still be correct when the world is 10× the paper's
//! testbed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpi_stool::abi::{Handle, ReduceOp};
use mpi_stool::dmtcp::{BarrierTopology, CkptMode, Coordinator, Poll, RankImage};
use mpi_stool::simnet::{ClusterSpec, Fabric, NoiseModel, RankCtx, SimError};
use mpi_stool::stool::{AppCtx, Checkpointer, MpiProgram, Session, StoolResult, Vendor};

fn big_cluster(nranks: usize) -> ClusterSpec {
    ClusterSpec::builder()
        .nodes(nranks / 64)
        .ranks_per_node(64)
        .build()
}

/// 512 blocked receivers; one rank fails. Every survivor must be woken by
/// the condvar cascade and unwind with `PeerFailed`; the victim itself
/// reports `SelfFailed`. No polling exists in the fabric, so a missed
/// wakeup would hang this test — completion *is* the assertion, the
/// counters make it explicit.
#[test]
fn fail_stop_unwinds_all_512_blocked_receivers() {
    let n = 512;
    let victim = 137;
    let spec = Arc::new(big_cluster(n));
    let (fabric, endpoints) = Fabric::new(&spec);
    fabric.enable_failure_detection();

    let peer_failed = AtomicUsize::new(0);
    let self_failed = AtomicUsize::new(0);
    let blocked = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let spec = spec.clone();
            let blocked = blocked.clone();
            let peer_failed = &peer_failed;
            let self_failed = &self_failed;
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn_scoped(s, move || {
                    let ctx =
                        RankCtx::new(rank, spec, ep, NoiseModel::disabled().stream_for_rank(rank));
                    blocked.fetch_add(1, Ordering::SeqCst);
                    match ctx.endpoint().recv_raw() {
                        Err(SimError::PeerFailed { rank: r }) => {
                            assert_eq!(r, victim);
                            peer_failed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SimError::SelfFailed) => {
                            assert_eq!(rank, victim);
                            self_failed.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("rank {rank}: unexpected {other:?}"),
                    }
                })
                .expect("spawn");
        }
        // Inject the failure once every rank is at least at the brink of
        // its blocking receive (they may still be pre-wait: the wakeup
        // must cover both the about-to-sleep and the asleep).
        let fabric = fabric.clone();
        let blocked = blocked.clone();
        s.spawn(move || {
            while blocked.load(Ordering::SeqCst) < n {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            fabric.fail_rank(victim);
        });
    });

    assert_eq!(peer_failed.load(Ordering::SeqCst), n - 1);
    assert_eq!(self_failed.load(Ordering::SeqCst), 1);
}

/// A 512-rank checkpoint rendezvous over the tree barrier: one round,
/// uniform cut, complete image staging.
#[test]
fn tree_barrier_rendezvous_512_ranks_uniform_cut() {
    let n = 512;
    let coord = Coordinator::with_topology(n, BarrierTopology::Tree { radix: 32 });
    coord.request_checkpoint(CkptMode::Continue);
    let cuts = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let cuts = &cuts;
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn_scoped(s, move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0u64;
                    loop {
                        match agent.poll(step).expect("poll") {
                            Poll::None | Poll::KeepRunning => step += 1,
                            Poll::Enter(session) => {
                                let cut = session.cut();
                                let pending =
                                    session.exchange_counters(&zeros, &zeros).expect("exchange");
                                assert!(pending.iter().all(|&p| p == 0));
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("finish");
                                cuts.lock().unwrap().push(cut);
                                break;
                            }
                        }
                    }
                })
                .expect("spawn");
        }
    });
    let cuts = cuts.into_inner().unwrap();
    assert_eq!(cuts.len(), n);
    assert!(cuts.iter().all(|&c| c == cuts[0]), "non-uniform cuts");
    assert_eq!(coord.completed_rounds(), 1);
    let world = coord.take_world_image("scale").expect("all staged");
    assert_eq!(world.nranks(), n);
}

/// The full stack at 512 ranks: an allreduce through vendor engine +
/// shim must still produce the exact closed-form sum on every rank.
struct BigAllreduce;

impl MpiProgram for BigAllreduce {
    fn name(&self) -> &'static str {
        "scale-allreduce-512"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let mine = app.rank() as f64;
        let total = app
            .pmpi()
            .allreduce_f64(mine, ReduceOp::Sum, Handle::COMM_WORLD)?;
        app.mem.set_f64("total", total);
        Ok(())
    }
}

#[test]
fn allreduce_512_ranks_both_vendors() {
    let n = 512usize;
    let expect = (n * (n - 1) / 2) as f64;
    for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
        let out = Session::builder()
            .cluster(big_cluster(n))
            .vendor(vendor)
            .build()
            .expect("session")
            .launch(&BigAllreduce)
            .expect("launch");
        let memories = out.memories().expect("completed");
        assert_eq!(memories.len(), n);
        for (rank, m) in memories.iter().enumerate() {
            let got = m.get_f64("total").expect("total");
            assert!(
                (got - expect).abs() <= 1e-9 * expect,
                "{vendor:?} rank {rank}: {got} != {expect}"
            );
        }
    }
}

/// A policy-driven checkpoint at 512 ranks through the full Session stack
/// (MANA drain + tree-barrier rendezvous + image staging), then keep
/// running to completion.
struct SteppedLoop {
    steps: u64,
}

impl MpiProgram for SteppedLoop {
    fn name(&self) -> &'static str {
        "scale-stepped-loop"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        app.mem.f64s_mut("x", 1);
        for step in app.resume_step()..self.steps {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            app.mem.f64s_mut("x", 1)[0] += 1.0;
        }
        Ok(())
    }
}

#[test]
fn full_stack_checkpoint_at_512_ranks() {
    let n = 512usize;
    let session = Session::builder()
        .cluster(big_cluster(n))
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(2, CkptMode::Continue)
        .build()
        .expect("session");
    let out = session.launch(&SteppedLoop { steps: 4 }).expect("launch");
    assert!(out.is_completed());
    let memories = out.memories().expect("completed");
    assert_eq!(memories.len(), n);
    assert!(memories
        .iter()
        .all(|m| m.f64s("x").expect("segment")[0] == 4.0));
}
