//! The "upper-half memory": the application state a checkpoint captures.
//!
//! MANA saves the upper-half program's writable memory pages. Safe Rust
//! cannot serialize a live stack, so applications in this reproduction keep
//! their evolving state in a [`Memory`] — named, typed segments that the
//! checkpointer can snapshot and restore byte-exactly. The application code
//! path is otherwise unchanged, and a restored run must be bit-identical,
//! which the integration tests verify.

use std::collections::BTreeMap;

use crate::codec::{CodecError, Reader, Writer};

/// One typed segment of application memory.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Signed 64-bit integers.
    I64(Vec<i64>),
    /// Unsigned 64-bit integers.
    U64(Vec<u64>),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Segment {
    fn tag(&self) -> u8 {
        match self {
            Segment::F64(_) => 0,
            Segment::I64(_) => 1,
            Segment::U64(_) => 2,
            Segment::Bytes(_) => 3,
        }
    }

    /// Approximate in-memory size in bytes (for image size accounting).
    pub fn byte_len(&self) -> usize {
        match self {
            Segment::F64(v) => v.len() * 8,
            Segment::I64(v) => v.len() * 8,
            Segment::U64(v) => v.len() * 8,
            Segment::Bytes(v) => v.len(),
        }
    }
}

/// Named, typed application memory. Iteration order is deterministic
/// (BTreeMap), so serialized images are byte-stable.
///
/// Every segment carries a **generation**: a counter drawn from a
/// per-memory monotonic clock, re-stamped each time the segment is
/// handed out mutably (or replaced). The checkpoint path forwards the
/// generation as a *clean-segment hint* to the delta store: a segment
/// whose generation has not moved since the previous epoch provably was
/// not written through this API, so the store can skip chunking and
/// hashing it entirely (see `dmtcp::store`). The tracking is
/// conservative — taking a `*_mut` borrow counts as a write even if the
/// caller never stores through it — so a stale hint can only cause
/// extra hashing, never a stale checkpoint. Generations are run-local:
/// they are not serialized, and restored memories start a fresh clock.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    segments: BTreeMap<String, Segment>,
    /// Generation stamp per segment. Stamps are never reused within one
    /// `Memory` (a removed and re-created segment gets a fresh stamp),
    /// so "same name, same generation" implies "same unmutated data".
    gens: BTreeMap<String, u64>,
    /// The next generation stamp to hand out.
    next_gen: u64,
}

/// Equality is over the segment *contents* only: generations are
/// run-local bookkeeping, and a restored memory must compare equal to
/// the one that was checkpointed.
impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        self.segments == other.segments
    }
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether no segments exist.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total payload bytes across segments.
    pub fn total_bytes(&self) -> usize {
        self.segments.values().map(Segment::byte_len).sum()
    }

    /// Segment names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.segments.keys().map(String::as_str)
    }

    /// Stamp `name` with a fresh generation (any mutable hand-out or
    /// replacement counts as a write).
    fn touch(&mut self, name: &str) {
        self.next_gen += 1;
        self.gens.insert(name.to_string(), self.next_gen);
    }

    /// The segment's current generation, or `None` if it does not exist.
    /// Two equal generations for the same name guarantee the segment was
    /// not mutably accessed in between (the clean-segment hint the
    /// checkpoint path forwards to the delta store).
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.gens.get(name).copied()
    }

    /// Remove a segment.
    pub fn remove(&mut self, name: &str) -> Option<Segment> {
        self.gens.remove(name);
        self.segments.remove(name)
    }

    /// Whether a segment exists.
    pub fn contains(&self, name: &str) -> bool {
        self.segments.contains_key(name)
    }

    /// Get or create an `f64` segment of the given initial length.
    pub fn f64s_mut(&mut self, name: &str, default_len: usize) -> &mut Vec<f64> {
        self.touch(name);
        let seg = self
            .segments
            .entry(name.to_string())
            .or_insert_with(|| Segment::F64(vec![0.0; default_len]));
        match seg {
            Segment::F64(v) => v,
            other => panic!("segment {name:?} is {other:?}, not F64"),
        }
    }

    /// Read-only view of an `f64` segment.
    pub fn f64s(&self, name: &str) -> Option<&[f64]> {
        match self.segments.get(name) {
            Some(Segment::F64(v)) => Some(v),
            _ => None,
        }
    }

    /// Get or create an `i64` segment.
    pub fn i64s_mut(&mut self, name: &str, default_len: usize) -> &mut Vec<i64> {
        self.touch(name);
        let seg = self
            .segments
            .entry(name.to_string())
            .or_insert_with(|| Segment::I64(vec![0; default_len]));
        match seg {
            Segment::I64(v) => v,
            other => panic!("segment {name:?} is {other:?}, not I64"),
        }
    }

    /// Read-only view of an `i64` segment.
    pub fn i64s(&self, name: &str) -> Option<&[i64]> {
        match self.segments.get(name) {
            Some(Segment::I64(v)) => Some(v),
            _ => None,
        }
    }

    /// Get or create a `u64` segment.
    pub fn u64s_mut(&mut self, name: &str, default_len: usize) -> &mut Vec<u64> {
        self.touch(name);
        let seg = self
            .segments
            .entry(name.to_string())
            .or_insert_with(|| Segment::U64(vec![0; default_len]));
        match seg {
            Segment::U64(v) => v,
            other => panic!("segment {name:?} is {other:?}, not U64"),
        }
    }

    /// Read-only view of a `u64` segment.
    pub fn u64s(&self, name: &str) -> Option<&[u64]> {
        match self.segments.get(name) {
            Some(Segment::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Get or create a byte segment.
    pub fn bytes_mut(&mut self, name: &str, default_len: usize) -> &mut Vec<u8> {
        self.touch(name);
        let seg = self
            .segments
            .entry(name.to_string())
            .or_insert_with(|| Segment::Bytes(vec![0; default_len]));
        match seg {
            Segment::Bytes(v) => v,
            other => panic!("segment {name:?} is {other:?}, not Bytes"),
        }
    }

    /// Read-only view of a byte segment.
    pub fn bytes(&self, name: &str) -> Option<&[u8]> {
        match self.segments.get(name) {
            Some(Segment::Bytes(v)) => Some(v),
            _ => None,
        }
    }

    /// Store a scalar convenience value.
    pub fn set_u64(&mut self, name: &str, v: u64) {
        self.touch(name);
        self.segments
            .insert(name.to_string(), Segment::U64(vec![v]));
    }

    /// Load a scalar convenience value.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.u64s(name).and_then(|v| v.first().copied())
    }

    /// Store a scalar `f64`.
    pub fn set_f64(&mut self, name: &str, v: f64) {
        self.touch(name);
        self.segments
            .insert(name.to_string(), Segment::F64(vec![v]));
    }

    /// Load a scalar `f64`.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.f64s(name).and_then(|v| v.first().copied())
    }

    /// Serialize into a writer.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.segments.len() as u64);
        for (name, seg) in &self.segments {
            w.string(name);
            Self::encode_seg(seg, w);
        }
    }

    /// Deserialize from a reader.
    pub fn decode(r: &mut Reader<'_>) -> Result<Memory, CodecError> {
        let count = r.u64()?;
        if count > 1 << 24 {
            return Err(CodecError::LengthOutOfBounds(count));
        }
        let mut memory = Memory::new();
        for _ in 0..count {
            let name = r.string()?;
            let seg = Self::decode_seg(r)?;
            memory.touch(&name);
            memory.segments.insert(name, seg);
        }
        Ok(memory)
    }

    /// Serialize one segment (tag + payload, no name) on its own — the
    /// per-segment checkpoint image sections. Returns `None` for a name
    /// this memory does not hold.
    pub fn encode_segment(&self, name: &str) -> Option<Vec<u8>> {
        let seg = self.segments.get(name)?;
        let mut w = Writer::new();
        Self::encode_seg(seg, &mut w);
        Some(w.into_raw())
    }

    /// Insert one segment from its [`Memory::encode_segment`] bytes.
    pub fn insert_segment(&mut self, name: &str, buf: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::raw(buf);
        let seg = Self::decode_seg(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::LengthOutOfBounds(r.remaining() as u64));
        }
        self.touch(name);
        self.segments.insert(name.to_string(), seg);
        Ok(())
    }

    fn encode_seg(seg: &Segment, w: &mut Writer) {
        w.u8(seg.tag());
        match seg {
            Segment::F64(v) => {
                w.u64(v.len() as u64);
                for &x in v {
                    w.f64(x);
                }
            }
            Segment::I64(v) => {
                w.u64(v.len() as u64);
                for &x in v {
                    w.i64(x);
                }
            }
            Segment::U64(v) => {
                w.u64(v.len() as u64);
                for &x in v {
                    w.u64(x);
                }
            }
            Segment::Bytes(v) => w.bytes(v),
        }
    }

    fn decode_seg(r: &mut Reader<'_>) -> Result<Segment, CodecError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => {
                let len = r.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(r.f64()?);
                }
                Segment::F64(v)
            }
            1 => {
                let len = r.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(r.i64()?);
                }
                Segment::I64(v)
            }
            2 => {
                let len = r.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(r.u64()?);
                }
                Segment::U64(v)
            }
            3 => Segment::Bytes(r.bytes()?.to_vec()),
            t => return Err(CodecError::LengthOutOfBounds(t as u64)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_segments_round_trip() {
        let mut m = Memory::new();
        m.f64s_mut("u", 3).copy_from_slice(&[1.5, -2.5, 3.25]);
        m.i64s_mut("steps", 2).copy_from_slice(&[-7, 9]);
        m.u64s_mut("seeds", 1)[0] = 42;
        m.bytes_mut("blob", 4).copy_from_slice(b"\x01\x02\x03\x04");
        m.set_f64("energy", -1.25e6);

        let mut w = Writer::new();
        m.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::checked(&buf).unwrap();
        let m2 = Memory::decode(&mut r).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m2.f64s("u").unwrap(), &[1.5, -2.5, 3.25]);
        assert_eq!(m2.get_f64("energy"), Some(-1.25e6));
        assert_eq!(m2.get_u64("seeds"), Some(42));
    }

    #[test]
    fn growth_and_defaults() {
        let mut m = Memory::new();
        assert!(m.is_empty());
        let v = m.f64s_mut("x", 5);
        assert_eq!(v.len(), 5);
        v.push(9.0);
        // Re-fetch keeps the grown data, ignores default_len.
        assert_eq!(m.f64s_mut("x", 1).len(), 6);
        assert_eq!(m.total_bytes(), 48);
        assert_eq!(m.len(), 1);
        assert!(m.contains("x"));
        assert!(!m.contains("y"));
    }

    #[test]
    #[should_panic(expected = "not F64")]
    fn type_confusion_panics() {
        let mut m = Memory::new();
        m.bytes_mut("x", 1);
        let _ = m.f64s_mut("x", 1);
    }

    #[test]
    fn deterministic_encoding_order() {
        let mut a = Memory::new();
        a.set_u64("zeta", 1);
        a.set_u64("alpha", 2);
        let mut b = Memory::new();
        b.set_u64("alpha", 2);
        b.set_u64("zeta", 1);
        let enc = |m: &Memory| {
            let mut w = Writer::new();
            m.encode(&mut w);
            w.finish()
        };
        assert_eq!(
            enc(&a),
            enc(&b),
            "insertion order must not leak into images"
        );
    }

    #[test]
    fn generations_move_only_on_mutation_and_never_repeat() {
        let mut m = Memory::new();
        m.f64s_mut("hot", 4);
        m.f64s_mut("cold", 4);
        let hot1 = m.generation("hot").unwrap();
        let cold1 = m.generation("cold").unwrap();
        assert_ne!(hot1, cold1);
        // Reads never move the clock.
        let _ = m.f64s("hot");
        let _ = m.get_f64("cold");
        assert_eq!(m.generation("hot"), Some(hot1));
        assert_eq!(m.generation("cold"), Some(cold1));
        // A mutable hand-out re-stamps, even without a store through it.
        m.f64s_mut("hot", 4);
        let hot2 = m.generation("hot").unwrap();
        assert!(hot2 > hot1);
        assert_eq!(m.generation("cold"), Some(cold1), "untouched stays put");
        // Remove + re-create must not resurrect an old stamp: "same name,
        // same generation" has to imply "same unmutated data".
        m.remove("cold");
        assert_eq!(m.generation("cold"), None);
        m.f64s_mut("cold", 4);
        assert!(m.generation("cold").unwrap() > cold1);
        // Generations are bookkeeping, not content: equality ignores them.
        let mut a = Memory::new();
        a.set_u64("x", 7);
        let mut b = Memory::new();
        b.set_u64("x", 7);
        b.u64s_mut("x", 1);
        assert_eq!(a, b);
        assert_ne!(a.generation("x"), b.generation("x"));
    }

    #[test]
    fn wrong_type_reads_return_none() {
        let mut m = Memory::new();
        m.set_u64("n", 3);
        assert!(m.f64s("n").is_none());
        assert!(m.bytes("n").is_none());
        assert!(m.i64s("n").is_none());
        assert_eq!(m.remove("n").map(|s| s.byte_len()), Some(8));
        assert!(m.remove("n").is_none());
    }
}
