//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API this workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) with a simple
//! median-of-samples wall-clock measurement and a text report on stdout.
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) each benchmark runs exactly once as a
//! smoke test.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing away a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Run mode parsed from the command line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (default under `cargo bench`).
    Measure,
    /// One iteration per benchmark (under `cargo test`).
    Smoke,
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut mode = Mode::Measure;
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                // Flags (with values) that cargo/criterion conventionally
                // pass; accept and ignore them.
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" | "--output-format" => {
                    if let Some(next) = args.peek() {
                        if !next.starts_with('-') && arg != "--bench" {
                            args.next();
                        }
                    }
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion {
            mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Configure the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches_filter(&id) {
            return;
        }
        let samples = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => sample_size,
        };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        let lo = per_iter.first().copied().unwrap_or(0.0);
        let hi = per_iter.last().copied().unwrap_or(0.0);
        println!(
            "{:<56} time: [{} {} {}]",
            id,
            HumanTime(lo),
            HumanTime(median),
            HumanTime(hi)
        );
    }
}

struct HumanTime(f64);

impl fmt::Display for HumanTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < 1e-6 {
            write!(f, "{:.3} ns", s * 1e9)
        } else if s < 1e-3 {
            write!(f, "{:.3} µs", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.3} ms", s * 1e3)
        } else {
            write!(f, "{:.3} s", s)
        }
    }
}

/// A benchmark group: shares a name prefix and sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepted for API compatibility; the stand-in ignores target times.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<S: IntoBenchmarkId, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.effective_samples();
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<S: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.effective_samples();
        self.criterion.run_one(full, samples, |b| f(b, input));
        self
    }

    /// End the group (report flushing is a no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form, as in criterion.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the string id used for reporting.
pub trait IntoBenchmarkId {
    /// Render to the display id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call outside the timed region.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Caller-timed loop: `routine` receives an iteration count and
    /// returns the elapsed time for exactly that many iterations. Lets
    /// benchmarks exclude per-iteration setup (sleeps, resets) from the
    /// measurement.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 3u64;
        self.elapsed += routine(iters);
        self.iters += iters;
    }

    /// Time `routine` on values produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let iters = 3u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Batch sizing hint (ignored by the stand-in).
#[derive(Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("encode", 128).into_benchmark_id();
        assert_eq!(id, "encode/128");
    }
}
