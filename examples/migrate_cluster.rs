//! Cluster migration: the paper's motivating scenario (§1).
//!
//! A long-running CoMD molecular-dynamics job is launched on a traditional
//! MPI cluster under Open MPI. Mid-run, the cluster must be drained (the
//! paper's examples: load balancing, an electricity shutdown). The sysadmin
//! "presses a button": the unmodified application is checkpointed, the
//! image is written to disk, and the job is restarted on a *different*
//! cluster — newer kernel, different interconnect — under the cluster's
//! preferred MPI library, MPICH. No recompilation anywhere.
//!
//! ```text
//! cargo run --release --example migrate_cluster
//! ```

use mpi_stool::apps::CoMdMini;
use mpi_stool::dmtcp::WorldImage;
use mpi_stool::simnet::{ClusterSpec, Interconnect, KernelVersion};
use mpi_stool::stool::{Checkpointer, CkptMode, Session, Vendor};

fn main() {
    // The job: a Lennard-Jones MD simulation, 4x4x4 unit cells per rank
    // direction, 60 velocity-Verlet steps with halo exchange every step.
    let job = CoMdMini {
        nsteps: 60,
        ..CoMdMini::default()
    };

    // Cluster A: old CentOS-7-era kernel (no userspace FSGSBASE — the
    // paper's Discovery cluster), 10 GbE, Open MPI preferred.
    let cluster_a = ClusterSpec::builder()
        .nodes(2)
        .ranks_per_node(4)
        .interconnect(Interconnect::TenGbE)
        .kernel(KernelVersion::CENTOS7)
        .build();

    // Cluster B: modern kernel, faster interconnect, MPICH preferred.
    let cluster_b = ClusterSpec::builder()
        .nodes(2)
        .ranks_per_node(4)
        .interconnect(Interconnect::Infiniband)
        .kernel(KernelVersion::MODERN)
        .build();

    // Reference: the same job, uninterrupted, for the answer we must match.
    let reference = Session::builder()
        .cluster(cluster_a.clone())
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("session")
        .launch(&job)
        .expect("reference run");
    let ref_energy = reference.memories().expect("completed")[0]
        .get_f64("comd.pe")
        .expect("potential energy");
    println!("uninterrupted run on cluster A:  PE = {ref_energy:.6}");

    // Phase 1: launch on cluster A, checkpoint-and-stop at step 30.
    let outcome = Session::builder()
        .cluster(cluster_a)
        .vendor(Vendor::OpenMpi)
        .checkpointer(Checkpointer::mana())
        .checkpoint_at_step(30, CkptMode::Stop)
        .build()
        .expect("session")
        .launch(&job)
        .expect("phase-1 run");
    let image = outcome.into_image().expect("checkpoint-stopped");
    println!(
        "checkpointed at step 30 under {} — {} ranks, {} bytes",
        image.vendor_hint,
        image.nranks(),
        image.total_bytes()
    );

    // The image is ordinary data: write it out, ship it to cluster B.
    let dir = std::env::temp_dir().join("mpi-stool-migrate-example");
    image.save_dir(&dir).expect("write images");
    let shipped = WorldImage::load_dir(&dir).expect("read images");
    println!("image round-tripped through {}", dir.display());

    // Phase 2: restart on cluster B under MPICH and finish the job.
    let done = Session::builder()
        .cluster(cluster_b)
        .vendor(Vendor::Mpich)
        .checkpointer(Checkpointer::mana())
        .build()
        .expect("session")
        .restore(&shipped, &job)
        .expect("phase-2 restore");
    let energy = done.memories().expect("completed")[0]
        .get_f64("comd.pe")
        .expect("potential energy");
    println!("migrated run finished on B:      PE = {energy:.6}");

    assert_eq!(
        energy.to_bits(),
        ref_energy.to_bits(),
        "the migrated computation must produce the bitwise-identical answer"
    );
    println!("\nbitwise identical across the Open MPI -> MPICH migration ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
