//! Indexed (context, source, tag) message matching, shared by the vendor
//! MPI progress engines.
//!
//! Real MPI libraries keep an *unexpected message queue* per process;
//! posted receives first search it, then block on the network. The naive
//! implementation — one flat queue scanned linearly per receive — costs
//! O(queue length) even for fully-specified receives. This module keeps
//! the unexpected store **indexed**:
//!
//! * Messages are bucketed by their exact `(ctx_id, src, tag)` triple,
//!   each bucket a FIFO in arrival order. A fully-specified receive is a
//!   hash lookup plus a front pop: **O(1)**, no scan.
//! * Every message is stamped with a per-process **arrival sequence
//!   number** at ingest. Wildcard receives (`MPI_ANY_SOURCE` /
//!   `MPI_ANY_TAG`) compare the *front* of each candidate bucket and take
//!   the globally smallest sequence: O(#live buckets in the context), not
//!   O(#queued messages).
//!
//! Why this preserves MPI's matching semantics: the fabric delivers
//! per-(src, dst) FIFO, and ingest stamps sequence numbers in delivery
//! order, so within a bucket (one sender, one tag, one context) sequence
//! order *is* send order — exact matches pop in send order
//! (non-overtaking). Across buckets, a wildcard receive picks the
//! matching message with the minimal sequence number over all candidate
//! bucket fronts; any other matching message in those buckets has a
//! larger sequence, so no later message from the same sender can overtake
//! an earlier one, and cross-sender selection follows arrival order,
//! which is how a hardware matching unit breaks wildcard ties.
//!
//! Vendor cost models stay pluggable: an [`ArrivalModel`] maps a raw
//! envelope to its arrival time at this rank (MPICH's ch3:sock adds a
//! small-message progress-engine latency; Open MPI's OB1 uses the wire
//! arrival as-is). Jitter is drawn exactly once per message, at ingest.
//!
//! Ingest itself is batched: one [`crate::fabric::Endpoint::drain_raw_into`]
//! per progress call moves every queued envelope under a single lock
//! acquisition instead of one lock round-trip per message.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use crate::envelope::Envelope;
use crate::error::SimResult;
use crate::rank::RankCtx;
use crate::telemetry::EventKind;
use crate::time::VirtualTime;

/// Maps a raw envelope to its arrival time at this rank — the hook where
/// vendor progress-engine cost models plug in.
pub trait ArrivalModel {
    /// When `env` becomes visible to the matching engine on this rank.
    fn arrival(&self, ctx: &RankCtx, env: &Envelope) -> VirtualTime {
        ctx.arrival_time(env)
    }
}

/// The default model: wire arrival time only (departure + link latency
/// with the receiver's jitter factor), no extra engine cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireArrival;

impl ArrivalModel for WireArrival {}

/// Source pattern of a posted receive (world ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcPattern {
    /// `MPI_ANY_SOURCE`.
    Any,
    /// A specific world rank.
    Is(usize),
}

/// Tag pattern of a posted receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPattern {
    /// `MPI_ANY_TAG`.
    Any,
    /// A specific tag.
    Is(i32),
}

/// A message delivered by the matcher: the envelope, its arrival time
/// (jitter drawn exactly once, at ingest), and its per-process arrival
/// sequence number.
#[derive(Debug, Clone)]
pub struct MatchedMsg {
    /// The message.
    pub env: Envelope,
    /// When it reached this rank, per the engine's [`ArrivalModel`].
    pub arrival: VirtualTime,
    /// Global arrival order at this rank (monotonic per process).
    pub seq: u64,
}

/// Exact-match bucket key.
type Key = (u64, usize, i32);

/// The shared indexed matching core. One per rank per vendor engine.
pub struct MatchCore<M: ArrivalModel = WireArrival> {
    model: M,
    /// Per-(ctx, src, tag) FIFO buckets in arrival order.
    buckets: HashMap<Key, VecDeque<MatchedMsg>>,
    /// Secondary index for wildcard scans: exactly the keys of live
    /// (nonempty) buckets, grouped by context id. Kept in lockstep with
    /// `buckets` on insert and evict.
    by_ctx: HashMap<u64, Vec<Key>>,
    /// Next arrival sequence number.
    next_seq: u64,
    /// Total queued messages across all buckets.
    total: usize,
    /// Reused batch-drain buffer (amortizes the per-pump allocation).
    scratch: Vec<Envelope>,
}

impl<M: ArrivalModel + Default> Default for MatchCore<M> {
    fn default() -> Self {
        MatchCore::with_model(M::default())
    }
}

impl MatchCore<WireArrival> {
    /// An empty core with the default wire-arrival cost model.
    pub fn new() -> Self {
        MatchCore::default()
    }
}

impl<M: ArrivalModel> MatchCore<M> {
    /// An empty core with a vendor-specific arrival cost model.
    pub fn with_model(model: M) -> Self {
        MatchCore {
            model,
            buckets: HashMap::new(),
            by_ctx: HashMap::new(),
            next_seq: 0,
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// The vendor cost model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of queued unexpected messages (diagnostics / drain).
    pub fn unexpected_len(&self) -> usize {
        self.total
    }

    /// Stamp, cost, and index one envelope.
    fn ingest(&mut self, ctx: &RankCtx, env: Envelope) {
        let arrival = self.model.arrival(ctx, &env);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (env.ctx_id, env.src, env.tag);
        match self.buckets.entry(key) {
            Entry::Occupied(mut o) => o.get_mut().push_back(MatchedMsg { env, arrival, seq }),
            Entry::Vacant(v) => {
                // Invariant: a key is in by_ctx iff its bucket exists, so
                // a vacant bucket means the key is not yet indexed.
                v.insert(VecDeque::from([MatchedMsg { env, arrival, seq }]));
                self.by_ctx.entry(key.0).or_default().push(key);
            }
        }
        self.total += 1;
    }

    /// Batch-drain everything currently on the wire into the index:
    /// exactly one mailbox lock acquisition per call.
    pub fn pump(&mut self, ctx: &RankCtx) -> SimResult<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        ctx.endpoint().drain_raw_into(&mut scratch)?;
        for env in scratch.drain(..) {
            self.ingest(ctx, env);
        }
        self.scratch = scratch;
        Ok(())
    }

    /// The bucket key holding the first match for the pattern, if any,
    /// plus how many candidate buckets a wildcard scan compared (0 for
    /// exact probes). Exact patterns are a single hash probe; wildcard
    /// patterns compare candidate bucket fronts by arrival sequence.
    fn locate(&self, ctx_id: u64, src: SrcPattern, tag: TagPattern) -> (Option<Key>, usize) {
        if let (SrcPattern::Is(s), TagPattern::Is(t)) = (src, tag) {
            let key = (ctx_id, s, t);
            return (self.buckets.contains_key(&key).then_some(key), 0);
        }
        // by_ctx tracks exactly the live (nonempty) buckets: pick the
        // pattern-matching front with the smallest arrival sequence.
        let Some(keys) = self.by_ctx.get(&ctx_id) else {
            return (None, 0);
        };
        let mut best: Option<(u64, Key)> = None;
        for &key in keys.iter() {
            let (_, ksrc, ktag) = key;
            let src_ok = match src {
                SrcPattern::Any => true,
                SrcPattern::Is(s) => ksrc == s,
            };
            let tag_ok = match tag {
                TagPattern::Any => true,
                TagPattern::Is(t) => ktag == t,
            };
            if !src_ok || !tag_ok {
                continue;
            }
            let front_seq = self.buckets[&key]
                .front()
                .expect("indexed buckets are nonempty")
                .seq;
            if best.is_none_or(|(seq, _)| front_seq < seq) {
                best = Some((front_seq, key));
            }
        }
        (best.map(|(_, key)| key), keys.len())
    }

    /// Non-blocking match: pump the wire, then deliver the first matching
    /// message in arrival order, if one is here. Consumes the message and
    /// records it in the rank's receive counters.
    pub fn try_match(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcPattern,
        tag: TagPattern,
    ) -> SimResult<Option<MatchedMsg>> {
        self.pump(ctx)?;
        Ok(self.take_located(ctx, ctx_id, src, tag))
    }

    fn take_located(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcPattern,
        tag: TagPattern,
    ) -> Option<MatchedMsg> {
        let (located, scanned) = self.locate(ctx_id, src, tag);
        note_scan(ctx, scanned);
        let key = located?;
        let bucket = self.buckets.get_mut(&key).expect("located bucket exists");
        let msg = bucket.pop_front().expect("located bucket nonempty");
        // Evict emptied buckets — and their by_ctx index entries — so no
        // per-(ctx, src, tag) state accumulates over communicator churn.
        if bucket.is_empty() {
            self.buckets.remove(&key);
            if let Some(keys) = self.by_ctx.get_mut(&key.0) {
                if let Some(pos) = keys.iter().position(|k| *k == key) {
                    keys.swap_remove(pos);
                }
                if keys.is_empty() {
                    self.by_ctx.remove(&key.0);
                }
            }
        }
        self.total -= 1;
        ctx.count_recv(msg.env.len());
        note_match(ctx, &msg);
        Some(msg)
    }

    /// Blocking match: waits (event-driven, no polling) for a matching
    /// message.
    pub fn match_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcPattern,
        tag: TagPattern,
    ) -> SimResult<MatchedMsg> {
        loop {
            if let Some(m) = self.try_match(ctx, ctx_id, src, tag)? {
                return Ok(m);
            }
            // Nothing matched and the wire is drained: sleep until the
            // next envelope (or a shutdown/failure wakeup), then retry —
            // the retry's pump batch-drains anything else that arrived.
            let env = ctx.endpoint().recv_raw()?;
            self.ingest(ctx, env);
        }
    }

    /// Non-blocking peek (for `MPI_Iprobe`): like [`MatchCore::try_match`]
    /// but leaves the message queued and does not count a receive.
    pub fn try_peek(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcPattern,
        tag: TagPattern,
    ) -> SimResult<Option<MatchedMsg>> {
        self.pump(ctx)?;
        let (located, scanned) = self.locate(ctx_id, src, tag);
        note_scan(ctx, scanned);
        let key = match located {
            Some(key) => key,
            None => return Ok(None),
        };
        Ok(self.buckets[&key].front().cloned())
    }

    /// Blocking peek (for `MPI_Probe`).
    pub fn peek_blocking(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: SrcPattern,
        tag: TagPattern,
    ) -> SimResult<MatchedMsg> {
        loop {
            if let Some(m) = self.try_peek(ctx, ctx_id, src, tag)? {
                return Ok(m);
            }
            let env = ctx.endpoint().recv_raw()?;
            self.ingest(ctx, env);
        }
    }
}

/// Record a successful match on the rank's telemetry lane (if the
/// fabric has a recorder attached): one `MsgMatch` event stamped with
/// the message's virtual arrival time, plus the match-hit counter.
#[inline]
fn note_match(ctx: &RankCtx, msg: &MatchedMsg) {
    if let Some(ft) = ctx.endpoint().fabric().tel_handles() {
        ft.match_hits.incr();
        ft.tel.emit_rank(
            ctx.rank(),
            EventKind::MsgMatch,
            msg.arrival.as_nanos(),
            msg.env.src as u64,
            msg.env.tag as u32 as u64,
            msg.seq,
        );
    }
}

/// Record a wildcard front scan over `scanned` candidate buckets
/// (exact-probe lookups pass 0 and cost one branch).
#[inline]
fn note_scan(ctx: &RankCtx, scanned: usize) {
    if scanned > 0 {
        if let Some(ft) = ctx.endpoint().fabric().tel_handles() {
            ft.wildcard_scans.incr();
            ft.wildcard_scanned.add(scanned as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::fabric::Fabric;
    use crate::noise::NoiseModel;
    use bytes::Bytes;
    use std::sync::Arc;

    fn pair() -> (RankCtx, RankCtx) {
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        (
            RankCtx::new(
                0,
                spec.clone(),
                ep0,
                NoiseModel::disabled().stream_for_rank(0),
            ),
            RankCtx::new(1, spec, ep1, NoiseModel::disabled().stream_for_rank(1)),
        )
    }

    fn send(c: &RankCtx, dst: usize, ctx_id: u64, tag: i32, data: &[u8]) {
        c.endpoint()
            .send_raw(dst, ctx_id, tag, Bytes::copy_from_slice(data), c)
            .unwrap();
    }

    #[test]
    fn exact_match_pops_fifo_per_key() {
        let (c0, c1) = pair();
        for i in 0..8u8 {
            send(&c0, 1, 3, 7, &[i]);
        }
        let mut core = MatchCore::new();
        for i in 0..8u8 {
            let m = core
                .try_match(&c1, 3, SrcPattern::Is(0), TagPattern::Is(7))
                .unwrap()
                .unwrap();
            assert_eq!(m.env.payload[0], i);
        }
        assert_eq!(core.unexpected_len(), 0);
    }

    #[test]
    fn wildcard_follows_global_arrival_order() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 42, b"first");
        send(&c0, 1, 3, 43, b"second");
        send(&c0, 1, 3, 42, b"third");
        let mut core = MatchCore::new();
        let a = core
            .try_match(&c1, 3, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        let b = core
            .try_match(&c1, 3, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        let c = core
            .try_match(&c1, 3, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        assert_eq!(&a.env.payload[..], b"first");
        assert_eq!(&b.env.payload[..], b"second");
        assert_eq!(&c.env.payload[..], b"third");
        assert!(a.seq < b.seq && b.seq < c.seq);
    }

    #[test]
    fn contexts_are_isolated() {
        let (c0, c1) = pair();
        send(&c0, 1, 10, 0, b"ten");
        send(&c0, 1, 20, 0, b"twenty");
        let mut core = MatchCore::new();
        let got = core
            .try_match(&c1, 20, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        assert_eq!(&got.env.payload[..], b"twenty");
        assert_eq!(core.unexpected_len(), 1);
        assert!(core
            .try_match(&c1, 99, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .is_none());
    }

    #[test]
    fn peek_leaves_message_and_keeps_arrival_stable() {
        let (c0, c1) = pair();
        send(&c0, 1, 3, 7, b"x");
        let mut core = MatchCore::new();
        let p = core
            .try_peek(&c1, 3, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        assert_eq!(core.unexpected_len(), 1);
        let m = core
            .try_match(&c1, 3, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        assert_eq!(p.arrival, m.arrival, "jitter drawn exactly once, at ingest");
        assert_eq!(core.unexpected_len(), 0);
    }

    #[test]
    fn empty_buckets_are_pruned_and_reusable() {
        let (c0, c1) = pair();
        let mut core = MatchCore::new();
        for round in 0..3 {
            send(&c0, 1, 5, 1, &[round]);
            send(&c0, 1, 5, 2, &[round]);
            let a = core
                .try_match(&c1, 5, SrcPattern::Any, TagPattern::Is(1))
                .unwrap()
                .unwrap();
            let b = core
                .try_match(&c1, 5, SrcPattern::Any, TagPattern::Is(2))
                .unwrap()
                .unwrap();
            assert_eq!(a.env.payload[0], round);
            assert_eq!(b.env.payload[0], round);
        }
        // Emptied buckets are evicted and their index entries follow:
        // no per-key or per-context state accumulates.
        assert!(core.buckets.is_empty());
        assert!(core.by_ctx.is_empty());
    }

    #[test]
    fn mixed_exact_and_wildcard_respect_non_overtaking() {
        let (c0, c1) = pair();
        // Same (src, tag): an exact receive and a wildcard receive must
        // both observe send order.
        for i in 0..4u8 {
            send(&c0, 1, 9, 5, &[i]);
        }
        let mut core = MatchCore::new();
        let a = core
            .try_match(&c1, 9, SrcPattern::Is(0), TagPattern::Is(5))
            .unwrap()
            .unwrap();
        let b = core
            .try_match(&c1, 9, SrcPattern::Any, TagPattern::Any)
            .unwrap()
            .unwrap();
        let c = core
            .try_match(&c1, 9, SrcPattern::Is(0), TagPattern::Any)
            .unwrap()
            .unwrap();
        let d = core
            .try_match(&c1, 9, SrcPattern::Any, TagPattern::Is(5))
            .unwrap()
            .unwrap();
        assert_eq!(
            [
                a.env.payload[0],
                b.env.payload[0],
                c.env.payload[0],
                d.env.payload[0]
            ],
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn custom_arrival_model_is_applied_once_at_ingest() {
        struct PlusTen;
        impl ArrivalModel for PlusTen {
            fn arrival(&self, ctx: &RankCtx, env: &Envelope) -> VirtualTime {
                ctx.arrival_time(env) + VirtualTime::from_micros(10)
            }
        }
        let (c0, c1) = pair();
        send(&c0, 1, 0, 0, b"y");
        let mut core = MatchCore::with_model(PlusTen);
        let m = core
            .try_match(&c1, 0, SrcPattern::Is(0), TagPattern::Is(0))
            .unwrap()
            .unwrap();
        assert!(m.arrival >= VirtualTime::from_micros(10));
    }
}
