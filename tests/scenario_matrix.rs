//! The scenario-matrix battery: the committed matrix spec is well-formed
//! and covers every fault family, representative rows hold their
//! invariants through `run_scenario`, a 10x straggler cannot poison a
//! tree barrier or skew the cut, and random small fault schedules always
//! unwind into a bit-identical cross-vendor restart (proptest).

use std::path::PathBuf;

use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{
    parse_matrix, run_scenario, BarrierTopology, Checkpointer, EventKind, FaultSchedule,
    ScenarioSpec, Session, Vendor, Victims,
};
use proptest::prelude::*;
use simnet::{ClusterSpec, VirtualTime};

fn committed_matrix() -> Vec<ScenarioSpec> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benches/scenarios/matrix.toml");
    let text = std::fs::read_to_string(&path).expect("committed matrix spec readable");
    parse_matrix(&text).expect("committed matrix spec parses")
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stool_scenarios_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ring_for(spec: &ScenarioSpec) -> RingPings {
    assert_eq!(spec.app, "ring", "this battery instantiates ring rows only");
    RingPings {
        rounds: spec.steps,
        payload: spec.payload as usize,
    }
}

// ---------------------------------------------------------------------------
// The committed spec file
// ---------------------------------------------------------------------------

#[test]
fn committed_matrix_meets_the_coverage_floor() {
    let specs = committed_matrix();
    assert!(
        specs.len() >= 24,
        "the matrix must keep >= 24 scenarios, found {}",
        specs.len()
    );
    let pr = specs.iter().filter(|s| s.pr).count();
    assert!(
        pr >= 8,
        "PR CI needs a pinned subset of >= 8 rows, found {pr}"
    );

    // Every fault family is represented, each under both vendors.
    let family = |pred: &dyn Fn(&ScenarioSpec) -> bool, what: &str| {
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            assert!(
                specs.iter().any(|s| s.vendor == vendor && pred(s)),
                "no {what} row under {}",
                vendor.name()
            );
        }
    };
    family(
        &|s| {
            s.schedule
                .kills
                .iter()
                .any(|k| matches!(k.victims, Victims::Ranks(_) | Victims::World))
        },
        "rank fail-storm",
    );
    family(
        &|s| {
            s.schedule
                .kills
                .iter()
                .any(|k| matches!(k.victims, Victims::Nodes(_)))
        },
        "node-group kill",
    );
    family(&|s| !s.schedule.stragglers.is_empty(), "straggler");
    family(
        &|s| !s.schedule.tier_puts.is_empty() || !s.schedule.tier_gets.is_empty(),
        "torn tier upload",
    );
    family(
        &|s| !s.schedule.replica.is_empty(),
        "coordinator leader-kill",
    );

    // Applications beyond the smoke ring: the paper's §5 workloads.
    for app in ["wave", "comd"] {
        assert!(
            specs.iter().any(|s| s.app == app),
            "matrix must cover the {app} workload"
        );
    }
}

#[test]
fn matrix_parser_rejects_drifted_specs() {
    // A spec whose kill precedes the first checkpoint can never recover
    // from a chain; the parser must reject it, not let the row fail late.
    let early_kill = r#"
[scenario.bad]
ckpt_every = 8
fault = "kill-ranks @4 1"
"#;
    let err = parse_matrix(early_kill).unwrap_err();
    assert!(err.contains("precedes the first checkpoint"), "{err}");

    let unknown_key = "[scenario.bad]\nnproc = 4\n";
    assert!(parse_matrix(unknown_key)
        .unwrap_err()
        .contains("unknown key"));

    let tierless_fault = "[scenario.bad]\nfault = \"tier-put torn\"\n";
    let err = parse_matrix(tierless_fault).unwrap_err();
    assert!(err.contains("tier faults need durability"), "{err}");
}

// ---------------------------------------------------------------------------
// Engine battery on representative committed rows
// ---------------------------------------------------------------------------

#[test]
fn committed_storm_rows_hold_their_invariants() {
    let specs = committed_matrix();
    let dir = workdir("storm");
    for name in ["ring-storm-mpich", "ring-storm-openmpi", "node-kill-mpich"] {
        let spec = specs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("committed matrix lost row {name}"));
        let result = run_scenario(spec, &ring_for(spec), &dir);
        assert!(result.passed(), "{name}: {:?}", result.failures);
        assert_eq!(result.kills, 1, "{name}");
        assert_eq!(result.recovery_rounds, 1, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tests/tier_faults.rs port: `torn_object_is_rejected_by_crc_and_
/// reuploaded`, driven end-to-end through the committed matrix row
/// instead of a hand-built store. Same assertions, bigger machine: the
/// torn and failed uploads are caught by read-back CRC and re-shipped
/// (`put_retries` counts one retry per scripted fault), the local chain
/// is wiped before the restart so hydration comes from the tier copy
/// alone, and the cross-vendor restart still converges bit-identically
/// (the row fails otherwise).
#[test]
fn torn_upload_row_reships_and_hydrates_from_the_tier() {
    let specs = committed_matrix();
    let spec = specs
        .iter()
        .find(|s| s.name == "torn-ship-hydrate")
        .expect("committed matrix lost the torn-ship-hydrate row");
    assert!(spec.wipe_local, "the row must force tier-only hydration");
    assert!(spec.pr, "the port must stay in the PR subset");
    let scripted = spec.schedule.tier_puts.len() as u64;
    assert!(scripted >= 2, "torn + fail uploads are both scripted");

    let dir = workdir("torn");
    let result = run_scenario(spec, &ring_for(spec), &dir);
    assert!(result.passed(), "{:?}", result.failures);
    assert!(
        result.put_retries >= scripted,
        "one re-upload per scripted fault: {} < {scripted}",
        result.put_retries
    );
    assert!(result.epochs >= 1, "the hydrated chain holds the epochs");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Straggler satellite: slow is not dead
// ---------------------------------------------------------------------------

/// A rank delayed 10x the per-step compute at its safe point must not
/// poison the tree barrier (the run completes, no incident) or skew the
/// checkpoint cut: the coordinator pins the cut to the announced step, so
/// the straggled run commits the same epochs and computes bit-identical
/// results as the undisturbed one.
#[test]
fn straggler_cannot_poison_tree_barrier_or_skew_cut() {
    let program = RingPings {
        rounds: 24,
        payload: 64,
    };
    // Ring charges 5 us of compute per step; 50 us is the 10x straggle.
    let run = |schedule: FaultSchedule, tag: &str| {
        let dir = workdir(tag);
        let session = Session::builder()
            .cluster(ClusterSpec::builder().nodes(3).ranks_per_node(2).build())
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .checkpoint_every(8)
            .checkpoint_store(&dir)
            .barrier_topology(BarrierTopology::Tree { radix: 2 })
            .fault_schedule(schedule)
            .build()
            .unwrap();
        let out = session.launch(&program).unwrap();
        let snap = session.telemetry().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (out, snap)
    };
    let slow = FaultSchedule::default().straggle(2, 4, 20, VirtualTime::from_micros(50));
    let (slow_out, slow_snap) = run(slow, "straggle_slow");
    let (fast_out, fast_snap) = run(FaultSchedule::default(), "straggle_fast");

    assert!(
        slow_out.is_completed(),
        "slow is not dead: the run finishes"
    );
    assert!(
        slow_snap.emitted(EventKind::RankStall) >= 16,
        "stalls traced"
    );
    assert_eq!(slow_snap.incidents(), 0, "a straggler is not an incident");

    // Same epochs committed at the same cuts (no skew), same answer.
    let epochs = |snap: &mpi_stool::stool::TelemetrySnapshot| {
        snap.epochs.iter().map(|e| e.epoch).collect::<Vec<_>>()
    };
    assert_eq!(epochs(&slow_snap), epochs(&fast_snap));
    assert!(!epochs(&slow_snap).is_empty(), "periodic checkpoints ran");
    let totals = |memories: &[mpi_stool::stool::Memory]| {
        memories
            .iter()
            .map(|m| m.get_f64("ring.total").unwrap().to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        totals(slow_out.memories().unwrap()),
        totals(fast_out.memories().unwrap()),
        "a slow rank must not change the computation"
    );
}

// ---------------------------------------------------------------------------
// Proptest satellite: random small schedules always converge
// ---------------------------------------------------------------------------

/// Strategy for a small valid schedule on a 3x2 world with steps=18 and
/// ckpt_every=6: one or two kills strictly inside (ckpt_every, steps),
/// optionally a straggler window.
fn small_schedule() -> impl Strategy<Value = FaultSchedule> {
    let kill = (7u64..18, prop::collection::vec(0usize..6, 1..3));
    (
        prop::collection::vec(kill, 1..3),
        any::<bool>(),
        (0usize..6, 2u64..6, 8u64..18, 10u64..100),
    )
        .prop_map(|(kills, straggles, (rank, from, until, delay_us))| {
            let mut schedule = FaultSchedule::default();
            for (step, ranks) in kills {
                schedule = schedule.kill_ranks(step, ranks);
            }
            if straggles {
                schedule = schedule.straggle(rank, from, until, VirtualTime::from_micros(delay_us));
            }
            schedule
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariants 1 + 2 under random fault schedules: every run unwinds
    /// (no hang, no partial epoch) and the restart chain converges to the
    /// bit-identical final state under the alternating vendor.
    #[test]
    fn random_schedules_unwind_and_restart_bit_identically(
        schedule in small_schedule(),
        openmpi_first in any::<bool>(),
    ) {
        let mut spec = ScenarioSpec::named("prop");
        spec.steps = 18;
        spec.ckpt_every = 6;
        spec.vendor = if openmpi_first { Vendor::OpenMpi } else { Vendor::Mpich };
        spec.schedule = schedule;
        prop_assume!(spec.validate().is_ok());
        let dir = workdir("prop");
        let result = run_scenario(&spec, &ring_for(&spec), &dir);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(result.passed(), "{:?}", result.failures);
        // Kill events sharing a step merge into one global failure.
        let distinct_steps = spec.schedule.kills.iter()
            .map(|k| k.at_step)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        prop_assert_eq!(result.kills as usize, distinct_steps);
    }
}
