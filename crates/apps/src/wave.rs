//! `wave_mpi`: parallel solution of the 1-D wave equation.
//!
//! A faithful port of Burkardt's `wave_mpi` (the paper's second real-world
//! application): the string `u(x,t)` on `x ∈ [0,1]` obeys
//! `u_tt = c² u_xx`, discretized with the standard explicit leapfrog
//! scheme. The domain is block-partitioned over ranks; every time step each
//! rank exchanges one boundary value with each neighbour
//! (`MPI_Send`/`MPI_Recv` nearest-neighbour traffic, exactly the original's
//! communication pattern).
//!
//! The exact solution `u(x,t) = sin 2π(x − ct)` makes correctness
//! checkable: the final L∞ error against it is stored in memory, and the
//! full final field can be gathered for bitwise comparison across stacks —
//! the trajectory is pure point-to-point dataflow, so it is *bit-identical*
//! under every vendor/stack combination, checkpointed or not.

use mpi_abi::{consts, Handle, ReduceOp};
use simnet::VirtualTime;
use stool::{AppCtx, MpiProgram, StoolResult};

/// The 1-D wave equation solver.
#[derive(Debug, Clone)]
pub struct WaveMpi {
    /// Total number of grid points.
    pub npoints: usize,
    /// Number of time steps.
    pub nsteps: u64,
    /// Wave speed `c`.
    pub c: f64,
    /// Modelled compute time per grid-point update (ns); calibrates the
    /// Fig. 5 wall-clock scale.
    pub ns_per_point: f64,
    /// Gather the final field to rank 0 (`"wave.final"`).
    pub gather_final: bool,
}

impl Default for WaveMpi {
    fn default() -> Self {
        // dt is chosen for CFL stability: c·dt/dx = 0.9.
        WaveMpi {
            npoints: 4000,
            nsteps: 800,
            c: 1.0,
            ns_per_point: 6.0,
            gather_final: true,
        }
    }
}

impl WaveMpi {
    fn local_range(&self, rank: usize, nranks: usize) -> (usize, usize) {
        let base = self.npoints / nranks;
        let rem = self.npoints % nranks;
        let lo = rank * base + rank.min(rem);
        let len = base + usize::from(rank < rem);
        (lo, len)
    }

    fn exact(&self, x: f64, t: f64) -> f64 {
        (2.0 * std::f64::consts::PI * (x - self.c * t)).sin()
    }

    fn dx(&self) -> f64 {
        1.0 / (self.npoints - 1) as f64
    }

    fn dt(&self) -> f64 {
        0.9 * self.dx() / self.c
    }
}

impl MpiProgram for WaveMpi {
    fn name(&self) -> &'static str {
        "wave_mpi"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let me = app.rank();
        let n = app.nranks();
        let (lo, len) = self.local_range(me, n);
        let dx = self.dx();
        let dt = self.dt();
        let alpha2 = (self.c * dt / dx) * (self.c * dt / dx);
        let left = if me == 0 {
            consts::PROC_NULL
        } else {
            (me - 1) as i32
        };
        let right = if me + 1 == n {
            consts::PROC_NULL
        } else {
            (me + 1) as i32
        };

        // Initialize the mesh coordinates and u(x,0), u(x,dt) from the
        // exact solution on a fresh launch; a restart finds them in
        // memory. The mesh is fixed for the life of the run — the part of
        // the image that never changes between checkpoint epochs.
        if !app.mem.contains("wave.u_prev") {
            let xs = app.mem.f64s_mut("wave.x", len);
            for (i, slot) in xs.iter_mut().enumerate() {
                *slot = (lo + i) as f64 * dx;
            }
            let u_prev = app.mem.f64s_mut("wave.u_prev", len);
            for (i, slot) in u_prev.iter_mut().enumerate() {
                *slot = self.exact((lo + i) as f64 * dx, 0.0);
            }
            let u = app.mem.f64s_mut("wave.u", len);
            for (i, slot) in u.iter_mut().enumerate() {
                *slot = self.exact((lo + i) as f64 * dx, dt);
            }
        }

        for step in app.resume_step()..self.nsteps {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            // Exchange boundary values with both neighbours. Two paired
            // sendrecvs (rightward then leftward shift), PROC_NULL at the
            // physical boundaries — the original program's pattern.
            let u = app.mem.f64s("wave.u").expect("initialized").to_vec();
            let mut from_left = [0.0f64];
            let mut from_right = [0.0f64];
            {
                let mut p = app.pmpi();
                p.sendrecv_f64s(
                    &[u[len - 1]],
                    right,
                    21,
                    &mut from_left,
                    left,
                    21,
                    Handle::COMM_WORLD,
                )?;
                p.sendrecv_f64s(
                    &[u[0]],
                    left,
                    22,
                    &mut from_right,
                    right,
                    22,
                    Handle::COMM_WORLD,
                )?;
            }

            // Leapfrog update; physical boundaries follow the exact
            // solution (Dirichlet driven ends, like the original).
            let t_next = (step as f64 + 2.0) * dt;
            let u_prev = app.mem.f64s("wave.u_prev").expect("initialized").to_vec();
            let mut u_next = vec![0.0; len];
            for i in 0..len {
                let gi = lo + i;
                if gi == 0 || gi == self.npoints - 1 {
                    u_next[i] = self.exact(gi as f64 * dx, t_next);
                } else {
                    let um = if i == 0 { from_left[0] } else { u[i - 1] };
                    let up = if i + 1 == len {
                        from_right[0]
                    } else {
                        u[i + 1]
                    };
                    u_next[i] = 2.0 * u[i] - u_prev[i] + alpha2 * (um - 2.0 * u[i] + up);
                }
            }
            app.mem.f64s_mut("wave.u_prev", len).copy_from_slice(&u);
            app.mem.f64s_mut("wave.u", len).copy_from_slice(&u_next);
            // Charge the modelled stencil compute time.
            app.compute(VirtualTime::from_micros_f64(
                len as f64 * self.ns_per_point / 1000.0,
            ));
        }

        // Diagnostics: L∞ error against the exact solution at final time.
        let t_final = (self.nsteps as f64 + 1.0) * dt;
        let u = app.mem.f64s("wave.u").expect("initialized").to_vec();
        let mut local_err = 0.0f64;
        for (i, &v) in u.iter().enumerate() {
            local_err = local_err.max((v - self.exact((lo + i) as f64 * dx, t_final)).abs());
        }
        let err = app
            .pmpi()
            .allreduce_f64(local_err, ReduceOp::Max, Handle::COMM_WORLD)?;
        app.mem.set_f64("wave.err", err);

        if self.gather_final {
            // Equal-block gather needs equal contributions: pad to the
            // maximum block length, rank 0 unpads.
            let base = self.npoints / n;
            let maxlen = base + usize::from(!self.npoints.is_multiple_of(n));
            let mut padded = vec![0.0; maxlen];
            padded[..len].copy_from_slice(&u);
            let mut gathered = if me == 0 {
                vec![0.0; maxlen * n]
            } else {
                Vec::new()
            };
            app.pmpi()
                .gather_f64s(&padded, &mut gathered, 0, Handle::COMM_WORLD)?;
            if me == 0 {
                let mut full = Vec::with_capacity(self.npoints);
                for r in 0..n {
                    let (_, rlen) = self.local_range(r, n);
                    full.extend_from_slice(&gathered[r * maxlen..r * maxlen + rlen]);
                }
                app.mem
                    .f64s_mut("wave.final", self.npoints)
                    .copy_from_slice(&full);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stool::{Checkpointer, Session, Vendor};

    fn small() -> WaveMpi {
        WaveMpi {
            npoints: 200,
            nsteps: 60,
            ..WaveMpi::default()
        }
    }

    #[test]
    fn partition_covers_domain() {
        let w = small();
        for n in [1, 2, 3, 5, 7] {
            let mut total = 0;
            let mut next_lo = 0;
            for r in 0..n {
                let (lo, len) = w.local_range(r, n);
                assert_eq!(lo, next_lo, "contiguous blocks");
                next_lo = lo + len;
                total += len;
            }
            assert_eq!(total, w.npoints, "n={n}");
        }
    }

    #[test]
    fn static_mesh_stays_clean_across_steps() {
        // The delta store's dirty-segment tracking only pays off if the
        // application does not spuriously take mutable borrows of its
        // static state: `wave.x` is written once at initialization and
        // must keep that generation for the whole run, while the
        // leapfrog fields move every step.
        let cluster = simnet::ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(2)
            .build();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .checkpointer(Checkpointer::mana())
            .build()
            .unwrap();
        let out = session.launch(&small()).unwrap();
        for mem in out.memories().unwrap() {
            let x_gen = mem.generation("wave.x").unwrap();
            let u_gen = mem.generation("wave.u").unwrap();
            assert!(
                x_gen < u_gen,
                "the mesh must never be re-stamped after init: x {x_gen} vs u {u_gen}"
            );
            // Written exactly once, among the first few segments created.
            assert!(x_gen <= 4, "wave.x was mutably touched mid-run: {x_gen}");
        }
    }

    #[test]
    fn converges_to_exact_solution() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(2)
            .ranks_per_node(2)
            .build();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .build()
            .unwrap();
        let out = session.launch(&small()).unwrap();
        let err = out.memories().unwrap()[0].get_f64("wave.err").unwrap();
        // Second-order scheme at CFL 0.9 on a 200-point grid: error well
        // under 1%.
        assert!(err < 1e-2, "L-inf error too large: {err}");
    }

    #[test]
    fn trajectory_is_bitwise_identical_across_vendors() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(2)
            .ranks_per_node(2)
            .build();
        let field_for = |vendor| {
            let session = Session::builder()
                .cluster(cluster.clone())
                .vendor(vendor)
                .build()
                .unwrap();
            let out = session.launch(&small()).unwrap();
            out.memories().unwrap()[0]
                .f64s("wave.final")
                .unwrap()
                .to_vec()
        };
        let a = field_for(Vendor::Mpich);
        let b = field_for(Vendor::OpenMpi);
        assert_eq!(a.len(), 200);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn rank_count_does_not_change_physics() {
        let field_for = |nodes: usize, rpn: usize| {
            let cluster = simnet::ClusterSpec::builder()
                .nodes(nodes)
                .ranks_per_node(rpn)
                .build();
            let session = Session::builder()
                .cluster(cluster)
                .vendor(Vendor::OpenMpi)
                .checkpointer(Checkpointer::mana())
                .build()
                .unwrap();
            let out = session.launch(&small()).unwrap();
            out.memories().unwrap()[0]
                .f64s("wave.final")
                .unwrap()
                .to_vec()
        };
        let serial = field_for(1, 1);
        let parallel = field_for(2, 3);
        // Same stencil arithmetic regardless of decomposition (floating
        // point is associativity-free here: each point's update uses the
        // same three neighbours in the same expression).
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
