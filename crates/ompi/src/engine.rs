//! Open MPI-flavour progress engine over the shared indexed matching
//! core ([`simnet::matching`]).
//!
//! Historically this engine kept its own per-communicator buckets while
//! the MPICH flavour kept a flat queue; both now share the one indexed
//! matcher (per-(context, source, tag) FIFO buckets, global arrival
//! sequence for wildcards), which preserves each flavour's observable
//! semantics while making fully-specified receives O(1). The OB1-style
//! cost model is the pluggable [`simnet::matching::ArrivalModel`] hook;
//! Open MPI charges no extra per-message engine latency here (its tuning
//! lives in the collective algorithms, see [`crate::tuning`]), so this
//! engine uses the default wire-arrival model.

use simnet::matching::{MatchCore, MatchedMsg, WireArrival};
use simnet::{Envelope, RankCtx, SimResult, VirtualTime};

/// A pulled-off-the-wire message with its arrival time and sequence.
#[derive(Debug, Clone)]
pub struct Pulled {
    /// The message.
    pub env: Envelope,
    /// When it reached this rank.
    pub arrival: VirtualTime,
    /// Global pull order (monotonic per process).
    pub order: u64,
}

impl From<MatchedMsg> for Pulled {
    fn from(m: MatchedMsg) -> Pulled {
        Pulled {
            env: m.env,
            arrival: m.arrival,
            order: m.seq,
        }
    }
}

/// Source selector (world ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Want {
    /// Any source.
    AnySrc,
    /// A specific world rank.
    Src(usize),
}

impl Want {
    fn pattern(self) -> simnet::SrcPattern {
        match self {
            Want::AnySrc => simnet::SrcPattern::Any,
            Want::Src(w) => simnet::SrcPattern::Is(w),
        }
    }
}

/// Tag selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WantTag {
    /// Any tag.
    AnyTag,
    /// A specific tag.
    Tag(i32),
}

impl WantTag {
    fn pattern(self) -> simnet::TagPattern {
        match self {
            WantTag::AnyTag => simnet::TagPattern::Any,
            WantTag::Tag(t) => simnet::TagPattern::Is(t),
        }
    }
}

/// The per-process matching engine.
#[derive(Default)]
pub struct Progress {
    core: MatchCore<WireArrival>,
}

impl Progress {
    /// Create an empty engine.
    pub fn new() -> Progress {
        Progress::default()
    }

    /// Total unexpected messages across all contexts.
    pub fn unexpected_total(&self) -> usize {
        self.core.unexpected_len()
    }

    /// Batch-drain everything currently on the wire into the index
    /// (one mailbox lock per call).
    pub fn pump(&mut self, ctx: &RankCtx) -> SimResult<()> {
        self.core.pump(ctx)
    }

    /// Non-blocking match.
    pub fn try_match(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: Want,
        tag: WantTag,
    ) -> SimResult<Option<Pulled>> {
        Ok(self
            .core
            .try_match(ctx, ctx_id, src.pattern(), tag.pattern())?
            .map(Pulled::from))
    }

    /// Blocking match.
    pub fn match_wait(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: Want,
        tag: WantTag,
    ) -> SimResult<Pulled> {
        Ok(self
            .core
            .match_blocking(ctx, ctx_id, src.pattern(), tag.pattern())?
            .into())
    }

    /// Non-blocking peek (message stays queued).
    pub fn try_peek(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: Want,
        tag: WantTag,
    ) -> SimResult<Option<Pulled>> {
        Ok(self
            .core
            .try_peek(ctx, ctx_id, src.pattern(), tag.pattern())?
            .map(Pulled::from))
    }

    /// Blocking peek.
    pub fn peek_wait(
        &mut self,
        ctx: &RankCtx,
        ctx_id: u64,
        src: Want,
        tag: WantTag,
    ) -> SimResult<Pulled> {
        Ok(self
            .core
            .peek_blocking(ctx, ctx_id, src.pattern(), tag.pattern())?
            .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simnet::{ClusterSpec, Fabric, NoiseModel};
    use std::rc::Rc;
    use std::sync::Arc;

    fn pair() -> (Rc<RankCtx>, Rc<RankCtx>) {
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        (
            Rc::new(RankCtx::new(
                0,
                spec.clone(),
                ep0,
                NoiseModel::disabled().stream_for_rank(0),
            )),
            Rc::new(RankCtx::new(
                1,
                spec,
                ep1,
                NoiseModel::disabled().stream_for_rank(1),
            )),
        )
    }

    fn send(c: &RankCtx, dst: usize, ctx_id: u64, tag: i32, data: &[u8]) {
        c.endpoint()
            .send_raw(dst, ctx_id, tag, Bytes::copy_from_slice(data), c)
            .unwrap();
    }

    #[test]
    fn buckets_isolate_contexts() {
        let (c0, c1) = pair();
        send(&c0, 1, 10, 0, b"ctx ten");
        send(&c0, 1, 20, 0, b"ctx twenty");
        let mut eng = Progress::new();
        let got = eng
            .try_match(&c1, 20, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .unwrap();
        assert_eq!(&got.env.payload[..], b"ctx twenty");
        assert_eq!(eng.unexpected_total(), 1);
        let got = eng
            .try_match(&c1, 10, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .unwrap();
        assert_eq!(&got.env.payload[..], b"ctx ten");
    }

    #[test]
    fn order_counter_is_global() {
        let (c0, c1) = pair();
        send(&c0, 1, 10, 0, b"a");
        send(&c0, 1, 20, 0, b"b");
        send(&c0, 1, 10, 0, b"c");
        let mut eng = Progress::new();
        eng.pump(&c1).unwrap();
        let x = eng
            .try_match(&c1, 10, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .unwrap();
        let y = eng
            .try_match(&c1, 20, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .unwrap();
        let z = eng
            .try_match(&c1, 10, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .unwrap();
        assert!(x.order < y.order && y.order < z.order);
        assert_eq!(&z.env.payload[..], b"c");
    }

    #[test]
    fn tag_and_src_filters() {
        let (c0, c1) = pair();
        send(&c0, 1, 5, 1, b"one");
        send(&c0, 1, 5, 2, b"two");
        let mut eng = Progress::new();
        assert!(eng
            .try_match(&c1, 5, Want::Src(0), WantTag::Tag(3))
            .unwrap()
            .is_none());
        let two = eng
            .try_match(&c1, 5, Want::Src(0), WantTag::Tag(2))
            .unwrap()
            .unwrap();
        assert_eq!(&two.env.payload[..], b"two");
        let one = eng
            .match_wait(&c1, 5, Want::Src(0), WantTag::AnyTag)
            .unwrap();
        assert_eq!(&one.env.payload[..], b"one");
    }

    #[test]
    fn peek_preserves_queue() {
        let (c0, c1) = pair();
        send(&c0, 1, 5, 1, b"stay");
        let mut eng = Progress::new();
        assert!(eng
            .try_peek(&c1, 5, Want::AnySrc, WantTag::AnyTag)
            .unwrap()
            .is_some());
        assert_eq!(eng.unexpected_total(), 1);
        let got = eng
            .peek_wait(&c1, 5, Want::Src(0), WantTag::Tag(1))
            .unwrap();
        assert_eq!(&got.env.payload[..], b"stay");
        assert_eq!(eng.unexpected_total(), 1);
    }
}
