//! # mpich-sim — an MPICH-flavoured MPI implementation
//!
//! One of the two **vendor MPI libraries** of the reproduction (the other is
//! `ompi-sim`). Its job is to be a complete, working MPI with the MPICH
//! family's characteristic choices:
//!
//! * **Native ABI** ([`mpih`]): 32-bit *integer* handles with bit-packed
//!   kind/size fields, MPICH constant values (`MPI_ANY_SOURCE = -2`, …) and
//!   MPICH's `MPI_Status` layout. This ABI is deliberately incompatible with
//!   `ompi-sim`'s pointer-style ABI — the incompatibility the paper's
//!   standard-ABI + Mukautuva stack exists to bridge.
//! * **Collective algorithms** ([`coll`]): Bruck and pairwise-exchange
//!   alltoall, binomial and van de Geijn broadcast, recursive-doubling and
//!   Rabenseifner allreduce — the MPICH lineage, with MPICH-like switchover
//!   thresholds ([`tuning::Tuning`]).
//! * **Its own progress engine** ([`engine`]): unexpected-message queue and
//!   (context, source, tag) matching above the raw transport.
//!
//! The library is instantiated per rank ([`MpichProcess::init`]) inside a
//! `simnet` world and charges all costs to the rank's virtual clock.
//!
//! This crate knows nothing about the standard ABI, Mukautuva, or MANA:
//! dependency-wise it sits at the bottom of the stool, exactly like a real
//! vendor MPI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coll;
pub mod engine;
pub mod kernels;
pub mod mpih;
pub mod objects;
pub mod proc;
pub mod tuning;

pub use objects::MpichUserFn;
pub use proc::MpichProcess;
pub use tuning::Tuning;
