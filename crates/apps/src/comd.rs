//! CoMD-mini: a classical molecular-dynamics proxy application.
//!
//! Reproduces the structure of CoMD (the paper's first real-world
//! workload): Lennard-Jones pair forces with a cutoff, cell-list
//! neighbour search, velocity-Verlet integration, spatial domain
//! decomposition with **halo exchange** and **atom migration** between
//! neighbouring ranks every step, and periodic energy reductions.
//!
//! Decomposition is 1-D slabs along x with periodic boundaries (CoMD's
//! communication pattern per axis); when slabs are thinner than the
//! cutoff — unavoidable at 48 ranks on a small box — the halo is gathered
//! in multiple forwarding hops so every rank still sees all atoms within
//! the cutoff. All state lives in checkpointable memory, so a run can be
//! checkpointed under one MPI library and finished under the other — the
//! physics is pure point-to-point dataflow plus diagnostic reductions,
//! hence bit-identical across stacks.
//!
//! Units are LJ-reduced (σ = ε = m = 1).

use mpi_abi::{Handle, ReduceOp};
use simnet::VirtualTime;
use stool::mpix::{bytes_to_f64s, f64s_to_bytes};
use stool::{AppCtx, MpiProgram, StoolResult};

const TAG_MIG_L: i32 = 31; // migration to the left neighbour
const TAG_MIG_R: i32 = 32; // migration to the right neighbour
const TAG_HALO_L: i32 = 33; // halo (ghost) atoms to the left neighbour
const TAG_HALO_R: i32 = 34; // halo to the right

/// The mini-MD program.
#[derive(Debug, Clone)]
pub struct CoMdMini {
    /// Atoms per box edge of the initial simple-cubic lattice
    /// (total atoms = nx³).
    pub nx: usize,
    /// Lattice spacing (reduced units). 1.2 gives a solid near equilibrium.
    pub lattice: f64,
    /// LJ cutoff radius.
    pub cutoff: f64,
    /// Time step.
    pub dt: f64,
    /// Number of steps.
    pub nsteps: u64,
    /// Initial temperature (reduced).
    pub temperature: f64,
    /// RNG seed for initial velocities.
    pub seed: u64,
    /// Energy diagnostic period (steps).
    pub print_rate: u64,
    /// Modelled compute cost per evaluated atom pair (ns); calibrates the
    /// Fig. 5 wall-clock scale.
    pub ns_per_pair: f64,
}

impl Default for CoMdMini {
    fn default() -> Self {
        CoMdMini {
            nx: 10,
            lattice: 1.2,
            cutoff: 2.5,
            dt: 0.004,
            nsteps: 100,
            temperature: 0.1,
            seed: 20260609,
            print_rate: 10,
            ns_per_pair: 25.0,
        }
    }
}

/// Per-rank mutable simulation state (positions/velocities/forces as flat
/// xyz triples), loaded from / stored to checkpointable memory each step.
struct State {
    pos: Vec<f64>,
    vel: Vec<f64>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn rand_pm1(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl CoMdMini {
    /// Global box edge length.
    pub fn box_len(&self) -> f64 {
        self.nx as f64 * self.lattice
    }

    /// Total atom count.
    pub fn natoms(&self) -> usize {
        self.nx * self.nx * self.nx
    }

    fn slab(&self, rank: usize, nranks: usize) -> (f64, f64) {
        let l = self.box_len() / nranks as f64;
        (rank as f64 * l, (rank + 1) as f64 * l)
    }

    /// Initial lattice + thermal velocities for the atoms whose x falls in
    /// this rank's slab. Velocities are a deterministic function of the
    /// *global* lattice index, so decomposition does not change physics.
    fn init_state(&self, rank: usize, nranks: usize) -> State {
        let (x_lo, x_hi) = self.slab(rank, nranks);
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        let mut vsum = [0.0f64; 3];
        // First pass over ALL atoms to compute the global COM velocity
        // (cheap: nx^3 RNG draws, identical on every rank).
        let mut seeds: u64 = self.seed | 1;
        let mut all_v = Vec::with_capacity(self.natoms() * 3);
        for _ in 0..self.natoms() {
            for vs in vsum.iter_mut() {
                let v = rand_pm1(&mut seeds) * (3.0 * self.temperature).sqrt();
                all_v.push(v);
                *vs += v;
            }
        }
        let vmean = [
            vsum[0] / self.natoms() as f64,
            vsum[1] / self.natoms() as f64,
            vsum[2] / self.natoms() as f64,
        ];
        let mut gid = 0usize;
        for ix in 0..self.nx {
            for _iy in 0..self.nx {
                for _iz in 0..self.nx {
                    let x = (ix as f64 + 0.5) * self.lattice;
                    if x >= x_lo && x < x_hi {
                        let iy = (gid / self.nx) % self.nx;
                        let iz = gid % self.nx;
                        pos.push(x);
                        pos.push((iy as f64 + 0.5) * self.lattice);
                        pos.push((iz as f64 + 0.5) * self.lattice);
                        for d in 0..3 {
                            vel.push(all_v[gid * 3 + d] - vmean[d]);
                        }
                    }
                    gid += 1;
                }
            }
        }
        State { pos, vel }
    }

    /// LJ force & potential between two atoms at squared distance `r2`.
    /// Returns (f_over_r, potential).
    fn lj(&self, r2: f64) -> (f64, f64) {
        let inv_r2 = 1.0 / r2;
        let s6 = inv_r2 * inv_r2 * inv_r2;
        let s12 = s6 * s6;
        let f_over_r = 24.0 * (2.0 * s12 - s6) * inv_r2;
        let pot = 4.0 * (s12 - s6);
        (f_over_r, pot)
    }

    /// Minimum-image displacement in y/z (periodic); x periodicity is
    /// handled by the halo shift.
    fn min_image(&self, mut d: f64) -> f64 {
        let l = self.box_len();
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }

    /// Compute forces with a cell list over local + ghost atoms.
    /// Returns (forces on local atoms, local potential energy, pairs
    /// evaluated).
    fn forces(&self, pos: &[f64], nlocal: usize) -> (Vec<f64>, f64, u64) {
        let ntot = pos.len() / 3;
        let l = self.box_len();
        let rc2 = self.cutoff * self.cutoff;

        // Cell grid over the bounding region of all atoms (local + ghosts),
        // cell edge ≥ cutoff.
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        for i in 0..ntot {
            x_min = x_min.min(pos[3 * i]);
            x_max = x_max.max(pos[3 * i]);
        }
        let x_span = (x_max - x_min).max(self.cutoff);
        // A sane decomposition keeps local + ghost extent within a few
        // cutoffs of the slab; a huge span means the integration blew up
        // (e.g. dt too large). Clamp the grid so a physics failure cannot
        // become an unbounded allocation; forces stay correct because
        // cell search only prunes pairs wider than one cell.
        let ncx = ((x_span / self.cutoff).floor().max(1.0) as usize).min(4096);
        let ncyz = (l / self.cutoff).floor().max(1.0) as usize;
        let cell_of = |i: usize| -> (usize, usize, usize) {
            let cx = (((pos[3 * i] - x_min) / x_span * ncx as f64) as usize).min(ncx - 1);
            let cy = ((pos[3 * i + 1] / l * ncyz as f64) as usize).min(ncyz - 1);
            let cz = ((pos[3 * i + 2] / l * ncyz as f64) as usize).min(ncyz - 1);
            (cx, cy, cz)
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); ncx * ncyz * ncyz];
        let idx = |cx: usize, cy: usize, cz: usize| (cx * ncyz + cy) * ncyz + cz;
        for i in 0..ntot {
            let (cx, cy, cz) = cell_of(i);
            cells[idx(cx, cy, cz)].push(i as u32);
        }

        let mut force = vec![0.0f64; nlocal * 3];
        let mut pe = 0.0f64;
        let mut pairs = 0u64;
        let pair = |i: usize, j: usize, force: &mut Vec<f64>, pe: &mut f64, pairs: &mut u64| {
            let dx = pos[3 * i] - pos[3 * j];
            let dy = self.min_image(pos[3 * i + 1] - pos[3 * j + 1]);
            let dz = self.min_image(pos[3 * i + 2] - pos[3 * j + 2]);
            let r2 = dx * dx + dy * dy + dz * dz;
            *pairs += 1;
            if r2 >= rc2 || r2 == 0.0 {
                return;
            }
            let (f_over_r, pot) = self.lj(r2);
            if i < nlocal {
                force[3 * i] += f_over_r * dx;
                force[3 * i + 1] += f_over_r * dy;
                force[3 * i + 2] += f_over_r * dz;
            }
            if j < nlocal {
                force[3 * j] -= f_over_r * dx;
                force[3 * j + 1] -= f_over_r * dy;
                force[3 * j + 2] -= f_over_r * dz;
            }
            // Full PE for local-local pairs, half for local-ghost (the
            // ghost's owner accounts the other half).
            if i < nlocal && j < nlocal {
                *pe += pot;
            } else {
                *pe += pot / 2.0;
            }
        };

        for cx in 0..ncx {
            for cy in 0..ncyz {
                for cz in 0..ncyz {
                    let base = &cells[idx(cx, cy, cz)];
                    // Pairs within the cell.
                    for (a, &i) in base.iter().enumerate() {
                        for &j in &base[a + 1..] {
                            let (i, j) = (i as usize, j as usize);
                            if i < nlocal || j < nlocal {
                                pair(i.min(j), i.max(j), &mut force, &mut pe, &mut pairs);
                            }
                        }
                    }
                    // Pairs with forward half of the neighbourhood (no
                    // double counting); y/z wrap periodically, x does not
                    // (ghost slabs extend the x range).
                    for (ddx, ddy, ddz) in FORWARD_NEIGHBOURS {
                        let nx = cx as isize + ddx;
                        if nx < 0 || nx >= ncx as isize {
                            continue;
                        }
                        let ny = (cy as isize + ddy).rem_euclid(ncyz as isize) as usize;
                        let nz = (cz as isize + ddz).rem_euclid(ncyz as isize) as usize;
                        let other = &cells[idx(nx as usize, ny, nz)];
                        if std::ptr::eq(base, other) {
                            continue; // degenerate grid (ncyz == 1 wraps onto itself)
                        }
                        for &i in base {
                            for &j in other {
                                let (i, j) = (i as usize, j as usize);
                                if i < nlocal || j < nlocal {
                                    pair(i, j, &mut force, &mut pe, &mut pairs);
                                }
                            }
                        }
                    }
                }
            }
        }
        (force, pe, pairs)
    }
}

/// The 13 forward neighbour offsets of a 3×3×3 stencil.
const FORWARD_NEIGHBOURS: [(isize, isize, isize); 13] = [
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (0, 0, 1),
];

/// Exchange a variable-length f64 payload with a neighbour pair
/// (send to `dst`, receive from `src`) using probe-then-recv sizing.
fn exchange(
    app: &mut AppCtx<'_>,
    send: &[f64],
    dst: i32,
    src: i32,
    tag: i32,
) -> StoolResult<Vec<f64>> {
    let mpi = app.mpi();
    mpi.send(
        &f64s_to_bytes(send),
        mpi_abi::Datatype::Double.handle(),
        dst,
        tag,
        Handle::COMM_WORLD,
    )?;
    let st = mpi.probe(src, tag, Handle::COMM_WORLD)?;
    let mut buf = vec![0u8; st.count_bytes as usize];
    mpi.recv(
        &mut buf,
        mpi_abi::Datatype::Double.handle(),
        src,
        tag,
        Handle::COMM_WORLD,
    )?;
    let mut out = vec![0.0; buf.len() / 8];
    bytes_to_f64s(&buf, &mut out);
    Ok(out)
}

impl MpiProgram for CoMdMini {
    fn name(&self) -> &'static str {
        "comd-mini"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let me = app.rank();
        let n = app.nranks();
        let l = self.box_len();
        let (x_lo, x_hi) = self.slab(me, n);
        let left = ((me + n - 1) % n) as i32;
        let right = ((me + 1) % n) as i32;
        // The two halo streams must never meet: each atom may be a ghost
        // from one direction only, which needs a gap between the reach of
        // the left- and right-going streams: L − slab − 2·cutoff > 0.
        let slab_w0 = l / n as f64;
        if n > 1 && l <= slab_w0 + 2.0 * self.cutoff {
            return Err(stool::StoolError::App(format!(
                "comd: box {l:.2} too small for cutoff {} over {n} slabs                  (needs L > slab + 2*cutoff)",
                self.cutoff
            )));
        }

        if !app.mem.contains("comd.pos") {
            let s = self.init_state(me, n);
            let npos = s.pos.len();
            app.mem.f64s_mut("comd.pos", npos).copy_from_slice(&s.pos);
            app.mem.f64s_mut("comd.vel", npos).copy_from_slice(&s.vel);
            // The reference lattice the slab was seeded from: fixed for
            // the life of the run (like real CoMD's lattice/species
            // tables), so it is the part of the checkpoint image that
            // never changes between epochs.
            app.mem
                .f64s_mut("comd.lattice", npos)
                .copy_from_slice(&s.pos);
            // Initial forces.
            let (f, _, _) = self.forces(&s.pos, npos / 3);
            app.mem.f64s_mut("comd.force", npos).copy_from_slice(&f);
            app.mem.f64s_mut("comd.energy", 0);
        }

        for step in app.resume_step()..self.nsteps {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            let mut pos = app.mem.f64s("comd.pos").expect("init").to_vec();
            let mut vel = app.mem.f64s("comd.vel").expect("init").to_vec();
            let force = app.mem.f64s("comd.force").expect("init").to_vec();
            let mut nlocal = pos.len() / 3;

            // Velocity Verlet, first half-kick + drift.
            for i in 0..nlocal * 3 {
                vel[i] += 0.5 * self.dt * force[i];
            }
            for i in 0..nlocal {
                for d in 0..3 {
                    pos[3 * i + d] += self.dt * vel[3 * i + d];
                }
                // Periodic wrap in y/z; x wraps globally (the atom will
                // migrate if it left the slab).
                for d in [1, 2] {
                    if pos[3 * i + d] < 0.0 {
                        pos[3 * i + d] += l;
                    } else if pos[3 * i + d] >= l {
                        pos[3 * i + d] -= l;
                    }
                }
                if pos[3 * i] < 0.0 {
                    pos[3 * i] += l;
                } else if pos[3 * i] >= l {
                    pos[3 * i] -= l;
                }
            }

            // Atom migration: pack atoms that left the slab.
            let mut stay_pos = Vec::with_capacity(pos.len());
            let mut stay_vel = Vec::with_capacity(vel.len());
            let mut go_left = Vec::new();
            let mut go_right = Vec::new();
            for i in 0..nlocal {
                let x = pos[3 * i];
                let atom: Vec<f64> = (0..3)
                    .map(|d| pos[3 * i + d])
                    .chain((0..3).map(|d| vel[3 * i + d]))
                    .collect();
                if x >= x_lo && x < x_hi {
                    stay_pos.extend_from_slice(&atom[..3]);
                    stay_vel.extend_from_slice(&atom[3..]);
                } else {
                    // Shorter way around decides the direction (periodic).
                    let d_right = (x - x_hi).rem_euclid(l);
                    let d_left = (x_lo - x).rem_euclid(l);
                    if d_left <= d_right {
                        go_left.extend_from_slice(&atom);
                    } else {
                        go_right.extend_from_slice(&atom);
                    }
                }
            }
            let from_right = exchange(app, &go_left, left, right, TAG_MIG_L)?;
            let from_left = exchange(app, &go_right, right, left, TAG_MIG_R)?;
            for atom in from_right.chunks_exact(6).chain(from_left.chunks_exact(6)) {
                // Migration is single-hop: with any stable dt an atom moves
                // a tiny fraction of a slab per step, so landing outside
                // the neighbour's slab means the integration exploded.
                // Fail loudly rather than scatter atoms.
                let x = atom[0];
                if !(x >= x_lo && x < x_hi) {
                    return Err(stool::StoolError::App(format!(
                        "comd: migrated atom at x={x:.3e} missed slab                          [{x_lo:.3}, {x_hi:.3}) — unstable integration?"
                    )));
                }
                stay_pos.extend_from_slice(&atom[..3]);
                stay_vel.extend_from_slice(&atom[3..]);
            }
            pos = stay_pos;
            vel = stay_vel;
            nlocal = pos.len() / 3;

            // Halo gather: every atom within `cutoff` of a slab face must
            // become a ghost on the ranks it can interact with. When the
            // slab is thinner than the cutoff (48 slabs over a small box),
            // that spans several ranks, so ghosts are *forwarded* hop by
            // hop: each round sends own + previously received atoms that
            // are still within reach of the next rank over, with x
            // unwrapped by ±L at the periodic seam.
            let slab_w = l / n as f64;
            let hops = (self.cutoff / slab_w).ceil().max(1.0) as usize;
            let mut ghosts: Vec<f64> = Vec::new();
            // Left-going stream: atoms heading to lower-x ranks.
            let mut fwd_left: Vec<f64> = Vec::new();
            // Right-going stream.
            let mut fwd_right: Vec<f64> = Vec::new();
            for i in 0..nlocal {
                let x = pos[3 * i];
                if x < x_lo + self.cutoff {
                    fwd_left.extend_from_slice(&[x, pos[3 * i + 1], pos[3 * i + 2]]);
                }
                if x >= x_hi - self.cutoff {
                    fwd_right.extend_from_slice(&[x, pos[3 * i + 1], pos[3 * i + 2]]);
                }
            }
            for _hop in 0..hops {
                // Unwrap x across the periodic seam as the stream crosses.
                let mut send_left = fwd_left.clone();
                if me == 0 {
                    for g in send_left.chunks_exact_mut(3) {
                        g[0] += l;
                    }
                }
                let mut send_right = fwd_right.clone();
                if me == n - 1 {
                    for g in send_right.chunks_exact_mut(3) {
                        g[0] -= l;
                    }
                }
                let got_r = exchange(app, &send_left, left, right, TAG_HALO_L)?;
                let got_l = exchange(app, &send_right, right, left, TAG_HALO_R)?;
                // Everything received is within reach of this rank (the
                // sender filtered on *our* face); keep it, and forward the
                // part still within reach of the next rank over.
                fwd_left.clear();
                for g in got_r.chunks_exact(3) {
                    ghosts.extend_from_slice(g);
                    if g[0] < x_lo + self.cutoff {
                        fwd_left.extend_from_slice(g);
                    }
                }
                fwd_right.clear();
                for g in got_l.chunks_exact(3) {
                    ghosts.extend_from_slice(g);
                    if g[0] >= x_hi - self.cutoff {
                        fwd_right.extend_from_slice(g);
                    }
                }
            }
            let mut all_pos = pos.clone();
            all_pos.extend_from_slice(&ghosts);

            // Forces + second half-kick.
            let (new_force, pe_local, pairs) = self.forces(&all_pos, nlocal);
            app.compute(VirtualTime::from_micros_f64(
                pairs as f64 * self.ns_per_pair / 1000.0,
            ));
            for i in 0..nlocal * 3 {
                vel[i] += 0.5 * self.dt * new_force[i];
            }

            // Periodic energy diagnostics (the paper's workloads print
            // energies; we reduce and record them).
            if step % self.print_rate == 0 || step + 1 == self.nsteps {
                let ke_local: f64 = vel.iter().map(|v| 0.5 * v * v).sum();
                let ke = app
                    .pmpi()
                    .allreduce_f64(ke_local, ReduceOp::Sum, Handle::COMM_WORLD)?;
                let pe = app
                    .pmpi()
                    .allreduce_f64(pe_local, ReduceOp::Sum, Handle::COMM_WORLD)?;
                let series = app.mem.f64s_mut("comd.energy", 0);
                series.push(ke + pe);
                app.mem.set_f64("comd.ke", ke);
                app.mem.set_f64("comd.pe", pe);
            }

            let npos = pos.len();
            let mem_pos = app.mem.f64s_mut("comd.pos", 0);
            mem_pos.clear();
            mem_pos.extend_from_slice(&pos);
            let mem_vel = app.mem.f64s_mut("comd.vel", 0);
            mem_vel.clear();
            mem_vel.extend_from_slice(&vel);
            let mem_f = app.mem.f64s_mut("comd.force", 0);
            mem_f.clear();
            mem_f.extend_from_slice(&new_force);
            debug_assert_eq!(npos, nlocal * 3);
        }
        app.mem.set_u64(
            "comd.natoms_local",
            (app.mem.f64s("comd.pos").unwrap().len() / 3) as u64,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stool::{Session, Vendor};

    fn small() -> CoMdMini {
        // nx = 9 keeps L = 10.8 above the slab + 2*cutoff decomposition
        // bound even when the world is only 2 slabs wide.
        CoMdMini {
            nx: 9,
            nsteps: 20,
            print_rate: 5,
            ..CoMdMini::default()
        }
    }

    #[test]
    fn atom_count_conserved() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(2)
            .ranks_per_node(2)
            .build();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .build()
            .unwrap();
        let md = small();
        let out = session.launch(&md).unwrap();
        let total: u64 = out
            .memories()
            .unwrap()
            .iter()
            .map(|m| m.get_u64("comd.natoms_local").unwrap())
            .sum();
        assert_eq!(total as usize, md.natoms());
    }

    #[test]
    fn static_lattice_stays_clean_across_steps() {
        // `comd.lattice` mirrors real CoMD's reference lattice/species
        // tables: written once at init, never again — the generation
        // hint the delta store uses to skip re-hashing it every epoch.
        // The dynamic state (positions, velocities, forces) must keep
        // moving its stamps.
        let cluster = simnet::ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(2)
            .build();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::Mpich)
            .build()
            .unwrap();
        let out = session.launch(&small()).unwrap();
        for mem in out.memories().unwrap() {
            let lattice_gen = mem.generation("comd.lattice").unwrap();
            for dynamic in ["comd.pos", "comd.vel", "comd.force"] {
                let g = mem.generation(dynamic).unwrap();
                assert!(
                    lattice_gen < g,
                    "{dynamic} ({g}) must outpace the static lattice ({lattice_gen})"
                );
            }
            assert!(
                lattice_gen <= 5,
                "comd.lattice was mutably touched mid-run: {lattice_gen}"
            );
        }
    }

    #[test]
    fn energy_approximately_conserved() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(1)
            .ranks_per_node(2)
            .build();
        let session = Session::builder()
            .cluster(cluster)
            .vendor(Vendor::OpenMpi)
            .build()
            .unwrap();
        let md = CoMdMini {
            nx: 9,
            nsteps: 60,
            print_rate: 10,
            ..CoMdMini::default()
        };
        let out = session.launch(&md).unwrap();
        let series = out.memories().unwrap()[0]
            .f64s("comd.energy")
            .unwrap()
            .to_vec();
        assert!(series.len() >= 2);
        let e0 = series[0];
        let emax_drift = series.iter().map(|e| (e - e0).abs()).fold(0.0f64, f64::max);
        // Velocity Verlet with dt=0.004 in a near-equilibrium LJ solid:
        // drift well under 2% of |E0|.
        assert!(
            emax_drift <= 0.02 * e0.abs().max(1.0),
            "energy drift {emax_drift} from E0={e0} (series {series:?})"
        );
    }

    #[test]
    fn physics_identical_across_vendors() {
        let cluster = simnet::ClusterSpec::builder()
            .nodes(2)
            .ranks_per_node(2)
            .build();
        let energy_for = |vendor| {
            let session = Session::builder()
                .cluster(cluster.clone())
                .vendor(vendor)
                .build()
                .unwrap();
            let out = session.launch(&small()).unwrap();
            out.memories().unwrap()[0]
                .f64s("comd.energy")
                .unwrap()
                .to_vec()
        };
        let a = energy_for(Vendor::Mpich);
        let b = energy_for(Vendor::OpenMpi);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Reductions of identical local terms in identical order up to
            // the allreduce algorithm; vendors may associate differently,
            // so compare to tight tolerance rather than bitwise.
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn lj_force_has_zero_crossing_at_sigma_two_sixth() {
        let md = small();
        // LJ force is zero at r = 2^(1/6) σ.
        let r0 = 2f64.powf(1.0 / 6.0);
        let (f, _) = md.lj(r0 * r0);
        assert!(f.abs() < 1e-10);
        // Repulsive inside, attractive outside.
        let (f_in, _) = md.lj(0.9 * 0.9);
        let (f_out, _) = md.lj(1.5 * 1.5);
        assert!(f_in > 0.0);
        assert!(f_out < 0.0);
    }
}
