//! Per-rank execution context: the virtual clock and its cost accounting.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::cluster::ClusterSpec;
use crate::envelope::Envelope;
use crate::fabric::Endpoint;
use crate::noise::NoiseStream;
use crate::time::VirtualTime;

/// Communication counters kept per rank (used by reports and by drain
/// diagnostics in the checkpointing layers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RankCounters {
    /// Messages sent by this rank.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Split-process context switches charged (MANA accounting).
    pub context_switches: u64,
    /// Injected straggler stalls served (fault-schedule slow-rank model).
    pub stalls: u64,
}

/// The execution context handed to each rank's thread.
///
/// Owns the rank's virtual clock. All methods take `&self`: the context is
/// thread-local to its rank (it is not `Sync`), so interior mutability via
/// `Cell`/`RefCell` is safe and keeps call sites ergonomic.
pub struct RankCtx {
    rank: usize,
    spec: Arc<ClusterSpec>,
    clock: Cell<u64>,
    noise: RefCell<NoiseStream>,
    endpoint: Endpoint,
    counters: Cell<RankCounters>,
}

impl RankCtx {
    /// Construct a context. Normally done by [`crate::World::run`];
    /// public for tests and custom launchers.
    pub fn new(
        rank: usize,
        spec: Arc<ClusterSpec>,
        endpoint: Endpoint,
        noise: NoiseStream,
    ) -> RankCtx {
        RankCtx {
            rank,
            spec,
            clock: Cell::new(0),
            noise: RefCell::new(noise),
            endpoint,
            counters: Cell::new(RankCounters::default()),
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the cluster.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.spec.nranks()
    }

    /// The cluster description.
    #[inline]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Shared handle to the cluster description.
    pub fn spec_arc(&self) -> Arc<ClusterSpec> {
        self.spec.clone()
    }

    /// The rank's fabric endpoint.
    #[inline]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Current virtual time on this rank.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        VirtualTime(self.clock.get())
    }

    /// Advance the clock by a span.
    #[inline]
    pub fn advance(&self, dt: VirtualTime) {
        self.clock.set(self.clock.get().saturating_add(dt.0));
    }

    /// Advance the clock to at least `t` (no-op if already past).
    #[inline]
    pub fn advance_to(&self, t: VirtualTime) {
        if t.0 > self.clock.get() {
            self.clock.set(t.0);
        }
    }

    /// Charge modelled computation time, scaled by the cluster's CPU speed.
    pub fn compute(&self, work: VirtualTime) {
        self.advance(work.scale(1.0 / self.spec.cpu_speed));
    }

    /// Sleep in virtual time (e.g. the 10-second window the paper's modified
    /// OSU benchmark uses to leave room for a checkpoint).
    pub fn sleep(&self, dt: VirtualTime) {
        self.advance(dt);
    }

    /// Injected straggler delay: stall this rank's virtual clock by `dt`
    /// and count the stall. Unlike [`RankCtx::compute`] the span is *not*
    /// scaled by the cluster CPU speed — a straggler models external slowness
    /// (an overheated node, a noisy neighbour), not application work. Used
    /// by the fault-schedule harness to model slow-but-alive ranks.
    pub fn stall(&self, dt: VirtualTime) {
        self.advance(dt);
        let mut c = self.counters.get();
        c.stalls += 1;
        self.counters.set(c);
    }

    /// When an envelope arrives at this rank: departure (which already
    /// includes the sender-side serialization, see
    /// [`crate::fabric::Endpoint::send_raw`]) plus the link's propagation
    /// latency, with the receiver's jitter factor applied.
    pub fn arrival_time(&self, env: &Envelope) -> VirtualTime {
        let link = self.spec.link_between(env.src, self.rank);
        let jittered = link.alpha.scale(self.noise.borrow_mut().factor());
        env.depart + jittered
    }

    /// Draw the next jitter factor directly (for costs other than messages,
    /// e.g. file-system writes in the checkpointing layer).
    pub fn jitter_factor(&self) -> f64 {
        self.noise.borrow_mut().factor()
    }

    /// Snapshot of this rank's counters.
    pub fn counters(&self) -> RankCounters {
        self.counters.get()
    }

    pub(crate) fn count_send(&self, bytes: usize) {
        let mut c = self.counters.get();
        c.msgs_sent += 1;
        c.bytes_sent += bytes as u64;
        self.counters.set(c);
    }

    /// Record a consumed (matched) incoming message. Called by vendor
    /// matching engines at the moment a message is delivered to the
    /// application; the raw fabric cannot know when matching happens.
    pub fn count_recv(&self, bytes: usize) {
        let mut c = self.counters.get();
        c.msgs_received += 1;
        c.bytes_received += bytes as u64;
        self.counters.set(c);
    }

    /// Record a split-process context switch (called by the MANA layer).
    pub fn count_context_switch(&self) {
        let mut c = self.counters.get();
        c.context_switches += 1;
        self.counters.set(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::fabric::Fabric;
    use crate::noise::NoiseModel;

    fn make_ctx() -> RankCtx {
        let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(1).build());
        let (_fabric, mut eps) = Fabric::new(&spec);
        RankCtx::new(
            0,
            spec,
            eps.pop().unwrap(),
            NoiseModel::disabled().stream_for_rank(0),
        )
    }

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let ctx = make_ctx();
        assert_eq!(ctx.now(), VirtualTime::ZERO);
        ctx.advance(VirtualTime::from_micros(3));
        assert_eq!(ctx.now(), VirtualTime::from_micros(3));
        ctx.advance_to(VirtualTime::from_micros(2)); // already past: no-op
        assert_eq!(ctx.now(), VirtualTime::from_micros(3));
        ctx.advance_to(VirtualTime::from_micros(10));
        assert_eq!(ctx.now(), VirtualTime::from_micros(10));
    }

    #[test]
    fn compute_scales_with_cpu_speed() {
        let spec = Arc::new(
            ClusterSpec::builder()
                .nodes(1)
                .ranks_per_node(1)
                .cpu_speed(2.0)
                .build(),
        );
        let (_fabric, mut eps) = Fabric::new(&spec);
        let ctx = RankCtx::new(
            0,
            spec,
            eps.pop().unwrap(),
            NoiseModel::disabled().stream_for_rank(0),
        );
        ctx.compute(VirtualTime::from_micros(10));
        // Twice as fast a CPU: half the time.
        assert_eq!(ctx.now(), VirtualTime::from_micros(5));
    }

    #[test]
    fn sleep_advances_clock() {
        let ctx = make_ctx();
        ctx.sleep(VirtualTime::from_secs(10));
        assert_eq!(ctx.now(), VirtualTime::from_secs(10));
    }

    #[test]
    fn counters_track_context_switches() {
        let ctx = make_ctx();
        assert_eq!(ctx.counters().context_switches, 0);
        ctx.count_context_switch();
        ctx.count_context_switch();
        assert_eq!(ctx.counters().context_switches, 2);
    }
}
