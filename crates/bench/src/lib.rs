//! # stool-bench — the paper's evaluation, regenerated
//!
//! One harness per figure of the paper's §5, plus ablations for the design
//! choices DESIGN.md calls out. Each `fig*` binary prints the same
//! rows/series the paper reports; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_alltoall` | Fig. 2 — OSU `MPI_Alltoall` latency, 4 configs |
//! | `fig3_bcast` | Fig. 3 — OSU `MPI_Bcast` latency |
//! | `fig4_allreduce` | Fig. 4 — OSU `MPI_Allreduce` latency |
//! | `fig5_apps` | Fig. 5 — CoMD & wave_mpi completion times |
//! | `fig6_restart` | Fig. 6 — checkpoint under Open MPI, restart under MPICH |
//! | `abl_fsgsbase` | kernel ≥ 5.9 vs CentOS 7 (the overhead's stated cause) |
//! | `abl_layers` | native vs +muk vs +mana vs +muk+mana |
//! | `abl_algorithms` | vendor collective algorithm families at fixed network |
//! | `abl_drain` | checkpoint drain cost vs in-flight messages |
//!
//! Criterion benches (`cargo bench`) measure the *real* (wall-clock) cost
//! of the building blocks: collectives on the simulator, handle
//! translation, checkpoint image encode/decode, and the applications.
//! The `store` and `scale` benches additionally emit `BENCH_ckpt.json` /
//! `BENCH_scale.json`, which the `benchgate` binary ([`gate`]) validates
//! strictly and compares against the committed baselines under
//! `benches/baselines/` — the CI perf-regression gate (see `docs/ci.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod figdata;
pub mod gate;
pub mod matrix;
pub mod report;

pub use configs::{paper_cluster, quick_cluster, ConfigKind};
pub use figdata::{
    fig5_data, fig6_data, fig6_data_via_store, osu_figure, AppBar, OsuFigure, RestartFigure,
};
pub use matrix::app_for;
pub use report::{print_fig5, print_osu_figure, print_restart_figure, Series};
