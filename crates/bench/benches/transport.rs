//! Criterion: real (wall-clock) cost of the transport fast paths.
//!
//! Records the headline numbers for the event-driven fabric rework:
//!
//! * `wakeup_latency` — round-trip time through a *blocked* receiver.
//!   `event_driven` sleeps on the mailbox condvar; `polling_baseline`
//!   reimplements the old transport's wait loop (non-blocking poll +
//!   200 µs sleep) in the bench so the ≥ 2× win stays measured even
//!   though the polling code is gone from the library.
//! * `p2p_rate` — messages/call through a drained mailbox:
//!   one-lock-per-message (`poll_each`) vs the batch drain the progress
//!   engines use (`batch_drain`), at 64 B (inline payload) and 4 KiB.
//! * `alltoall_drain` — 48 ranks each send to all peers; every rank then
//!   resolves its 47 exact-match receives through the indexed matcher
//!   (O(1) per receive, no unexpected-queue scan).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::matching::{MatchCore, SrcPattern, TagPattern};
use simnet::{ClusterSpec, Fabric, NoiseModel, RankCtx};
use std::sync::Arc;

/// The old transport's poll interval, reproduced for the baseline.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

fn ctxs_for(spec: &Arc<ClusterSpec>) -> Vec<RankCtx> {
    let (_fabric, eps) = Fabric::new(spec);
    eps.into_iter()
        .enumerate()
        .map(|(r, ep)| {
            RankCtx::new(
                r,
                spec.clone(),
                ep,
                NoiseModel::disabled().stream_for_rank(r),
            )
        })
        .collect()
}

/// Round-trip through an echo thread whose receive blocks. `polling`
/// selects the baseline wait loop instead of the condvar sleep.
fn pingpong_roundtrip(c: &mut Criterion, name: &str, polling: bool) {
    let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
    let (fabric, mut eps) = Fabric::new(&spec);
    let ep1 = eps.pop().unwrap();
    let ep0 = eps.pop().unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let echo_stop = stop.clone();
        let echo_spec = spec.clone();
        scope.spawn(move || {
            let ctx = RankCtx::new(1, echo_spec, ep1, NoiseModel::disabled().stream_for_rank(1));
            loop {
                let env = if polling {
                    // The pre-rework wait: non-blocking poll, then a real
                    // 200 µs sleep — wakeup latency is O(poll interval).
                    loop {
                        match ctx.endpoint().poll_raw() {
                            Ok(Some(env)) => break Ok(env),
                            Ok(None) => {
                                if echo_stop.load(Ordering::Relaxed) {
                                    break Err(());
                                }
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => break Err(()),
                        }
                    }
                } else {
                    ctx.endpoint().recv_raw().map_err(|_| ())
                };
                let Ok(env) = env else { break };
                if ctx
                    .endpoint()
                    .send_raw(0, env.ctx_id, env.tag, env.payload, &ctx)
                    .is_err()
                {
                    break;
                }
            }
        });

        let ctx0 = RankCtx::new(
            0,
            spec.clone(),
            ep0,
            NoiseModel::disabled().stream_for_rank(0),
        );
        let mut group = c.benchmark_group("wakeup_latency");
        group.sample_size(10);
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // Let the echo thread finish the previous round and
                    // actually block (condvar sleep or poll-interval
                    // sleep) before the timed send.
                    std::thread::sleep(POLL_INTERVAL / 2);
                    let t = std::time::Instant::now();
                    ctx0.endpoint()
                        .send_raw(1, 0, 0, Bytes::copy_from_slice(&[1u8; 8]), &ctx0)
                        .unwrap();
                    ctx0.endpoint().recv_raw().unwrap();
                    total += t.elapsed();
                }
                total
            });
        });
        group.finish();

        stop.store(true, Ordering::Relaxed);
        fabric.shutdown();
    });
}

fn wakeup_latency(c: &mut Criterion) {
    pingpong_roundtrip(c, "event_driven", false);
    pingpong_roundtrip(c, "polling_baseline", true);
}

fn p2p_rate(c: &mut Criterion) {
    let spec = Arc::new(ClusterSpec::builder().nodes(1).ranks_per_node(2).build());
    let ctxs = ctxs_for(&spec);
    let (tx, rx) = (&ctxs[0], &ctxs[1]);
    let mut group = c.benchmark_group("p2p_rate");
    group.sample_size(10);
    const BURST: usize = 1024;
    for payload_bytes in [64usize, 4096] {
        let payload = Bytes::from(vec![7u8; payload_bytes]);
        group.bench_with_input(
            BenchmarkId::new("poll_each", payload_bytes),
            &payload,
            |b, payload| {
                b.iter(|| {
                    for _ in 0..BURST {
                        tx.endpoint()
                            .send_raw(1, 0, 0, payload.clone(), tx)
                            .unwrap();
                    }
                    let mut n = 0;
                    while rx.endpoint().poll_raw().unwrap().is_some() {
                        n += 1;
                    }
                    assert_eq!(n, BURST);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_drain", payload_bytes),
            &payload,
            |b, payload| {
                let mut buf = Vec::with_capacity(BURST);
                b.iter(|| {
                    for _ in 0..BURST {
                        tx.endpoint()
                            .send_raw(1, 0, 0, payload.clone(), tx)
                            .unwrap();
                    }
                    buf.clear();
                    let n = rx.endpoint().drain_raw_into(&mut buf).unwrap();
                    assert_eq!(n, BURST);
                });
            },
        );
    }
    group.finish();
}

fn alltoall_drain(c: &mut Criterion) {
    let nranks = 48usize;
    let spec = Arc::new(
        ClusterSpec::builder()
            .nodes(4)
            .ranks_per_node(nranks / 4)
            .build(),
    );
    let ctxs = ctxs_for(&spec);
    let mut group = c.benchmark_group("alltoall_drain");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("indexed_exact", nranks), |b| {
        let mut cores: Vec<MatchCore> = (0..nranks).map(|_| MatchCore::new()).collect();
        b.iter(|| {
            for (src, ctx) in ctxs.iter().enumerate() {
                for dst in 0..nranks {
                    if src != dst {
                        ctx.endpoint()
                            .send_raw(
                                dst,
                                3,
                                src as i32,
                                Bytes::copy_from_slice(&[src as u8; 32]),
                                ctx,
                            )
                            .unwrap();
                    }
                }
            }
            // Every rank resolves all 47 peers by exact (ctx, src, tag):
            // each receive is a hash probe, never an unexpected-queue scan.
            for (dst, core) in cores.iter_mut().enumerate() {
                for src in 0..nranks {
                    if src != dst {
                        let m = core
                            .try_match(
                                &ctxs[dst],
                                3,
                                SrcPattern::Is(src),
                                TagPattern::Is(src as i32),
                            )
                            .unwrap()
                            .expect("message was sent");
                        assert_eq!(m.env.src, src);
                    }
                }
                assert_eq!(core.unexpected_len(), 0);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, wakeup_latency, p2p_rate, alltoall_drain);
criterion_main!(benches);
