//! Small statistics helpers used by the benchmark harnesses.
//!
//! The paper reports **median** latency over 5 repetitions with standard
//! deviations as error bars; these helpers produce exactly those statistics.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median (average of the two middle elements for even lengths).
/// Returns 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Sample standard deviation (n−1 denominator). Returns 0.0 for n < 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Summary statistics over repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a set of samples.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            median: median(xs),
            stddev: stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic data set is ~2.138.
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_collects_everything() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }
}
