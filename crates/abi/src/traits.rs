//! The standard ABI function table.
//!
//! [`MpiAbi`] is the Rust analogue of the symbol set an ABI-compliant
//! `libmpi.so` exports. A per-rank library instance implements it; an
//! "application binary" holds only a `&mut dyn MpiAbi` plus the encodings
//! from this crate — nothing vendor-specific — and is therefore *compiled
//! once* and runnable over:
//!
//! * the Mukautuva-like shim (`muk` crate) bound to either vendor library;
//! * the MANA wrapper (`mana-sim`), which itself wraps the shim and adds
//!   transparent checkpointing — the full three-legged stool.
//!
//! ## Deviations from the C API (deliberate, safety-driven)
//!
//! * Buffers are byte slices; the element **count is implied** by
//!   `buf.len() / datatype.size()` (a mismatch is [`crate::AbiError::Count`]).
//! * Nonblocking receives cannot safely borrow the caller's buffer across
//!   calls in safe Rust, so [`MpiAbi::wait`] returns the received payload as
//!   a reference-counted [`Bytes`] for receive requests (`None` for sends).
//!   This models the common eager-protocol path where the library owns the
//!   landing buffer; the portable layer in the `stool` crate copies into
//!   the application's typed buffer.
//! * `MPI_SUCCESS` is `Ok(_)`; error classes are [`crate::AbiError`] values whose
//!   integer codes are standardized in [`crate::error`].

use bytes::Bytes;

use crate::error::AbiResult;
use crate::handle::Handle;
use crate::status::AbiStatus;
use crate::version::AbiVersion;

/// A user-defined reduction function: combines `invec` into `inoutvec`
/// element-wise. `elem_size` is the datatype size in bytes; the function
/// must handle `invec.len() / elem_size` elements.
pub type UserOpFn = fn(invec: &[u8], inoutvec: &mut [u8], elem_size: usize);

/// A boxed ABI instance, as handed to application binaries.
pub type DynMpi = Box<dyn MpiAbi>;

/// The complete standard-ABI function table (one instance per rank).
///
/// A library instance is thread-local to its rank (like a real MPI library
/// initialized in a single-threaded process), so the trait does not require
/// `Send`.
///
/// Method order follows the MPI standard's chapter order: environment,
/// point-to-point, collectives, communicators, datatypes, ops.
pub trait MpiAbi {
    // ------------------------------------------------------------------
    // Environment & identity
    // ------------------------------------------------------------------

    /// Human-readable library identification (`MPI_Get_library_version`),
    /// e.g. `"mpich-sim 3.3.2 (native ABI: integer handles)"`. The Fig. 6
    /// harness uses this to prove which vendor is live after a restart.
    fn library_version(&self) -> String;

    /// The standard-ABI version this library implements.
    fn abi_version(&self) -> AbiVersion {
        AbiVersion::CURRENT
    }

    /// Release library resources. Further calls (except queries) fail with
    /// [`crate::AbiError::Finalized`].
    fn finalize(&mut self) -> AbiResult<()>;

    /// Whether [`MpiAbi::finalize`] has been called.
    fn is_finalized(&self) -> bool;

    /// Virtual wall-clock time in seconds (`MPI_Wtime`).
    fn wtime(&mut self) -> f64;

    // ------------------------------------------------------------------
    // Communicator queries
    // ------------------------------------------------------------------

    /// Number of ranks in `comm` (`MPI_Comm_size`).
    fn comm_size(&mut self, comm: Handle) -> AbiResult<i32>;

    /// This process's rank in `comm` (`MPI_Comm_rank`).
    fn comm_rank(&mut self, comm: Handle) -> AbiResult<i32>;

    /// Translate a rank in `comm` to the corresponding rank in the world
    /// communicator (the `MPI_Group_translate_ranks` use case; the MANA
    /// drain protocol depends on it).
    fn comm_translate_rank(&mut self, comm: Handle, rank: i32) -> AbiResult<i32>;

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`).
    fn send(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<()>;

    /// Blocking receive (`MPI_Recv`). `src`/`tag` accept the wildcards
    /// [`crate::consts::ANY_SOURCE`] / [`crate::consts::ANY_TAG`].
    /// Receiving a message longer than `buf` is [`crate::AbiError::Truncate`].
    fn recv(
        &mut self,
        buf: &mut [u8],
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<AbiStatus>;

    /// Nonblocking send (`MPI_Isend`); completes via [`MpiAbi::wait`].
    fn isend(
        &mut self,
        buf: &[u8],
        datatype: Handle,
        dest: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle>;

    /// Nonblocking receive (`MPI_Irecv`) for up to `max_bytes` bytes.
    /// The payload is returned by [`MpiAbi::wait`].
    fn irecv(
        &mut self,
        max_bytes: usize,
        datatype: Handle,
        src: i32,
        tag: i32,
        comm: Handle,
    ) -> AbiResult<Handle>;

    /// Block until a request completes (`MPI_Wait`). Returns the status
    /// and, for receive requests, the received payload.
    fn wait(&mut self, request: Handle) -> AbiResult<(AbiStatus, Option<Bytes>)>;

    /// Nonblocking completion test (`MPI_Test`).
    fn test(&mut self, request: Handle) -> AbiResult<Option<(AbiStatus, Option<Bytes>)>>;

    /// Complete all requests (`MPI_Waitall`), in index order.
    fn waitall(&mut self, requests: &[Handle]) -> AbiResult<Vec<(AbiStatus, Option<Bytes>)>> {
        requests.iter().map(|&r| self.wait(r)).collect()
    }

    /// Combined send+receive (`MPI_Sendrecv`), deadlock-free.
    /// The argument list mirrors the MPI binding one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        dest: i32,
        sendtag: i32,
        recvbuf: &mut [u8],
        src: i32,
        recvtag: i32,
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<AbiStatus>;

    /// Blocking probe (`MPI_Probe`): wait until a matching message is
    /// available and describe it without receiving it.
    fn probe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<AbiStatus>;

    /// Nonblocking probe (`MPI_Iprobe`). The MANA drain protocol is built
    /// on this, exactly as in the real system.
    fn iprobe(&mut self, src: i32, tag: i32, comm: Handle) -> AbiResult<Option<AbiStatus>>;

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// `MPI_Barrier`.
    fn barrier(&mut self, comm: Handle) -> AbiResult<()>;

    /// `MPI_Bcast`: `buf` is input at `root`, output elsewhere.
    fn bcast(&mut self, buf: &mut [u8], datatype: Handle, root: i32, comm: Handle)
        -> AbiResult<()>;

    /// `MPI_Reduce`: element-wise reduction into `recvbuf` at `root`.
    /// Non-root ranks may pass an empty `recvbuf`.
    fn reduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Allreduce`.
    fn allreduce(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Gather`: concatenate equal-size contributions at `root`
    /// (`recvbuf.len() == nranks * sendbuf.len()` at root, 0 elsewhere).
    fn gather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Scatter`: inverse of gather.
    fn scatter(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        root: i32,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Allgather`.
    fn allgather(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Alltoall`: personalized all-to-all exchange of equal blocks.
    fn alltoall(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        comm: Handle,
    ) -> AbiResult<()>;

    /// `MPI_Scan`: inclusive prefix reduction.
    fn scan(
        &mut self,
        sendbuf: &[u8],
        recvbuf: &mut [u8],
        datatype: Handle,
        op: Handle,
        comm: Handle,
    ) -> AbiResult<()>;

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_Comm_dup`: duplicate with a fresh context id (collective).
    fn comm_dup(&mut self, comm: Handle) -> AbiResult<Handle>;

    /// `MPI_Comm_split` (collective). Ranks passing
    /// [`crate::consts::UNDEFINED`] as `color` get [`Handle::COMM_NULL`].
    fn comm_split(&mut self, comm: Handle, color: i32, key: i32) -> AbiResult<Handle>;

    /// `MPI_Comm_free`.
    fn comm_free(&mut self, comm: Handle) -> AbiResult<()>;

    // ------------------------------------------------------------------
    // Datatypes
    // ------------------------------------------------------------------

    /// `MPI_Type_size` in bytes (predefined or derived).
    fn type_size(&mut self, datatype: Handle) -> AbiResult<usize>;

    /// `MPI_Type_contiguous`: a derived type of `count` copies of `oldtype`.
    fn type_contiguous(&mut self, count: i32, oldtype: Handle) -> AbiResult<Handle>;

    /// `MPI_Type_commit`.
    fn type_commit(&mut self, datatype: Handle) -> AbiResult<()>;

    /// `MPI_Type_free`.
    fn type_free(&mut self, datatype: Handle) -> AbiResult<()>;

    // ------------------------------------------------------------------
    // Reduction operations
    // ------------------------------------------------------------------

    /// `MPI_Op_create`: register a user-defined reduction.
    fn op_create(&mut self, function: UserOpFn, commute: bool) -> AbiResult<Handle>;

    /// `MPI_Op_free`.
    fn op_free(&mut self, op: Handle) -> AbiResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must stay object safe: application binaries hold
    /// `&mut dyn MpiAbi` and nothing else.
    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn MpiAbi) {}
        fn _boxed(_: DynMpi) {}
    }
}
