//! The asynchronous delta-checkpoint store: epoch chains of content-hashed
//! blocks.
//!
//! `WorldImage::save_dir` writes every rank's full image on the rank's
//! critical path, so checkpoint latency scales with total image size even
//! when almost nothing changed since the previous epoch. This module is the
//! layer between the coordinator and the filesystem that removes both
//! costs:
//!
//! * **Asynchrony** — a [`StoreWriter`] is attached to the coordinator as
//!   an [`crate::coordinator::ImageSink`]. At the final rendezvous barrier
//!   the round leader hands the complete set of [`RankImage`]s to the
//!   writer's bounded queue (the double buffer) and every rank resumes
//!   computing; a background thread performs the chunking, hashing and I/O.
//! * **Deltas** — each section of each rank image is chunked into blocks
//!   with *content-defined* boundaries (Gear rolling hash, FastCDC-style
//!   min/max bounds), identified by a 128-bit content hash. An epoch
//!   writes only the blocks that are not already present in the current
//!   chain; unchanged blocks are *references* to the epoch that first
//!   wrote them. Content-defined boundaries make dedup robust to
//!   insertions: when a rank's arrays grow or shrink between epochs (atom
//!   migration, appended diagnostics), only the blocks near the edit
//!   change, not every block downstream of the shift.
//!
//! # On-disk chain format
//!
//! ```text
//! store_dir/
//!   epoch_000001/            # a FULL epoch (chain base)
//!     blocks.bin             #   concatenated new blocks, referenced by offset
//!     manifest.bin           #   checksummed manifest (see below)
//!   epoch_000002/            # a DELTA epoch
//!     blocks.bin             #   only the blocks that changed
//!     manifest.bin
//!   epoch_000003.tmp/        # an interrupted commit (ignored, cleaned up)
//! ```
//!
//! The manifest lists, for every rank and section, the ordered block
//! references `(content key, source epoch, offset, length, CRC32)` that
//! reconstruct the section. A manifest is self-contained: restart loads
//! exactly one manifest and then walks the chain only to fetch block bytes
//! from the `blocks.bin` files it references. Every block is CRC32-checked
//! on read, so corruption is reported as the exact `(epoch, offset)` that
//! rotted — never silently loaded. Commits are crash-safe: an epoch is
//! assembled in an `epoch_NNNNNN.tmp` directory and atomically renamed
//! into place, so a torn write can never be half-parsed.
//!
//! # Retention and GC
//!
//! After [`StoreConfig::max_chain`] consecutive deltas the next epoch is
//! written as a fresh **full base**, bounding how long any restart chain
//! can grow. After each commit, epochs beyond the newest
//! [`StoreConfig::retain_epochs`] restorable epochs are deleted — except
//! those still referenced by a retained manifest (a delta keeps its base
//! alive), so every retained epoch stays restorable.
//!
//! # Cross-vendor restart
//!
//! The chain stores vendor-neutral [`RankImage`]s, so the paper's headline
//! scenario holds end to end: checkpoint epochs under the MPICH engine,
//! kill the world, reopen the chain and restart the reconstructed
//! [`WorldImage`] under the Open MPI engine through the Mukautuva shim.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use crate::codec::{crc32, fnv1a, fnv1a_seeded, CodecError, Reader, Writer};
use crate::coordinator::ImageSink;
use crate::image::{ImageError, RankImage, WorldImage};

const MANIFEST_MAGIC: u64 = 0x434B_5054_4348_4E31; // "CKPTCHN1"
const MANIFEST_VERSION: u64 = 1;

/// Tunables of the delta store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Target mean block size for content-defined chunking (bytes);
    /// actual blocks stay within `[block_size/4, 4*block_size]`. Smaller
    /// blocks find more unchanged data; larger blocks mean less manifest
    /// overhead.
    pub block_size: usize,
    /// Keep this many of the newest restorable epochs; older epochs are
    /// garbage-collected unless a retained manifest still references them.
    pub retain_epochs: usize,
    /// Maximum consecutive delta epochs before a fresh full base is
    /// written (bounds restart chain length).
    pub max_chain: usize,
    /// Threads used to chunk and hash rank images in parallel during a
    /// commit.
    pub writer_threads: usize,
    /// Submit queue depth of the background writer (the double buffer):
    /// ranks block on submit only when this many epochs are already
    /// waiting.
    pub queue_depth: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            block_size: 4096,
            retain_epochs: 4,
            max_chain: 8,
            writer_threads: 2,
            queue_depth: 2,
        }
    }
}

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The operation ("create", "read", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified (keeps the error cloneable).
        msg: String,
    },
    /// An epoch manifest failed to decode (truncated or corrupted).
    Manifest {
        /// The epoch whose manifest broke.
        epoch: u64,
        /// The codec-level cause.
        source: CodecError,
    },
    /// A block's CRC32 did not match its manifest entry.
    BlockCorrupt {
        /// The epoch being loaded.
        epoch: u64,
        /// The epoch whose `blocks.bin` holds the rotten block.
        src_epoch: u64,
        /// Byte offset of the block within that file.
        offset: u64,
        /// The rank whose section was being reconstructed.
        rank: usize,
        /// The section name.
        section: String,
    },
    /// A referenced epoch directory does not exist (GC'd or never written).
    MissingEpoch {
        /// The epoch that is gone.
        epoch: u64,
    },
    /// A submitted world image is malformed (mixed epochs, sparse ranks).
    InconsistentImage(String),
    /// The store holds no epochs.
    Empty,
    /// The background writer was shut down.
    Closed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, msg } => write!(f, "{op} {}: {msg}", path.display()),
            StoreError::Manifest { epoch, source } => {
                write!(f, "epoch {epoch} manifest: {source}")
            }
            StoreError::BlockCorrupt {
                epoch,
                src_epoch,
                offset,
                rank,
                section,
            } => write!(
                f,
                "epoch {epoch}, rank {rank}, section {section}: block at \
                 epoch {src_epoch} offset {offset} failed its CRC32 check"
            ),
            StoreError::MissingEpoch { epoch } => {
                write!(f, "referenced epoch {epoch} is missing from the chain")
            }
            StoreError::InconsistentImage(m) => write!(f, "inconsistent world image: {m}"),
            StoreError::Empty => write!(f, "checkpoint store holds no epochs"),
            StoreError::Closed => write!(f, "checkpoint store writer is shut down"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Manifest { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    fn io(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            msg: e.to_string(),
        }
    }

    /// Fold into the image-layer error type (threaded through
    /// `CkptError::Image` by the coordinator).
    pub fn into_image_error(self, epoch: u64) -> ImageError {
        ImageError::Store {
            epoch,
            msg: self.to_string(),
        }
    }
}

/// 128-bit content identity of a block: two differently-seeded FNV-1a
/// streams. A key collision would dedup distinct content (the manifest
/// would reference the older block, whose bytes pass their own CRC), so
/// the collision risk is *accepted*, not detected — acceptable because
/// the streams disagree on any single-byte difference and the joint
/// collision odds at simulation scales are negligible.
type BlockKey = (u64, u64);

/// Where a block's bytes live on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockLoc {
    /// The epoch whose `blocks.bin` holds the bytes.
    epoch: u64,
    /// Byte offset within that file.
    offset: u64,
    /// Block length in bytes.
    len: u32,
    /// CRC32 of the block bytes.
    crc: u32,
}

/// One chunked block of a section, before dedup placement.
struct ChunkRec {
    key: BlockKey,
    crc: u32,
    start: usize,
    len: usize,
}

/// A section's ordered block references inside a manifest.
type SectionRefs = (String, Vec<(BlockKey, BlockLoc)>);

/// One rank's chunked sections, as produced by the writer pool.
type RankChunks = Vec<(String, Vec<ChunkRec>)>;

/// In-memory form of one epoch's manifest.
struct Manifest {
    epoch: u64,
    full: bool,
    vendor_hint: String,
    /// Per rank: the `RankImage` header plus its sections' block refs.
    ranks: Vec<(usize, usize, u64, Vec<SectionRefs>)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(MANIFEST_MAGIC);
        w.u64(MANIFEST_VERSION);
        w.u64(self.epoch);
        w.u8(self.full as u8);
        w.string(&self.vendor_hint);
        w.u64(self.ranks.len() as u64);
        for (rank, nranks, epoch, sections) in &self.ranks {
            w.u64(*rank as u64);
            w.u64(*nranks as u64);
            w.u64(*epoch);
            w.u64(sections.len() as u64);
            for (name, blocks) in sections {
                w.string(name);
                w.u64(blocks.len() as u64);
                for (key, loc) in blocks {
                    w.u64(key.0);
                    w.u64(key.1);
                    w.u64(loc.epoch);
                    w.u64(loc.offset);
                    w.u32(loc.len);
                    w.u32(loc.crc);
                }
            }
        }
        w.finish()
    }

    fn decode(buf: &[u8]) -> Result<Manifest, CodecError> {
        let mut r = Reader::checked(buf)?;
        r.expect_magic(MANIFEST_MAGIC)?;
        r.expect_magic(MANIFEST_VERSION)?;
        let epoch = r.u64()?;
        let full = r.u8()? != 0;
        let vendor_hint = r.string()?;
        let nranks = r.u64()?;
        if nranks > 1 << 20 {
            return Err(CodecError::LengthOutOfBounds(nranks));
        }
        let mut ranks = Vec::with_capacity(nranks as usize);
        for _ in 0..nranks {
            let rank = r.u64()? as usize;
            let world = r.u64()? as usize;
            let rank_epoch = r.u64()?;
            let nsections = r.u64()?;
            if nsections > 4096 {
                return Err(CodecError::LengthOutOfBounds(nsections));
            }
            let mut sections = Vec::with_capacity(nsections as usize);
            for _ in 0..nsections {
                let name = r.string()?;
                let nblocks = r.u64()?;
                if nblocks > 1 << 32 {
                    return Err(CodecError::LengthOutOfBounds(nblocks));
                }
                let mut blocks = Vec::with_capacity(nblocks as usize);
                for _ in 0..nblocks {
                    let key = (r.u64()?, r.u64()?);
                    let loc = BlockLoc {
                        epoch: r.u64()?,
                        offset: r.u64()?,
                        len: r.u32()?,
                        crc: r.u32()?,
                    };
                    blocks.push((key, loc));
                }
                sections.push((name, blocks));
            }
            ranks.push((rank, world, rank_epoch, sections));
        }
        Ok(Manifest {
            epoch,
            full,
            vendor_hint,
            ranks,
        })
    }
}

/// What one committed epoch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// The chain sequence number assigned to the commit.
    pub epoch: u64,
    /// Whether it was written as a full base (vs a delta).
    pub full: bool,
    /// Logical image payload (what a full-image write would cost).
    pub image_bytes: u64,
    /// Bytes actually written to disk (new blocks + manifest).
    pub bytes_written: u64,
    /// Blocks referenced by the epoch in total.
    pub blocks_total: u64,
    /// Blocks newly written by the epoch.
    pub blocks_new: u64,
}

/// The synchronous store core: chunking, dedup, chain layout, GC, restore.
/// Wrap it in a [`StoreWriter`] to take it off the ranks' critical path.
pub struct DeltaStore {
    dir: PathBuf,
    config: StoreConfig,
    /// Committed epochs, ascending.
    epochs: Vec<u64>,
    /// Consecutive delta epochs since the last full base.
    chain_len: usize,
    /// Content index of the chain head: every block the latest epoch
    /// references, so the next commit can dedup against the live image.
    index: HashMap<BlockKey, BlockLoc>,
    /// Stats of the commits performed by this handle.
    stats: Vec<EpochStats>,
}

impl DeltaStore {
    /// Open (or initialize) a store directory with default tunables.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DeltaStore, StoreError> {
        DeltaStore::open_with(dir, StoreConfig::default())
    }

    /// Open (or initialize) a store directory. Leftover `*.tmp` epoch
    /// directories from interrupted commits are removed; committed epochs
    /// are discovered and the chain head's content index is rebuilt so
    /// subsequent commits continue the delta chain.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<DeltaStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", &dir, e))?;
        let mut epochs = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::io("read dir", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir", &dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("epoch_") {
                if let Some(stem) = rest.strip_suffix(".tmp") {
                    // An interrupted commit: never renamed, safe to drop.
                    if stem.chars().all(|c| c.is_ascii_digit()) {
                        std::fs::remove_dir_all(entry.path())
                            .map_err(|e| StoreError::io("remove tmp", &entry.path(), e))?;
                    }
                } else if rest.chars().all(|c| c.is_ascii_digit()) {
                    if let Ok(e) = rest.parse::<u64>() {
                        epochs.push(e);
                    }
                }
            }
        }
        epochs.sort_unstable();
        let mut store = DeltaStore {
            dir,
            config: StoreConfig {
                block_size: config.block_size.max(1),
                retain_epochs: config.retain_epochs.max(1),
                writer_threads: config.writer_threads.max(1),
                queue_depth: config.queue_depth.max(1),
                ..config
            },
            epochs,
            chain_len: 0,
            index: HashMap::new(),
            stats: Vec::new(),
        };
        if let Some(&latest) = store.epochs.last() {
            let manifest = store.read_manifest(latest)?;
            for (_, _, _, sections) in &manifest.ranks {
                for (_, blocks) in sections {
                    for &(key, loc) in blocks {
                        store.index.insert(key, loc);
                    }
                }
            }
            // Chain length = epochs since the newest full base.
            store.chain_len = 0;
            for &e in store.epochs.iter().rev() {
                let m = if e == latest {
                    manifest.full
                } else {
                    store.read_manifest(e)?.full
                };
                if m {
                    break;
                }
                store.chain_len += 1;
            }
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The tunables in force.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Committed epochs, ascending (restorable ones after GC).
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The newest committed epoch.
    pub fn latest(&self) -> Option<u64> {
        self.epochs.last().copied()
    }

    /// Stats of the commits performed through this handle, in order.
    pub fn stats(&self) -> &[EpochStats] {
        &self.stats
    }

    fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch_{epoch:06}"))
    }

    fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        std::fs::File::open(path)
            .map_err(|e| StoreError::io("open", path, e))?
            .read_to_end(&mut buf)
            .map_err(|e| StoreError::io("read", path, e))?;
        Ok(buf)
    }

    fn read_manifest(&self, epoch: u64) -> Result<Manifest, StoreError> {
        let dir = self.epoch_dir(epoch);
        if !dir.is_dir() {
            return Err(StoreError::MissingEpoch { epoch });
        }
        let buf = Self::read_file(&dir.join("manifest.bin"))?;
        Manifest::decode(&buf).map_err(|source| StoreError::Manifest { epoch, source })
    }

    /// The Gear table for content-defined chunking: one pseudorandom u64
    /// per byte value (splitmix64 of the byte).
    fn gear_table() -> &'static [u64; 256] {
        static TABLE: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u64; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *e = z ^ (z >> 31);
            }
            t
        })
    }

    /// Cut one section into content-defined chunks (Gear rolling hash,
    /// FastCDC-style bounds): boundaries follow the *content*, so an
    /// insertion or deletion early in a section shifts block boundaries
    /// only locally and the unchanged tail still dedups — exactly the
    /// shape of a rank whose arrays grow or shrink between epochs (e.g.
    /// atom migration). `avg` is the target mean chunk size; actual chunks
    /// stay within [avg/4, 4*avg].
    fn cut_points(data: &[u8], avg: usize) -> Vec<(usize, usize)> {
        let gear = Self::gear_table();
        let mask = (avg.next_power_of_two() as u64).wrapping_sub(1);
        let min = (avg / 4).max(1);
        let max = avg * 4;
        let mut cuts = Vec::with_capacity(data.len() / avg + 1);
        let mut start = 0;
        while start < data.len() {
            let mut h: u64 = 0;
            let hard_end = (start + max).min(data.len());
            let mut end = hard_end;
            let scan_from = (start + min).min(data.len());
            // Warm the rolling hash over the minimum region, then look
            // for a content-defined boundary.
            for (i, &b) in data[start..hard_end].iter().enumerate() {
                h = (h << 1).wrapping_add(gear[b as usize]);
                if start + i + 1 >= scan_from && h & mask == 0 {
                    end = start + i + 1;
                    break;
                }
            }
            cuts.push((start, end - start));
            start = end;
        }
        cuts
    }

    /// Chunk one rank image's sections into hashed, CRC'd block records.
    fn chunk_rank(img: &RankImage, block_size: usize) -> RankChunks {
        img.sections()
            .map(|(name, data)| {
                let recs = Self::cut_points(data, block_size)
                    .into_iter()
                    .map(|(start, len)| {
                        let chunk = &data[start..start + len];
                        ChunkRec {
                            key: (fnv1a(chunk), fnv1a_seeded(0x5EED, chunk)),
                            crc: crc32(chunk),
                            start,
                            len,
                        }
                    })
                    .collect();
                (name.to_string(), recs)
            })
            .collect()
    }

    /// Commit one epoch: write a full base or a delta against the chain
    /// head, atomically (temp directory + rename), then garbage-collect.
    ///
    /// The chain assigns its own monotonic sequence number (the manifest
    /// epoch and directory name); the coordinator-assigned epochs inside
    /// the [`RankImage`]s are preserved verbatim. The two diverge exactly
    /// when one chain spans several runs — coordinator epochs restart at 1
    /// after every restore, the chain keeps counting.
    pub fn commit(&mut self, image: &WorldImage) -> Result<EpochStats, StoreError> {
        // Validate the image: dense ranks, one consistent image epoch.
        if image.ranks.is_empty() {
            return Err(StoreError::InconsistentImage("no ranks".into()));
        }
        let img_epoch = image.ranks[0].epoch;
        for (i, r) in image.ranks.iter().enumerate() {
            if r.rank != i {
                return Err(StoreError::InconsistentImage(format!(
                    "slot {i} holds rank {}",
                    r.rank
                )));
            }
            if r.epoch != img_epoch {
                return Err(StoreError::InconsistentImage(format!(
                    "rank {i} is epoch {}, rank 0 is epoch {img_epoch}",
                    r.epoch
                )));
            }
            if r.nranks != image.ranks.len() {
                return Err(StoreError::InconsistentImage(format!(
                    "rank {i} claims a {}-rank world, image has {}",
                    r.nranks,
                    image.ranks.len()
                )));
            }
        }
        let epoch = self.epochs.last().map_or(1, |&l| l + 1);

        let full = self.epochs.is_empty() || self.chain_len >= self.config.max_chain;
        if full {
            // A base references nothing older: dedup only within itself.
            self.index.clear();
        }

        // Chunk + hash every rank, fanned out over the writer pool (the
        // CPU-heavy part; dedup placement below stays deterministic).
        let block_size = self.config.block_size;
        let threads = self.config.writer_threads.min(image.ranks.len()).max(1);
        let chunked: Vec<RankChunks> = if threads <= 1 {
            image
                .ranks
                .iter()
                .map(|r| Self::chunk_rank(r, block_size))
                .collect()
        } else {
            let per = image.ranks.len().div_ceil(threads);
            let mut parts: Vec<Vec<RankChunks>> = std::thread::scope(|s| {
                let handles: Vec<_> = image
                    .ranks
                    .chunks(per)
                    .map(|slice| {
                        s.spawn(move || {
                            slice
                                .iter()
                                .map(|r| Self::chunk_rank(r, block_size))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunker thread"))
                    .collect()
            });
            let mut all = Vec::with_capacity(image.ranks.len());
            for part in parts.drain(..) {
                all.extend(part);
            }
            all
        };

        // Deterministic dedup placement: walk ranks/sections/blocks in
        // order, appending unseen content to this epoch's blocks file.
        let mut blocks_buf: Vec<u8> = Vec::new();
        let mut blocks_total = 0u64;
        let mut blocks_new = 0u64;
        let mut ranks_manifest = Vec::with_capacity(image.ranks.len());
        for (img, sections) in image.ranks.iter().zip(chunked) {
            let mut section_refs: Vec<SectionRefs> = Vec::with_capacity(sections.len());
            for (name, recs) in sections {
                let data = img.section(&name).expect("section exists");
                let mut refs = Vec::with_capacity(recs.len());
                for rec in recs {
                    blocks_total += 1;
                    let loc = match self.index.get(&rec.key) {
                        Some(&loc) => loc,
                        None => {
                            let loc = BlockLoc {
                                epoch,
                                offset: blocks_buf.len() as u64,
                                len: rec.len as u32,
                                crc: rec.crc,
                            };
                            blocks_buf.extend_from_slice(&data[rec.start..rec.start + rec.len]);
                            self.index.insert(rec.key, loc);
                            blocks_new += 1;
                            loc
                        }
                    };
                    refs.push((rec.key, loc));
                }
                section_refs.push((name, refs));
            }
            ranks_manifest.push((img.rank, img.nranks, img.epoch, section_refs));
        }

        let manifest = Manifest {
            epoch,
            full,
            vendor_hint: image.vendor_hint.clone(),
            ranks: ranks_manifest,
        };
        let manifest_buf = manifest.encode();

        // Crash-safe commit: assemble in a temp dir, rename into place.
        let tmp = self.dir.join(format!("epoch_{epoch:06}.tmp"));
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp).map_err(|e| StoreError::io("remove tmp", &tmp, e))?;
        }
        std::fs::create_dir_all(&tmp).map_err(|e| StoreError::io("create tmp", &tmp, e))?;
        let write = |name: &str, data: &[u8]| -> Result<(), StoreError> {
            let path = tmp.join(name);
            let mut f =
                std::fs::File::create(&path).map_err(|e| StoreError::io("create", &path, e))?;
            f.write_all(data)
                .map_err(|e| StoreError::io("write", &path, e))?;
            f.sync_all().map_err(|e| StoreError::io("sync", &path, e))
        };
        write("blocks.bin", &blocks_buf)?;
        write("manifest.bin", &manifest_buf)?;
        let final_dir = self.epoch_dir(epoch);
        std::fs::rename(&tmp, &final_dir).map_err(|e| StoreError::io("rename", &final_dir, e))?;

        self.epochs.push(epoch);
        self.chain_len = if full { 0 } else { self.chain_len + 1 };
        self.gc();

        let stats = EpochStats {
            epoch,
            full,
            image_bytes: image.total_bytes() as u64,
            bytes_written: (blocks_buf.len() + manifest_buf.len()) as u64,
            blocks_total,
            blocks_new,
        };
        self.stats.push(stats);
        Ok(stats)
    }

    /// Retention: keep the newest `retain_epochs` epochs plus everything
    /// their manifests still reference (a delta keeps its base alive),
    /// delete the rest.
    ///
    /// Housekeeping failures are non-fatal: the epoch just committed is
    /// already durable, so a stale directory that cannot be read or
    /// removed right now stays listed and is retried on the next commit —
    /// GC must never tear down a run whose checkpoints are all intact.
    fn gc(&mut self) {
        if self.epochs.len() <= self.config.retain_epochs {
            return;
        }
        let kept: Vec<u64> = self.epochs[self.epochs.len() - self.config.retain_epochs..].to_vec();
        let mut live: BTreeSet<u64> = kept.iter().copied().collect();
        for &e in &kept {
            match self.read_manifest(e) {
                Ok(manifest) => {
                    for (_, _, _, sections) in &manifest.ranks {
                        for (_, blocks) in sections {
                            for (_, loc) in blocks {
                                live.insert(loc.epoch);
                            }
                        }
                    }
                }
                // Can't prove what this manifest references: skip GC
                // entirely rather than risk deleting a live base.
                Err(_) => return,
            }
        }
        let dir = self.dir.clone();
        self.epochs.retain(|e| {
            if live.contains(e) {
                return true;
            }
            match std::fs::remove_dir_all(dir.join(format!("epoch_{e:06}"))) {
                Ok(()) => false,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => false,
                // Deletion failed: keep it listed so the view matches the
                // disk and the next commit retries.
                Err(_) => true,
            }
        });
        // Prune the dedup index of blocks whose epochs are gone; without
        // this, a later commit could reference a deleted epoch and
        // produce a manifest that cannot be restored.
        let alive: BTreeSet<u64> = self.epochs.iter().copied().collect();
        self.index.retain(|_, loc| alive.contains(&loc.epoch));
    }

    /// Reconstruct the newest epoch's world image.
    pub fn load_latest(&self) -> Result<WorldImage, StoreError> {
        let epoch = self.latest().ok_or(StoreError::Empty)?;
        self.load_epoch(epoch)
    }

    /// Reconstruct one epoch's world image by walking the chain: read its
    /// manifest, fetch every referenced block (CRC32-verified) from the
    /// epochs that wrote it, and reassemble the rank sections.
    pub fn load_epoch(&self, epoch: u64) -> Result<WorldImage, StoreError> {
        let manifest = self.read_manifest(epoch)?;
        let mut files: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut ranks = Vec::with_capacity(manifest.ranks.len());
        for (slot, (rank, nranks, rank_epoch, sections)) in manifest.ranks.iter().enumerate() {
            if *rank != slot {
                return Err(StoreError::InconsistentImage(format!(
                    "manifest slot {slot} holds rank {rank}"
                )));
            }
            let mut img = RankImage::new(*rank, *nranks, *rank_epoch);
            for (name, blocks) in sections {
                let total: usize = blocks.iter().map(|(_, l)| l.len as usize).sum();
                let mut data = Vec::with_capacity(total);
                for (_, loc) in blocks {
                    let file = match files.entry(loc.epoch) {
                        std::collections::hash_map::Entry::Occupied(e) => &*e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            let dir = self.epoch_dir(loc.epoch);
                            if !dir.is_dir() {
                                return Err(StoreError::MissingEpoch { epoch: loc.epoch });
                            }
                            &*v.insert(Self::read_file(&dir.join("blocks.bin"))?)
                        }
                    };
                    let start = loc.offset as usize;
                    let end = start + loc.len as usize;
                    let corrupt = || StoreError::BlockCorrupt {
                        epoch,
                        src_epoch: loc.epoch,
                        offset: loc.offset,
                        rank: *rank,
                        section: name.clone(),
                    };
                    let slice = file.get(start..end).ok_or_else(corrupt)?;
                    if crc32(slice) != loc.crc {
                        return Err(corrupt());
                    }
                    data.extend_from_slice(slice);
                }
                img.put_section(name, data);
            }
            ranks.push(img);
        }
        Ok(WorldImage::new(manifest.vendor_hint, ranks))
    }

    /// Recompute per-epoch stats from the on-disk manifests (usable after
    /// a reopen, when [`DeltaStore::stats`] is empty). `bytes_written`
    /// counts the epoch's own files; `image_bytes` is the logical payload
    /// its manifest reconstructs.
    pub fn epoch_stats_on_disk(&self) -> Result<Vec<EpochStats>, StoreError> {
        let mut out = Vec::with_capacity(self.epochs.len());
        for &epoch in &self.epochs {
            let manifest = self.read_manifest(epoch)?;
            let dir = self.epoch_dir(epoch);
            let mut stats = EpochStats {
                epoch,
                full: manifest.full,
                image_bytes: 0,
                bytes_written: 0,
                blocks_total: 0,
                blocks_new: 0,
            };
            // A section may reference the same own-epoch block many times
            // (intra-epoch dedup); "new" counts distinct written blocks.
            let mut own = BTreeSet::new();
            for (_, _, _, sections) in &manifest.ranks {
                for (_, blocks) in sections {
                    for (_, loc) in blocks {
                        stats.blocks_total += 1;
                        stats.image_bytes += loc.len as u64;
                        if loc.epoch == epoch {
                            own.insert(loc.offset);
                        }
                    }
                }
            }
            stats.blocks_new = own.len() as u64;
            for name in ["blocks.bin", "manifest.bin"] {
                let path = dir.join(name);
                let meta =
                    std::fs::metadata(&path).map_err(|e| StoreError::io("stat", &path, e))?;
                stats.bytes_written += meta.len();
            }
            out.push(stats);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// The background writer
// ---------------------------------------------------------------------------

struct WriterState {
    queue: VecDeque<WorldImage>,
    in_flight: bool,
    closed: bool,
    error: Option<StoreError>,
    stats: Vec<EpochStats>,
}

struct WriterShared {
    state: Mutex<WriterState>,
    cv: Condvar,
    queue_depth: usize,
}

/// The asynchronous face of the store: a background thread owns a
/// [`DeltaStore`] and drains a bounded submit queue. Attach it to the
/// coordinator ([`crate::coordinator::Coordinator::attach_sink`]) and the
/// round leader hands each completed epoch over inside the rendezvous —
/// the ranks resume while chunking, hashing and I/O proceed here.
///
/// Backpressure is the double buffer: a submit blocks only when
/// [`StoreConfig::queue_depth`] epochs are already waiting, which bounds
/// memory at `queue_depth + 1` in-flight world images.
pub struct StoreWriter {
    shared: Arc<WriterShared>,
    worker: Mutex<Option<std::thread::JoinHandle<DeltaStore>>>,
}

impl StoreWriter {
    /// Open the store at `dir` and spawn the background writer.
    pub fn spawn(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<StoreWriter, StoreError> {
        let mut store = DeltaStore::open_with(dir, config)?;
        let shared = Arc::new(WriterShared {
            state: Mutex::new(WriterState {
                queue: VecDeque::new(),
                in_flight: false,
                closed: false,
                error: None,
                stats: Vec::new(),
            }),
            cv: Condvar::new(),
            queue_depth: store.config.queue_depth,
        });
        let worker_shared = shared.clone();
        let worker = std::thread::Builder::new()
            .name("ckpt-store-writer".into())
            .spawn(move || {
                loop {
                    let image = {
                        let mut st = worker_shared.state.lock().expect("writer lock");
                        loop {
                            if let Some(img) = st.queue.pop_front() {
                                st.in_flight = true;
                                break img;
                            }
                            if st.closed {
                                return store;
                            }
                            st = worker_shared.cv.wait(st).expect("writer wait");
                        }
                    };
                    // A slot just freed: wake blocked submitters early.
                    worker_shared.cv.notify_all();
                    let result = store.commit(&image);
                    let mut st = worker_shared.state.lock().expect("writer lock");
                    st.in_flight = false;
                    match result {
                        Ok(s) => st.stats.push(s),
                        Err(e) => {
                            st.error.get_or_insert(e);
                        }
                    }
                    worker_shared.cv.notify_all();
                }
            })
            .expect("spawn store writer");
        Ok(StoreWriter {
            shared,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Hand one epoch's world image to the background writer. Blocks only
    /// while the bounded queue is full (backpressure); a sticky writer
    /// error is returned to the caller and every later submitter.
    pub fn submit(&self, image: WorldImage) -> Result<(), StoreError> {
        let mut st = self.shared.state.lock().expect("writer lock");
        loop {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            if st.closed {
                return Err(StoreError::Closed);
            }
            if st.queue.len() < self.shared.queue_depth {
                st.queue.push_back(image);
                self.shared.cv.notify_all();
                return Ok(());
            }
            st = self.shared.cv.wait(st).expect("writer wait");
        }
    }

    /// Wait until every submitted epoch is durably committed (or the
    /// writer failed). Returns the sticky error, if any.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut st = self.shared.state.lock().expect("writer lock");
        while (!st.queue.is_empty() || st.in_flight) && st.error.is_none() {
            st = self.shared.cv.wait(st).expect("writer wait");
        }
        match &st.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Stats of the epochs committed so far, in commit order.
    pub fn stats(&self) -> Vec<EpochStats> {
        self.shared.state.lock().expect("writer lock").stats.clone()
    }

    /// Close the queue, drain it, join the worker and hand back the
    /// underlying [`DeltaStore`] (e.g. to restart from the chain).
    pub fn finish(self) -> Result<(DeltaStore, Vec<EpochStats>), StoreError> {
        self.flush()?;
        let store = self.shutdown().ok_or(StoreError::Closed)?;
        let stats = store.stats.clone();
        Ok((store, stats))
    }

    /// Mark closed and join the worker; idempotent.
    fn shutdown(&self) -> Option<DeltaStore> {
        {
            let mut st = self.shared.state.lock().expect("writer lock");
            st.closed = true;
            self.shared.cv.notify_all();
        }
        let handle = self.worker.lock().expect("worker lock").take()?;
        Some(handle.join().expect("store writer thread"))
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ImageSink for StoreWriter {
    fn submit(&self, image: WorldImage) -> Result<(), ImageError> {
        let epoch = image.ranks.first().map(|r| r.epoch).unwrap_or(0);
        StoreWriter::submit(self, image).map_err(|e| e.into_image_error(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stool_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Deterministic pseudorandom bytes (xorshift64*): realistic content
    /// that does not collapse under intra-epoch dedup the way constant
    /// runs would.
    fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    fn image(epoch: u64, nranks: usize, fill: u8, static_len: usize) -> WorldImage {
        let ranks = (0..nranks)
            .map(|r| {
                let mut img = RankImage::new(r, nranks, epoch);
                // "static" depends only on the rank: unchanged across
                // epochs. "hot" depends on `fill`: changes when it does.
                img.put_section("static", fill_bytes(r as u64 + 1, static_len));
                img.put_section("hot", fill_bytes((fill as u64) << 8 | r as u64, 600));
                img
            })
            .collect();
        WorldImage::new("MPICH".to_string(), ranks)
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            block_size: 128,
            retain_epochs: 3,
            max_chain: 4,
            writer_threads: 2,
            queue_depth: 2,
        }
    }

    #[test]
    fn full_then_delta_roundtrip() {
        let dir = tmp_dir("rt");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img1 = image(1, 3, 0x11, 3000);
        let img2 = image(2, 3, 0x22, 3000);
        let s1 = store.commit(&img1).unwrap();
        let s2 = store.commit(&img2).unwrap();
        assert!(s1.full && !s2.full);
        // The static sections dedup: the delta writes far fewer bytes.
        assert!(
            s2.bytes_written < s1.bytes_written / 2,
            "delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        assert!(s2.blocks_new < s2.blocks_total);
        assert_eq!(store.load_epoch(1).unwrap(), img1);
        assert_eq!(store.load_epoch(2).unwrap(), img2);
        assert_eq!(store.load_latest().unwrap(), img2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_epoch_writes_almost_nothing() {
        let dir = tmp_dir("ident");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        let img1 = image(1, 2, 0x33, 4000);
        let mut img2 = image(2, 2, 0x33, 4000);
        img2.vendor_hint = "Open MPI".to_string();
        let s1 = store.commit(&img1).unwrap();
        let s2 = store.commit(&img2).unwrap();
        assert_eq!(s2.blocks_new, 0, "no content changed");
        assert!(
            s2.bytes_written < s1.bytes_written / 3,
            "manifest-only delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        let back = store.load_epoch(2).unwrap();
        assert_eq!(back, img2);
        assert_eq!(back.vendor_hint, "Open MPI");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_rolls_over_to_full_base() {
        let dir = tmp_dir("roll");
        let cfg = StoreConfig {
            max_chain: 2,
            retain_epochs: 10,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let mut fulls = Vec::new();
        for e in 1..=6 {
            let s = store.commit(&image(e, 2, e as u8, 500)).unwrap();
            fulls.push(s.full);
        }
        // Base, two deltas, base, two deltas.
        assert_eq!(fulls, vec![true, false, false, true, false, false]);
        for e in 1..=6 {
            assert_eq!(store.load_epoch(e).unwrap(), image(e, 2, e as u8, 500));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_retains_restorable_epochs_and_their_bases() {
        let dir = tmp_dir("gc");
        let cfg = StoreConfig {
            retain_epochs: 2,
            max_chain: 8,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        for e in 1..=5 {
            store.commit(&image(e, 2, e as u8, 500)).unwrap();
        }
        // Epoch 1 is the base of the whole chain: it must survive GC even
        // though only {4, 5} are in the retention window.
        let kept = store.epochs().to_vec();
        assert!(kept.contains(&1), "base retained: {kept:?}");
        assert!(kept.contains(&4) && kept.contains(&5));
        assert!(
            !kept.contains(&2) || !kept.contains(&3),
            "middle GC'd: {kept:?}"
        );
        // Everything still advertised is restorable.
        for &e in store.epochs() {
            store.load_epoch(e).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recurring_content_after_gc_is_rewritten_not_dangled() {
        // Regression: content A -> B -> A with aggressive retention. After
        // GC deletes epoch 1, the dedup index must not hand epoch 3 a
        // reference into the deleted epoch — the recurring content has to
        // be rewritten so the committed epoch stays restorable.
        let dir = tmp_dir("regc");
        let cfg = StoreConfig {
            retain_epochs: 1,
            max_chain: 8,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let a1 = image(1, 2, 0xA0, 900);
        let b = image(2, 2, 0xB1, 900);
        let mut a2 = image(3, 2, 0xA0, 900);
        // Fully distinct content in the middle epoch: change "static" too.
        let b = {
            let mut img = b;
            for r in img.ranks.iter_mut() {
                let flipped: Vec<u8> = r.section("static").unwrap().iter().map(|x| !x).collect();
                r.put_section("static", flipped);
            }
            img
        };
        a2.ranks.iter_mut().for_each(|r| r.epoch = 3);
        store.commit(&a1).unwrap();
        store.commit(&b).unwrap();
        assert_eq!(store.epochs(), &[2], "epoch 1 GC'd");
        let s3 = store.commit(&a2).unwrap();
        assert!(s3.blocks_new > 0, "recurring content must be rewritten");
        assert_eq!(store.load_epoch(3).unwrap(), a2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_block_detected_by_crc() {
        let dir = tmp_dir("crc");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&image(1, 2, 0x44, 800)).unwrap();
        let blocks = dir.join("epoch_000001").join("blocks.bin");
        let mut buf = std::fs::read(&blocks).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        std::fs::write(&blocks, &buf).unwrap();
        match store.load_epoch(1) {
            Err(StoreError::BlockCorrupt {
                epoch: 1,
                src_epoch: 1,
                ..
            }) => {}
            other => panic!("expected BlockCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_detected_by_checksum() {
        let dir = tmp_dir("man");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        store.commit(&image(1, 2, 0x55, 300)).unwrap();
        let path = dir.join("epoch_000001").join("manifest.bin");
        let mut buf = std::fs::read(&path).unwrap();
        buf[10] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            store.load_epoch(1),
            Err(StoreError::Manifest { epoch: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_the_delta_chain() {
        let dir = tmp_dir("reopen");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 0x66, 1500)).unwrap();
            store.commit(&image(2, 2, 0x67, 1500)).unwrap();
        }
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.epochs(), &[1, 2]);
        let s3 = store.commit(&image(3, 2, 0x68, 1500)).unwrap();
        assert!(!s3.full, "reopened chain continues as deltas");
        assert!(s3.blocks_new < s3.blocks_total, "dedup vs reopened index");
        assert_eq!(store.load_epoch(3).unwrap(), image(3, 2, 0x68, 1500));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_commit_is_cleaned_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
            store.commit(&image(1, 2, 0x70, 400)).unwrap();
        }
        // Simulate a crash mid-commit: a temp epoch dir that never renamed.
        let torn = dir.join("epoch_000002.tmp");
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("blocks.bin"), b"half").unwrap();
        let store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        assert_eq!(store.epochs(), &[1], "torn epoch invisible");
        assert!(!torn.exists(), "torn tmp dir removed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inconsistent_images_rejected_and_chain_owns_its_sequence() {
        let dir = tmp_dir("mono");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        // Coordinator epochs restart across runs; the chain sequence keeps
        // counting regardless of what the images claim.
        let s1 = store.commit(&image(5, 2, 0x71, 100)).unwrap();
        let s2 = store.commit(&image(1, 2, 0x72, 100)).unwrap();
        assert_eq!((s1.epoch, s2.epoch), (1, 2));
        assert_eq!(store.load_epoch(2).unwrap().ranks[0].epoch, 1);
        let mut bad = image(6, 2, 0x73, 100);
        bad.ranks[1].epoch = 7;
        assert!(matches!(
            store.commit(&bad),
            Err(StoreError::InconsistentImage(_))
        ));
        let mut sparse = image(6, 2, 0x74, 100);
        sparse.ranks.swap(0, 1);
        assert!(matches!(
            store.commit(&sparse),
            Err(StoreError::InconsistentImage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_pool_commits_in_background_and_flushes() {
        let dir = tmp_dir("writer");
        let writer = StoreWriter::spawn(&dir, small_cfg()).unwrap();
        for e in 1..=3 {
            writer.submit(image(e, 3, e as u8, 1200)).unwrap();
        }
        writer.flush().unwrap();
        let stats = writer.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats[0].full && !stats[1].full && !stats[2].full);
        let (store, _) = writer.finish().unwrap();
        assert_eq!(store.load_latest().unwrap(), image(3, 3, 3, 1200));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_error_is_sticky_for_submitters() {
        let dir = tmp_dir("sticky");
        let writer = StoreWriter::spawn(&dir, small_cfg()).unwrap();
        writer.submit(image(1, 2, 0x11, 100)).unwrap();
        writer.flush().unwrap();
        // A malformed image fails in the background...
        let mut bad = image(2, 2, 0x12, 100);
        bad.ranks[1].epoch = 9;
        writer.submit(bad).unwrap();
        writer.flush().unwrap_err();
        // ...and every later submit sees the same error.
        let err = writer.submit(image(3, 2, 0x13, 100)).unwrap_err();
        assert!(matches!(err, StoreError::InconsistentImage(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cut_points_cover_and_respect_bounds() {
        for len in [0usize, 1, 31, 128, 5000] {
            let data = fill_bytes(len as u64 + 7, len);
            let cuts = DeltaStore::cut_points(&data, 64);
            let total: usize = cuts.iter().map(|(_, l)| l).sum();
            assert_eq!(total, len, "cuts must tile the section");
            let mut pos = 0;
            for &(start, l) in &cuts {
                assert_eq!(start, pos, "cuts must be contiguous");
                assert!((1..=64 * 4).contains(&l), "bounds violated: {l}");
                pos += l;
            }
        }
    }

    #[test]
    fn content_defined_chunking_survives_insertions() {
        // Insert bytes near the front of a section: with content-defined
        // boundaries the unchanged tail still dedups, which fixed-offset
        // blocks could never do.
        let tail = fill_bytes(42, 8000);
        let mut v1 = fill_bytes(7, 512);
        v1.extend_from_slice(&tail);
        let mut v2 = fill_bytes(9, 700); // different, longer prefix
        v2.extend_from_slice(&tail);
        let make = |epoch: u64, data: &[u8]| {
            let mut img = RankImage::new(0, 1, epoch);
            img.put_section("grown", data.to_vec());
            WorldImage::new("MPICH".to_string(), vec![img])
        };
        let dir = tmp_dir("cdc");
        let cfg = StoreConfig {
            block_size: 256,
            ..small_cfg()
        };
        let mut store = DeltaStore::open_with(&dir, cfg).unwrap();
        let s1 = store.commit(&make(1, &v1)).unwrap();
        let s2 = store.commit(&make(2, &v2)).unwrap();
        assert!(
            s2.bytes_written * 3 < s1.bytes_written,
            "shifted tail must dedup: delta {} vs full {}",
            s2.bytes_written,
            s1.bytes_written
        );
        assert_eq!(store.load_epoch(2).unwrap(), make(2, &v2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_stats_on_disk_match_live_stats() {
        let dir = tmp_dir("stats");
        let mut store = DeltaStore::open_with(&dir, small_cfg()).unwrap();
        for e in 1..=3 {
            store.commit(&image(e, 2, e as u8, 900)).unwrap();
        }
        let disk = store.epoch_stats_on_disk().unwrap();
        assert_eq!(disk.len(), store.stats().len());
        for (d, l) in disk.iter().zip(store.stats()) {
            assert_eq!(d.epoch, l.epoch);
            assert_eq!(d.full, l.full);
            assert_eq!(d.blocks_total, l.blocks_total);
            assert_eq!(d.blocks_new, l.blocks_new);
            assert_eq!(d.image_bytes, l.image_bytes);
            assert_eq!(d.bytes_written, l.bytes_written);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
