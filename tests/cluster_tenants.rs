//! Multi-tenant cluster battery: N concurrent worlds behind one worker
//! pool, one shared store committer and one shared tier shipper. The
//! invariants under test are the redesign's acceptance criteria: every
//! tenant commits all of its epochs, per-tenant restores are
//! bit-identical, quotas throttle only their own tenant, and a killed
//! tenant leaves its siblings untouched.

use std::sync::Arc;

use mpi_stool::dmtcp::{
    DeltaStore, RankImage, SharedStoreWriter, StoreConfig, StoreError, TenantQuota, WorldImage,
};
use mpi_stool::simnet::ClusterSpec;
use mpi_stool::stool::cluster::{Cluster, ClusterBuilder, TenantSpec};
use mpi_stool::stool::programs::RingPings;
use mpi_stool::stool::{Checkpointer, RunOutcome, Session, StorePolicy, Vendor};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stool_cluster_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

fn world_image(epoch: u64, nranks: usize, fill: u8) -> WorldImage {
    let ranks = (0..nranks)
        .map(|r| {
            let mut img = RankImage::new(r, nranks, epoch);
            img.put_section("static", fill_bytes(r as u64 + 1, 512));
            img.put_section("hot", fill_bytes((fill as u64) << 8 | r as u64, 700));
            img
        })
        .collect();
    WorldImage::new("MPICH".to_string(), ranks)
}

fn small_world() -> ClusterSpec {
    ClusterSpec::builder().nodes(1).ranks_per_node(2).build()
}

fn vendor_for(i: usize) -> Vendor {
    if i.is_multiple_of(2) {
        Vendor::Mpich
    } else {
        Vendor::OpenMpi
    }
}

/// A checkpointing tenant: own chain dir, periodic checkpoints, tight
/// committer quota so the shared writer's backpressure actually engages.
fn tenant(root: &std::path::Path, i: usize, rounds: u64) -> TenantSpec {
    let session = Session::builder()
        .cluster(small_world())
        .vendor(vendor_for(i))
        .checkpointer(Checkpointer::mana())
        .checkpoint_every(1)
        .checkpoint_store(root.join(format!("chain_{i}")))
        .build()
        .unwrap();
    let _ = rounds;
    TenantSpec::new(session).quota(TenantQuota {
        max_queue: 2,
        max_inflight_bytes: u64::MAX,
    })
}

fn eight_tenant_cluster(root: &std::path::Path, rounds: u64) -> ClusterBuilder {
    let mut builder = Cluster::builder().worker_threads(4).tier(root.join("tier"));
    for i in 0..8 {
        builder = builder.tenant(format!("t{i}"), tenant(root, i, rounds));
    }
    builder
}

/// The deterministic answer a RingPings world must produce, computed by
/// an uninterrupted solo session under the same vendor.
fn reference_total(vendor: Vendor, program: &RingPings) -> f64 {
    Session::builder()
        .cluster(small_world())
        .vendor(vendor)
        .checkpointer(Checkpointer::mana())
        .build()
        .unwrap()
        .launch(program)
        .unwrap()
        .memories()
        .unwrap()[0]
        .get_f64("ring.total")
        .unwrap()
}

#[test]
fn eight_tenants_churn_through_one_shared_writer_and_tier() {
    let root = tmp_dir("saturate");
    let program = RingPings {
        rounds: 6,
        payload: 16,
    };
    let cluster = eight_tenant_cluster(&root, program.rounds).build().unwrap();
    let programs: Vec<(&str, &dyn mpi_stool::stool::MpiProgram)> = (0..8)
        .map(|i| {
            (
                ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][i],
                &program as &dyn mpi_stool::stool::MpiProgram,
            )
        })
        .collect();
    let report = cluster.run(&programs).unwrap();
    assert!(report.all_completed(), "all 8 tenants must complete");

    let epoch_counts: Vec<usize> = (0..8)
        .map(|i| report.tenant(&format!("t{i}")).unwrap().epochs.len())
        .collect();
    for (i, &n) in epoch_counts.iter().enumerate() {
        assert!(n >= 4, "tenant t{i} committed only {n} epochs");
        assert_eq!(
            n, epoch_counts[0],
            "identical tenants must commit identical epoch counts"
        );
        assert!(report
            .tenant(&format!("t{i}"))
            .unwrap()
            .store_error
            .is_none());
    }

    // The shared tier holds 8 disjoint per-tenant chains.
    for i in 0..8 {
        let ns_root = root.join("tier").join("tenant").join(format!("t{i}"));
        let sealed = std::fs::read_dir(&ns_root)
            .unwrap_or_else(|_| panic!("tier namespace for t{i} missing"))
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("epoch_"))
            .count();
        assert!(sealed >= 1, "tenant t{i} shipped no sealed epochs");
    }

    // Per-tenant restore from its own chain is bit-identical: the
    // restored run finishes with exactly the solo reference answer.
    for i in 0..8 {
        let expect = reference_total(vendor_for(i), &program);
        let session = cluster.session(&format!("t{i}")).unwrap();
        let done = session.restore_from_store(&program).unwrap();
        let memories = done.memories().unwrap();
        for m in memories {
            assert_eq!(
                m.get_f64("ring.total").map(f64::to_bits),
                Some(expect.to_bits()),
                "tenant t{i} restore must be bit-identical to the reference"
            );
        }
    }
}

#[test]
fn killing_one_tenant_leaves_the_other_seven_unaffected() {
    let root = tmp_dir("fault");
    let program = RingPings {
        rounds: 6,
        payload: 8,
    };
    let mut builder = Cluster::builder().worker_threads(4);
    for i in 0..8 {
        let mut b = Session::builder()
            .cluster(small_world())
            .vendor(vendor_for(i))
            .checkpointer(Checkpointer::mana())
            .checkpoint_every(2)
            .checkpoint_store(root.join(format!("chain_{i}")));
        if i == 3 {
            // Tenant t3 dies mid-round.
            b = b.inject_node_failure(3, 0);
        }
        builder = builder.tenant(format!("t{i}"), TenantSpec::new(b.build().unwrap()));
    }
    let cluster = builder.build().unwrap();
    let ids = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
    let programs: Vec<(&str, &dyn mpi_stool::stool::MpiProgram)> = ids
        .iter()
        .map(|id| (*id, &program as &dyn mpi_stool::stool::MpiProgram))
        .collect();
    let report = cluster.run(&programs).unwrap();

    match &report.tenant("t3").unwrap().outcome {
        Ok(RunOutcome::Failed { failed_step, .. }) => assert_eq!(*failed_step, 3),
        other => panic!("t3 should have failed, got {other:?}"),
    }
    for id in ids.iter().filter(|id| **id != "t3") {
        let t = report.tenant(id).unwrap();
        match &t.outcome {
            Ok(outcome) if outcome.is_completed() => {}
            other => panic!("{id} should have completed, got {other:?}"),
        }
        assert!(t.store_error.is_none(), "{id} lane must stay clean");
    }
    // The dead tenant's committed epochs are still a valid recovery
    // point for it.
    let salvage = DeltaStore::open(root.join("chain_3")).unwrap();
    assert!(!salvage.epochs().is_empty(), "t3's chain must survive");
}

#[test]
fn quota_backpressure_throttles_only_the_over_budget_tenant() {
    let dir_a = tmp_dir("quota_a");
    let dir_b = tmp_dir("quota_b");
    let cfg = StoreConfig {
        block_size: 128,
        ..StoreConfig::default()
    };
    let store_a = DeltaStore::open_with(&dir_a, cfg).unwrap();
    let store_b = DeltaStore::open_with(&dir_b, cfg).unwrap();
    let tight = TenantQuota {
        max_queue: 2,
        max_inflight_bytes: u64::MAX,
    };
    let roomy = TenantQuota {
        max_queue: 64,
        max_inflight_bytes: u64::MAX,
    };
    let writer = Arc::new(SharedStoreWriter::spawn_stores(vec![
        (store_a, tight),
        (store_b, roomy),
    ]));

    // Freeze the committer so the quota fills deterministically.
    writer.hold_commits();
    writer.submit(0, world_image(1, 2, 1)).unwrap();
    writer.submit(0, world_image(2, 2, 2)).unwrap();
    assert!(writer.would_block(0, 64), "lane 0 is at quota");
    assert!(!writer.would_block(1, 64), "lane 1 must be unaffected");

    // A third submit on the throttled lane blocks...
    let blocked = {
        let writer = writer.clone();
        std::thread::spawn(move || writer.submit(0, world_image(3, 2, 3)))
    };
    while writer.quota_waits(0) == 0 {
        std::thread::yield_now();
    }
    // ...while the other tenant's submits sail through untouched.
    writer.submit(1, world_image(1, 2, 9)).unwrap();
    assert_eq!(writer.quota_waits(1), 0);

    writer.release_commits();
    blocked.join().unwrap().unwrap();
    writer.flush_lane(0).unwrap();
    writer.flush_lane(1).unwrap();
    assert_eq!(writer.lane_stats(0).len(), 3);
    assert_eq!(writer.lane_stats(1).len(), 1);
    assert!(writer.quota_waits(0) >= 1);

    let writer = Arc::try_unwrap(writer).ok().expect("sole owner");
    let stores = writer.finish().unwrap();
    assert_eq!(stores.len(), 2);
    assert_eq!(stores[0].epochs(), vec![1, 2, 3]);
    assert_eq!(stores[1].epochs(), vec![1]);
}

#[test]
fn sticky_commit_errors_latch_per_lane() {
    let dir_a = tmp_dir("sticky_a");
    let dir_b = tmp_dir("sticky_b");
    let store_a = DeltaStore::open(&dir_a).unwrap();
    let store_b = DeltaStore::open(&dir_b).unwrap();
    let writer = Arc::new(SharedStoreWriter::spawn_stores(vec![
        (store_a, TenantQuota::default()),
        (store_b, TenantQuota::default()),
    ]));

    // Lane 0 commits a malformed image (ranks disagree on the epoch):
    // its error latches, its later submits bounce.
    let mut bad = world_image(1, 2, 1);
    bad.ranks[1] = RankImage::new(1, 2, 7);
    writer.submit(0, bad).unwrap();
    assert!(writer.flush_lane(0).is_err());
    assert!(writer.lane_error(0).is_some());
    assert!(writer.submit(0, world_image(2, 2, 2)).is_err());

    // Lane 1 never notices.
    writer.submit(1, world_image(1, 2, 3)).unwrap();
    writer.flush_lane(1).unwrap();
    assert!(writer.lane_error(1).is_none());
    assert_eq!(writer.lane_stats(1).len(), 1);
}

#[test]
fn cluster_builder_rejects_misconfigured_tenancy() {
    let root = tmp_dir("validate");
    let session = |dir: &str| {
        Session::builder()
            .cluster(small_world())
            .checkpointer(Checkpointer::mana())
            .checkpoint_store(root.join(dir))
            .build()
            .unwrap()
    };

    // Two tenants, one chain directory: rejected up front.
    let err = Cluster::builder()
        .tenant("a", TenantSpec::new(session("shared")))
        .tenant("b", TenantSpec::new(session("shared")))
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("distinct store directories"));

    // Ids must be unique...
    let err = Cluster::builder()
        .tenant("a", TenantSpec::new(session("c1")))
        .tenant("a", TenantSpec::new(session("c2")))
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("duplicate tenant id"));

    // ...and valid single-segment tier namespaces.
    for bad in ["", "a/b", "..", ".inflight"] {
        let err = Cluster::builder()
            .tenant(bad, TenantSpec::new(session("c3")))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.to_string().contains("not a valid tier namespace"),
            "{bad:?} should be rejected"
        );
    }

    // A cluster needs tenants at all.
    assert!(Cluster::builder().build().is_err());
}

#[test]
fn tenant_marker_rejects_foreign_and_untagged_opens() {
    let dir = tmp_dir("marker");
    let policy = StorePolicy {
        dir: dir.clone(),
        config: StoreConfig::default(),
        tier: None,
        tenant: String::new(),
    };

    // First tenant-tagged open claims the directory...
    drop(policy.open_store_for("alice").unwrap());
    // ...the same tenant may come back...
    drop(policy.open_store_for("alice").unwrap());
    // ...but another tenant (or an untagged session) is refused with a
    // structured error instead of silently interleaving epochs.
    for intruder in ["bob", ""] {
        match policy.open_store_for(intruder) {
            Err(StoreError::TenantMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, intruder);
                assert_eq!(found, "alice");
            }
            Ok(_) => panic!("tenant {intruder:?} must not open alice's store"),
            Err(e) => panic!("expected TenantMismatch, got {e}"),
        }
    }

    // Untagged directories keep full back-compat: repeated untagged
    // opens stay legal and never write a marker.
    let legacy = StorePolicy {
        dir: tmp_dir("marker_legacy"),
        config: StoreConfig::default(),
        tier: None,
        tenant: String::new(),
    };
    drop(legacy.open_store().unwrap());
    drop(legacy.open_store().unwrap());
    assert!(!legacy.dir.join("TENANT").exists());
}
