//! Paper-style table printing.

use crate::configs::ConfigKind;
use crate::figdata::{AppBar, OsuFigure, RestartFigure};

/// One plotted line: median + stddev per message size.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Median latency per size (µs).
    pub median_us: Vec<f64>,
    /// Standard deviation per size (µs).
    pub stddev_us: Vec<f64>,
}

fn size_label(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}M", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

/// Print an OSU figure as the paper's log-log series, one row per size.
pub fn print_osu_figure(fig: &OsuFigure) {
    println!("# {}", fig.kernel.title());
    println!("# Median latency (us), 4 configurations — cf. paper Figs. 2-4");
    print!("{:>8}", "Size(B)");
    for s in &fig.series {
        print!("  {:>28}", s.label);
    }
    println!();
    for (i, &size) in fig.sizes.iter().enumerate() {
        print!("{:>8}", size_label(size));
        for s in &fig.series {
            print!("  {:>20.2} ±{:>6.2}", s.median_us[i], s.stddev_us[i]);
        }
        println!();
    }
    for kind in [ConfigKind::MpichFull, ConfigKind::OmpiFull] {
        let ov = fig.overhead_pct(kind);
        let max = ov.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let max_at = ov.iter().position(|&o| o == max).unwrap_or(0);
        let large = *ov.last().unwrap_or(&0.0);
        println!(
            "# overhead[{}]: max {:.1}% at {} bytes; at largest size {:.1}%",
            kind.label(),
            max,
            fig.sizes.get(max_at).copied().unwrap_or(0),
            large
        );
    }
    println!(
        "# paper: max overhead 10.9% (alltoall @1B) / 17.2% (bcast, allreduce small); <1% large"
    );
}

/// Print Fig. 5's bars.
pub fn print_fig5(bars: &[AppBar]) {
    println!("# Runtime performance of real-world MPI applications (cf. paper Fig. 5)");
    println!(
        "{:>10} {:>30} {:>12} {:>10}",
        "App", "Configuration", "Median(s)", "Stddev(s)"
    );
    for b in bars {
        println!(
            "{:>10} {:>30} {:>12.3} {:>10.3}",
            b.app, b.config, b.median_s, b.stddev_s
        );
    }
    println!("# paper: CoMD 2.70/2.53/2.16/2.29 s; wave_mpi 3.12/3.11/1.04/1.02 s");
}

/// Print Fig. 6's three lines.
pub fn print_restart_figure(fig: &RestartFigure) {
    println!("# Performance After Restart with Different MPI Implementation (cf. paper Fig. 6)");
    print!("{:>8}", "Size(B)");
    for s in [&fig.launch_ompi, &fig.launch_mpich, &fig.restarted] {
        print!("  {:>42}", s.label);
    }
    println!();
    for (i, &size) in fig.sizes.iter().enumerate() {
        print!("{:>8}", size_label(size));
        for s in [&fig.launch_ompi, &fig.launch_mpich, &fig.restarted] {
            print!("  {:>42.2}", s.median_us[i]);
        }
        println!();
    }
    println!("# paper: the restarted curve tracks the launch-with-MPICH curve");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(1), "1");
        assert_eq!(size_label(512), "512");
        assert_eq!(size_label(2048), "2K");
        assert_eq!(size_label(1 << 20), "1M");
    }
}
