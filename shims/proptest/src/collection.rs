//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: a fixed size or a range.
pub trait IntoSizeRange {
    /// Lower and exclusive upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// `vec(element, size)`: a vector strategy. `size` may be a `usize`
/// (exact length) or a range of lengths.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min) as u64;
        let len = self.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::deterministic("collection");
        let fixed = vec(0u8..10, 4usize);
        let ranged = vec(0u8..10, 2..6usize);
        for _ in 0..100 {
            assert_eq!(fixed.generate(&mut rng).len(), 4);
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
