//! benchgate — the CI perf-regression gate.
//!
//! Strictly validates freshly emitted `BENCH_ckpt.json` / `BENCH_scale.json`
//! / `BENCH_telemetry.json` (a malformed emit fails CI instead of uploading a
//! broken artifact) and compares them against the committed baselines under
//! `benches/baselines/`.
//!
//! ```text
//! cargo run -p stool-bench --bin benchgate              # gate against baselines
//! cargo run -p stool-bench --bin benchgate -- --write-baselines   # refresh them
//! ```
//!
//! Exit codes: 0 = pass, 1 = regression beyond tolerance, 2 = missing or
//! malformed input. See `docs/ci.md` for the workflow.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use stool_bench::gate::{
    compare_ckpt, compare_matrix, compare_scale, compare_telemetry, parse_ckpt_report,
    parse_matrix_report, parse_scale_report, parse_telemetry_report, GateOutcome, TOLERANCE,
};

struct Args {
    ckpt: PathBuf,
    scale: PathBuf,
    telemetry: PathBuf,
    matrix: Option<PathBuf>,
    baselines: PathBuf,
    write_baselines: bool,
}

fn usage() -> ! {
    // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
    eprintln!(
        "usage: benchgate [--ckpt PATH] [--scale PATH] [--telemetry PATH] [--baselines DIR] \
         [--write-baselines]\n\
         \x20      benchgate --matrix PATH [--baselines DIR] [--write-baselines]\n\
         defaults: --ckpt BENCH_ckpt.json --scale BENCH_scale.json \
         --telemetry BENCH_telemetry.json --baselines benches/baselines\n\
         --matrix gates a scenario-matrix emit (BENCH_matrix.json) instead of the \
         perf reports; see docs/scenarios.md"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        ckpt: PathBuf::from("BENCH_ckpt.json"),
        scale: PathBuf::from("BENCH_scale.json"),
        telemetry: PathBuf::from("BENCH_telemetry.json"),
        matrix: None,
        baselines: PathBuf::from("benches/baselines"),
        write_baselines: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--ckpt" => args.ckpt = it.next().unwrap_or_else(|| usage()).into(),
            "--scale" => args.scale = it.next().unwrap_or_else(|| usage()).into(),
            "--telemetry" => args.telemetry = it.next().unwrap_or_else(|| usage()).into(),
            "--matrix" => args.matrix = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--baselines" => args.baselines = it.next().unwrap_or_else(|| usage()).into(),
            "--write-baselines" => args.write_baselines = true,
            _ => usage(),
        }
    }
    args
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// The `--matrix` mode: gate a scenario-matrix emit instead of the perf
/// reports. Kept exclusive so PR CI can run it as a separate, clearly
/// labelled step (the perf gate and the correctness gate fail for
/// different reasons and want different remedies).
fn run_matrix(args: &Args, fresh_path: &Path) -> Result<GateOutcome, String> {
    let fresh_text = read(fresh_path)?;
    let fresh = parse_matrix_report(&fresh_text)
        .map_err(|e| format!("{} is malformed: {e}", fresh_path.display()))?;
    println!(
        "benchgate: validated {} ({} suite, {} scenarios of {} in spec)",
        fresh_path.display(),
        fresh.suite,
        fresh.scenarios.len(),
        fresh.spec_scenarios
    );

    if args.write_baselines {
        if fresh.suite != "full" {
            return Err(format!(
                "matrix baselines must come from the full suite, not '{}'",
                fresh.suite
            ));
        }
        std::fs::create_dir_all(&args.baselines)
            .map_err(|e| format!("cannot create {}: {e}", args.baselines.display()))?;
        let to = args.baselines.join("BENCH_matrix.json");
        std::fs::write(&to, &fresh_text)
            .map_err(|e| format!("cannot write {}: {e}", to.display()))?;
        println!("benchgate: matrix baseline refreshed at {}", to.display());
        return Ok(GateOutcome::default());
    }

    let base_path = args.baselines.join("BENCH_matrix.json");
    let base = parse_matrix_report(&read(&base_path)?)
        .map_err(|e| format!("{} is malformed: {e}", base_path.display()))?;
    let mut out = GateOutcome::default();
    compare_matrix(&mut out, &base, &fresh);
    Ok(out)
}

fn run() -> Result<GateOutcome, String> {
    let args = parse_args();

    if let Some(matrix) = args.matrix.clone() {
        return run_matrix(&args, &matrix);
    }

    // Strict validation first: a fresh emit that does not parse is a CI
    // failure regardless of baselines (the former silent-artifact bug).
    let ckpt_text = read(&args.ckpt)?;
    let fresh_ckpt = parse_ckpt_report(&ckpt_text)
        .map_err(|e| format!("{} is malformed: {e}", args.ckpt.display()))?;
    let scale_text = read(&args.scale)?;
    let fresh_scale = parse_scale_report(&scale_text)
        .map_err(|e| format!("{} is malformed: {e}", args.scale.display()))?;
    let telemetry_text = read(&args.telemetry)?;
    let fresh_telemetry = parse_telemetry_report(&telemetry_text)
        .map_err(|e| format!("{} is malformed: {e}", args.telemetry.display()))?;
    println!(
        "benchgate: validated {} ({} workloads), {} ({} rendezvous sizes) and {} \
         ({:.1} events/round)",
        args.ckpt.display(),
        fresh_ckpt.workloads.len(),
        args.scale.display(),
        fresh_scale.rendezvous_wallclock.len(),
        args.telemetry.display(),
        fresh_telemetry.events_per_round
    );

    if args.write_baselines {
        std::fs::create_dir_all(&args.baselines)
            .map_err(|e| format!("cannot create {}: {e}", args.baselines.display()))?;
        let ckpt_to = args.baselines.join("BENCH_ckpt.json");
        let scale_to = args.baselines.join("BENCH_scale.json");
        let telemetry_to = args.baselines.join("BENCH_telemetry.json");
        std::fs::write(&ckpt_to, &ckpt_text)
            .map_err(|e| format!("cannot write {}: {e}", ckpt_to.display()))?;
        std::fs::write(&scale_to, &scale_text)
            .map_err(|e| format!("cannot write {}: {e}", scale_to.display()))?;
        std::fs::write(&telemetry_to, &telemetry_text)
            .map_err(|e| format!("cannot write {}: {e}", telemetry_to.display()))?;
        println!(
            "benchgate: baselines refreshed under {}",
            args.baselines.display()
        );
        return Ok(GateOutcome::default());
    }

    let base_ckpt_path = args.baselines.join("BENCH_ckpt.json");
    let base_ckpt = parse_ckpt_report(&read(&base_ckpt_path)?)
        .map_err(|e| format!("{} is malformed: {e}", base_ckpt_path.display()))?;
    let base_scale_path = args.baselines.join("BENCH_scale.json");
    let base_scale = parse_scale_report(&read(&base_scale_path)?)
        .map_err(|e| format!("{} is malformed: {e}", base_scale_path.display()))?;
    let base_telemetry_path = args.baselines.join("BENCH_telemetry.json");
    let base_telemetry = parse_telemetry_report(&read(&base_telemetry_path)?)
        .map_err(|e| format!("{} is malformed: {e}", base_telemetry_path.display()))?;

    let mut out = GateOutcome::default();
    compare_ckpt(&mut out, &base_ckpt, &fresh_ckpt);
    compare_scale(&mut out, &base_scale, &fresh_scale);
    compare_telemetry(&mut out, &base_telemetry, &fresh_telemetry);
    Ok(out)
}

fn main() -> ExitCode {
    match run() {
        Err(msg) => {
            // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
            eprintln!("benchgate: FAIL (invalid input): {msg}");
            ExitCode::from(2)
        }
        Ok(out) => {
            for w in &out.warnings {
                println!("benchgate: warn: {w}");
            }
            if out.ok() {
                println!(
                    "benchgate: PASS — {} metrics within {:.0}% of baselines",
                    out.passed,
                    TOLERANCE * 100.0
                );
                ExitCode::SUCCESS
            } else {
                for r in &out.regressions {
                    // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
                    eprintln!("benchgate: REGRESSION: {r}");
                }
                // lint:allow(no-eprintln) — gate tooling reports on stderr by design.
                eprintln!(
                    "benchgate: FAIL — {} regression(s); if intentional, refresh with \
                     `cargo run -p stool-bench --bin benchgate -- --write-baselines` \
                     and commit benches/baselines/",
                    out.regressions.len()
                );
                ExitCode::FAILURE
            }
        }
    }
}
