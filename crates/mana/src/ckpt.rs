//! Checkpoint execution and restart.
//!
//! The sequence (per rank, coordinated by the `dmtcp-sim` coordinator):
//!
//! 1. **Quiesce** — the application sits at a wrapper safe point with no
//!    incomplete nonblocking requests (enforced);
//! 2. **Counter exchange** — every rank publishes how many point-to-point
//!    messages it has sent to / received from every peer;
//! 3. **Drain** — each rank receives its in-flight deficit through the MPI
//!    library itself (`iprobe` + `recv` per live communicator, exactly the
//!    real MANA mechanism) into the upper-half [`crate::pool::DrainPool`];
//! 4. **Serialize** — upper-half memory + virtual-id replay log + pool +
//!    counters + resume position become a [`dmtcp_sim::RankImage`];
//! 5. **Resume or stop** — per the coordinator's mode.
//!
//! **Restart** (possibly under a different MPI vendor): build a fresh lower
//! half, replay the log to rebind virtual ids, restore pool/counters/memory
//! and hand the application its resume position.

use std::rc::Rc;

use dmtcp_sim::codec::{Reader, Writer};
use dmtcp_sim::coordinator::{CkptMode, Poll, RankAgent};
use dmtcp_sim::image::RankImage;
use dmtcp_sim::memory::Memory;
use mpi_abi::{consts, AbiError, AbiResult, Datatype, MpiAbi};
use simnet::RankCtx;

use crate::config::ManaConfig;
use crate::pool::{DrainPool, PooledMsg};
use crate::vids::VidTable;
use crate::wrappers::ManaMpi;

/// Section names within a rank image.
pub mod sections {
    /// Resume metadata (step counter).
    pub const META: &str = "meta";
    /// The modelled static upper half (program text/rodata), present
    /// when [`crate::ManaConfig::static_image_bytes`] is nonzero. Its
    /// content is a pure function of `(rank, size)`, so it is carried
    /// with a constant clean-segment hint and the delta store never
    /// re-hashes it after the chain base.
    pub const TEXT: &str = "text";
    /// Upper-half memory, as one whole blob (legacy images only; new
    /// images carry one section per segment, see
    /// [`MEMORY_INDEX`]/[`MEMORY_PREFIX`]).
    pub const MEMORY: &str = "memory";
    /// The ordered list of upper-half memory segment names.
    pub const MEMORY_INDEX: &str = "memory.index";
    /// Prefix of per-segment memory sections (`memory/<segment>`). One
    /// image section per segment keeps the delta store's chunk boundaries
    /// aligned with the natural structure of the application state: an
    /// unchanged segment dedups wholesale no matter how its neighbours
    /// grew or shrank.
    pub const MEMORY_PREFIX: &str = "memory/";
    /// Virtual-id replay log.
    pub const VIDS: &str = "mana.vids";
    /// Drained in-flight messages.
    pub const POOL: &str = "mana.pool";
    /// Point-to-point counters.
    pub const COUNTERS: &str = "mana.counters";
}

/// What happened at a checkpoint safe point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptAction {
    /// No checkpoint was requested; keep running.
    None,
    /// A checkpoint was taken; keep running (mode `Continue`).
    Taken {
        /// Bytes written to the image.
        image_bytes: usize,
    },
    /// A checkpoint was taken and the world must stop (mode `Stop`).
    Stop {
        /// Bytes written to the image.
        image_bytes: usize,
    },
}

/// Poll for a requested checkpoint at an application safe point, and take
/// it if this safe point is the agreed cut. Called by the run-time's
/// `checkpoint_point`. `resume_step` is the step about to execute; the
/// coordinator's gather/rendezvous protocol guarantees that when the
/// checkpoint happens, it happens at the *same* step on every rank (see
/// `dmtcp_sim::coordinator` for the protocol and its deadlock argument).
pub fn maybe_checkpoint(
    mana: &mut ManaMpi,
    agent: &mut RankAgent,
    memory: &Memory,
    resume_step: u64,
) -> AbiResult<CkptAction> {
    // Report this rank's virtual-clock position alongside the poll so
    // flight-recorder events from the coordinator and its background
    // threads are stamped no earlier than the safe point that caused them.
    let vnow = mana.ctx.now().as_nanos();
    let session = match agent
        .poll_at(resume_step, vnow)
        .map_err(|_| AbiError::Ckpt)?
    {
        Poll::None | Poll::KeepRunning => return Ok(CkptAction::None),
        Poll::Enter(session) => session,
    };
    if mana.outstanding() > 0 {
        // MANA drains *network* traffic; application-level requests must be
        // complete at a safe point (our workloads always are).
        return Err(AbiError::Unsupported);
    }
    let rank = session.rank();
    let epoch = session.epoch();
    let pending = session
        .exchange_counters(&mana.sent_to, &mana.rcvd_from)
        .map_err(|_| AbiError::Ckpt)?;
    drain(mana, &pending)?;

    let image = build_image(mana, memory, resume_step, rank, epoch);
    let image_bytes = image.total_bytes();
    // Charge what the checkpoint costs this rank: the synchronous image
    // write to the parallel filesystem, or — when the session attached an
    // asynchronous delta store — only the hand-off to the background
    // writer (the store takes ownership at the rendezvous barrier).
    mana.ctx
        .advance(mana.config.ckpt_critical_path_time(image_bytes));
    session.submit_image(image);
    match session.finish().map_err(|_| AbiError::Ckpt)? {
        CkptMode::Continue => Ok(CkptAction::Taken { image_bytes }),
        CkptMode::Stop => Ok(CkptAction::Stop { image_bytes }),
    }
}

/// Receive every in-flight message into the pool. `pending[j]` is how many
/// messages from world rank `j` are still on the wire towards this rank.
fn drain(mana: &mut ManaMpi, pending: &[u64]) -> AbiResult<()> {
    let mut remaining: Vec<u64> = pending.to_vec();
    let mut total: u64 = remaining.iter().sum();
    while total > 0 {
        let mut progressed = false;
        for vcomm in mana.vids.live_comms() {
            let real = mana.vids.real_of(vcomm)?;
            while let Some(st) = mana
                .lower
                .iprobe(consts::ANY_SOURCE, consts::ANY_TAG, real)?
            {
                let mut buf = vec![0u8; st.count_bytes as usize];
                let st =
                    mana.lower
                        .recv(&mut buf, Datatype::Byte.handle(), st.source, st.tag, real)?;
                let world = mana.lower.comm_translate_rank(real, st.source)?;
                let world = usize::try_from(world).map_err(|_| AbiError::Rank)?;
                mana.rcvd_from[world] += 1;
                remaining[world] = remaining[world].saturating_sub(1);
                mana.pool.push(PooledMsg {
                    vcomm,
                    src: st.source,
                    tag: st.tag,
                    payload: buf,
                });
                mana.ctx.advance(mana.config.drain_msg_overhead);
                progressed = true;
            }
        }
        total = remaining.iter().sum();
        if total > 0 && !progressed {
            // All counted sends are already enqueued by the eager
            // transport, but give the scheduler a chance anyway.
            std::thread::yield_now();
        }
    }
    Ok(())
}

/// Serialize one rank's state into an image.
fn build_image(
    mana: &ManaMpi,
    memory: &Memory,
    resume_step: u64,
    rank: usize,
    epoch: u64,
) -> RankImage {
    let nranks = mana.ctx.nranks();
    let mut image = RankImage::new(rank, nranks, epoch);

    let mut w = Writer::new();
    w.u64(resume_step);
    image.put_section(sections::META, w.finish());

    // The modelled static upper half: deterministic per (rank, size),
    // hinted clean with a constant stamp so the delta store skips both
    // hashing and rewriting it on every epoch after the base — exactly
    // what real program text costs a checkpoint after the first image.
    if mana.config.static_image_bytes > 0 {
        image.put_section_hinted(
            sections::TEXT,
            static_text(rank, mana.config.static_image_bytes),
            0,
        );
    }

    // Upper-half memory: one image section per segment plus an index, so
    // the delta store sees segment boundaries as section boundaries.
    // Each segment travels with its generation stamp — the clean-segment
    // hint that lets the store skip chunking and hashing segments the
    // application has not touched since the previous epoch.
    let mut idx = Writer::new();
    let names: Vec<&str> = memory.names().collect();
    idx.u64(names.len() as u64);
    for name in &names {
        idx.string(name);
    }
    image.put_section(sections::MEMORY_INDEX, idx.into_raw());
    for name in names {
        let data = memory.encode_segment(name).expect("name from names()");
        let generation = memory.generation(name).expect("name from names()");
        image.put_section_hinted(
            &format!("{}{name}", sections::MEMORY_PREFIX),
            data,
            generation,
        );
    }

    let mut w = Writer::new();
    mana.vids.encode_log(&mut w);
    image.put_section(sections::VIDS, w.finish());

    let mut w = Writer::new();
    mana.pool.encode(&mut w);
    image.put_section(sections::POOL, w.finish());

    let mut w = Writer::new();
    w.u64(mana.sent_to.len() as u64);
    for &v in &mana.sent_to {
        w.u64(v);
    }
    for &v in &mana.rcvd_from {
        w.u64(v);
    }
    image.put_section(sections::COUNTERS, w.finish());

    image
}

/// The modelled static upper half of one rank: pointer-table-shaped
/// 64-bit words (realistically compressible under the store's shuffled
/// LZ filter, unlike random noise; realistically *unique* per offset,
/// unlike constant fill that would collapse under dedup).
fn static_text(rank: usize, bytes: usize) -> Vec<u8> {
    let words = bytes / 8;
    let base = 0x5555_0000_0000u64 + ((rank as u64) << 32);
    let mut v = Vec::with_capacity(words * 8);
    for i in 0..words as u64 {
        v.extend_from_slice(&(base + i * 64 + (i % 7) * 13).to_le_bytes());
    }
    v
}

/// The restored state of one rank.
pub struct Restored {
    /// The wrapper, bound to the (possibly different) new lower half with
    /// all virtual ids replayed.
    pub mana: ManaMpi,
    /// The application's upper-half memory.
    pub memory: Memory,
    /// Where the application should resume.
    pub resume_step: u64,
}

/// Restore a rank from its image over a **fresh lower half** — the lower
/// half may be a different MPI implementation than the one checkpointed
/// under; the image never references vendor state.
pub fn restore_rank(
    ctx: Rc<RankCtx>,
    config: ManaConfig,
    mut lower: Box<dyn MpiAbi>,
    image: &RankImage,
) -> Result<Restored, String> {
    if image.nranks != ctx.nranks() {
        return Err(format!(
            "image is for a {}-rank world, cluster has {} ranks",
            image.nranks,
            ctx.nranks()
        ));
    }
    if image.rank != ctx.rank() {
        return Err(format!(
            "image rank {} restored on rank {}",
            image.rank,
            ctx.rank()
        ));
    }

    let meta = image
        .section(sections::META)
        .ok_or("missing meta section")?;
    let mut r = Reader::checked(meta).map_err(|e| e.to_string())?;
    let resume_step = r.u64().map_err(|e| e.to_string())?;

    let memory = if let Some(idx) = image.section(sections::MEMORY_INDEX) {
        let mut r = Reader::raw(idx);
        let count = r.u64().map_err(|e| e.to_string())?;
        if count > 1 << 24 {
            return Err(format!("memory index claims {count} segments"));
        }
        let mut memory = Memory::new();
        for _ in 0..count {
            let name = r.string().map_err(|e| e.to_string())?;
            let data = image
                .section(&format!("{}{name}", sections::MEMORY_PREFIX))
                .ok_or_else(|| format!("missing memory segment {name}"))?;
            memory
                .insert_segment(&name, data)
                .map_err(|e| format!("memory segment {name}: {e}"))?;
        }
        memory
    } else {
        // Legacy images: the whole memory as one checksummed blob.
        let mem = image
            .section(sections::MEMORY)
            .ok_or("missing memory section")?;
        let mut r = Reader::checked(mem).map_err(|e| e.to_string())?;
        Memory::decode(&mut r).map_err(|e| e.to_string())?
    };

    let vids_bytes = image
        .section(sections::VIDS)
        .ok_or("missing vids section")?;
    let mut r = Reader::checked(vids_bytes).map_err(|e| e.to_string())?;
    let log = VidTable::decode_log(&mut r).map_err(|e| e.to_string())?;
    // Replay the creation log against the new lower half (collective:
    // every rank of the restored world runs this in lockstep).
    let vids = VidTable::replay(log, ctx.nranks(), lower.as_mut())
        .map_err(|e| format!("vid replay failed: {e}"))?;

    let pool_bytes = image
        .section(sections::POOL)
        .ok_or("missing pool section")?;
    let mut r = Reader::checked(pool_bytes).map_err(|e| e.to_string())?;
    let pool = DrainPool::decode(&mut r).map_err(|e| e.to_string())?;

    let ctr_bytes = image
        .section(sections::COUNTERS)
        .ok_or("missing counters section")?;
    let mut r = Reader::checked(ctr_bytes).map_err(|e| e.to_string())?;
    let n = r.u64().map_err(|e| e.to_string())? as usize;
    if n != ctx.nranks() {
        return Err("counter matrix size mismatch".to_string());
    }
    let mut sent_to = Vec::with_capacity(n);
    for _ in 0..n {
        sent_to.push(r.u64().map_err(|e| e.to_string())?);
    }
    let mut rcvd_from = Vec::with_capacity(n);
    for _ in 0..n {
        rcvd_from.push(r.u64().map_err(|e| e.to_string())?);
    }

    let mana = ManaMpi {
        ctx,
        config,
        lower,
        vids,
        pool,
        sent_to,
        rcvd_from,
        reqs: std::collections::HashMap::new(),
        outstanding: 0,
    };
    Ok(Restored {
        mana,
        memory,
        resume_step,
    })
}
