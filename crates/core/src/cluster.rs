//! Multi-tenant clusters: N concurrent worlds in one process.
//!
//! A [`Cluster`] hosts N independent *tenants* — each one a full
//! [`Session`] configuration (own vendor, ABI mode, checkpoint policy,
//! fault plan, [`crate::DurabilityPolicy`]) — and runs them
//! concurrently over shared infrastructure:
//!
//! * **One bounded worker pool** ([`simnet::WorkerPool`]). Each tenant's
//!   world gang-admits all of its rank permits at once (FIFO-ticketed,
//!   so wide tenants are never starved by narrow ones) and holds them
//!   for the run; total rank-thread concurrency across tenants is
//!   bounded by [`ClusterBuilder::worker_threads`].
//! * **One shared store committer** ([`dmtcp_sim::SharedStoreWriter`]).
//!   Every tenant's completed epochs flow through a single background
//!   thread that drains per-tenant lanes fair-share round-robin. A
//!   tenant over its [`TenantQuota`] (queued epochs or in-flight bytes)
//!   blocks only its *own* submits; sticky commit errors latch per lane.
//! * **One shared tier shipper** ([`dmtcp_sim::SharedTier`], optional).
//!   Sealed epochs of every tenant ship through one multiplexed
//!   runtime, each under its own `tenant/<id>/` key namespace — the
//!   remote bucket holds N disjoint chains.
//!
//! Tenant isolation is the design invariant throughout: distinct chain
//! directories (enforced, with a durable `TENANT` ownership marker in
//! each), distinct tier namespaces, per-lane quotas/errors/stats, and a
//! failing or faulted tenant leaves its siblings' runs untouched.
//!
//! ```no_run
//! use simnet::ClusterSpec;
//! use stool::cluster::{Cluster, TenantSpec};
//! use stool::programs::RingPings;
//! use stool::{Checkpointer, Session, Vendor};
//!
//! let tenant = |vendor| {
//!     TenantSpec::new(
//!         Session::builder()
//!             .cluster(ClusterSpec::builder().nodes(1).ranks_per_node(4).build())
//!             .vendor(vendor)
//!             .checkpointer(Checkpointer::mana())
//!             .checkpoint_every(2)
//!             .checkpoint_store(format!("/tmp/chains/{vendor:?}"))
//!             .build()
//!             .unwrap(),
//!     )
//! };
//! let cluster = Cluster::builder()
//!     .worker_threads(8)
//!     .tenant("mpich", tenant(Vendor::Mpich))
//!     .tenant("ompi", tenant(Vendor::OpenMpi))
//!     .build()
//!     .unwrap();
//! let program = RingPings { rounds: 8, payload: 64 };
//! let report = cluster.run(&[("mpich", &program), ("ompi", &program)]).unwrap();
//! assert!(report.all_completed());
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dmtcp_sim::store::{EpochStats, SharedStoreWriter, StoreError, TenantQuota};
use dmtcp_sim::tier::{tenant_namespace, FsTier, ObjectTier, SharedTier};
use simnet::WorkerPool;

use crate::error::{StoolError, StoolResult};
use crate::program::MpiProgram;
use crate::session::{recorder_for, RunOutcome, Session, TenantShared, TierPolicy};

/// One tenant of a [`Cluster`]: a fully validated session configuration
/// plus the tenant's fair-share [`TenantQuota`] on the shared committer.
pub struct TenantSpec {
    session: Session,
    quota: TenantQuota,
}

impl TenantSpec {
    /// Wrap a built [`Session`] as a cluster tenant with the default
    /// quota.
    pub fn new(session: Session) -> TenantSpec {
        TenantSpec {
            session,
            quota: TenantQuota::default(),
        }
    }

    /// Set the tenant's quota on the shared committer: how many epochs
    /// (and bytes) it may have in flight before its own submits block.
    pub fn quota(mut self, quota: TenantQuota) -> TenantSpec {
        self.quota = quota;
        self
    }
}

struct Tenant {
    id: String,
    session: Session,
    quota: TenantQuota,
}

/// Builder for [`Cluster`].
pub struct ClusterBuilder {
    tenants: Vec<Tenant>,
    worker_threads: usize,
    tier: Option<TierPolicy>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            tenants: Vec::new(),
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            tier: None,
        }
    }
}

impl ClusterBuilder {
    /// Bound the shared worker pool: at most this many rank threads run
    /// at once across all tenants (defaults to the host's parallelism).
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n.max(1);
        self
    }

    /// Attach one shared remote tier at `dir` (default shipper
    /// tunables): every tenant's sealed epochs ship through the same
    /// multiplexed runtime, each under its own `tenant/<id>/` key
    /// namespace.
    pub fn tier(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.tier_with(dir, dmtcp_sim::TierConfig::default())
    }

    /// Like [`ClusterBuilder::tier`], with explicit shipper tunables.
    pub fn tier_with(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        config: dmtcp_sim::TierConfig,
    ) -> Self {
        self.tier = Some(TierPolicy {
            dir: dir.into(),
            config,
        });
        self
    }

    /// Add a tenant. `id` becomes the tenant's tier namespace, its
    /// store-directory ownership claim and its telemetry tag.
    pub fn tenant(mut self, id: impl Into<String>, spec: TenantSpec) -> Self {
        self.tenants.push(Tenant {
            id: id.into(),
            session: spec.session,
            quota: spec.quota,
        });
        self
    }

    /// Validate and build: tenant ids must be unique and valid tier
    /// namespaces, chain directories must be disjoint, and tenants may
    /// not bring a private tier when the cluster attaches a shared one.
    pub fn build(mut self) -> StoolResult<Cluster> {
        if self.tenants.is_empty() {
            return Err(StoolError::Config(
                "a cluster needs at least one tenant".into(),
            ));
        }
        let mut ids = BTreeSet::new();
        let mut dirs = BTreeMap::new();
        for tenant in &mut self.tenants {
            tenant_namespace(&tenant.id).map_err(|_| {
                StoolError::Config(format!(
                    "tenant id {:?} is not a valid tier namespace (one path segment, \
                     no separators, not '.'/'..')",
                    tenant.id
                ))
            })?;
            if !ids.insert(tenant.id.clone()) {
                return Err(StoolError::Config(format!(
                    "duplicate tenant id {:?}",
                    tenant.id
                )));
            }
            if let Some(store) = &mut tenant.session.config.durability.store {
                if let Some(owner) = dirs.insert(store.dir.clone(), tenant.id.clone()) {
                    return Err(StoolError::Config(format!(
                        "tenants {:?} and {:?} share the chain directory {}: distinct \
                         tenants must use distinct store directories",
                        owner,
                        tenant.id,
                        store.dir.display()
                    )));
                }
                if self.tier.is_some() && store.tier.is_some() {
                    return Err(StoolError::Config(format!(
                        "tenant {:?} attaches a private tier but the cluster attaches a \
                         shared one; use exactly one of the two",
                        tenant.id
                    )));
                }
                // The chain directory is claimed for the tenant: later
                // opens (commit path, restore, collect) all check the
                // durable TENANT marker.
                store.tenant = tenant.id.clone();
            }
        }
        Ok(Cluster {
            tenants: self.tenants,
            worker_threads: self.worker_threads,
            tier: self.tier,
        })
    }
}

/// N concurrent worlds behind one worker pool, one store committer and
/// (optionally) one tier shipper. See the [module docs](self).
pub struct Cluster {
    tenants: Vec<Tenant>,
    worker_threads: usize,
    tier: Option<TierPolicy>,
}

/// What one tenant's run produced.
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant's run outcome — per tenant, so one tenant failing
    /// (fault plan, store error, rank panic) leaves its siblings'
    /// outcomes intact.
    pub outcome: StoolResult<RunOutcome>,
    /// Per-epoch commit statistics of the tenant's lane, in commit
    /// order (empty when the tenant attached no store).
    pub epochs: Vec<EpochStats>,
    /// How many of the tenant's submits blocked on its own quota.
    pub quota_waits: u64,
    /// The tenant lane's sticky commit error, if any.
    pub store_error: Option<StoreError>,
}

/// The outcome of [`Cluster::run`]: one [`TenantReport`] per tenant.
#[derive(Debug)]
pub struct ClusterReport {
    /// Reports keyed by tenant id.
    pub tenants: BTreeMap<String, TenantReport>,
}

impl ClusterReport {
    /// One tenant's report.
    pub fn tenant(&self, id: &str) -> Option<&TenantReport> {
        self.tenants.get(id)
    }

    /// Whether every tenant ran to completion.
    pub fn all_completed(&self) -> bool {
        self.tenants
            .values()
            .all(|t| matches!(&t.outcome, Ok(o) if o.is_completed()))
    }
}

impl Cluster {
    /// Begin building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The tenant ids, in insertion order.
    pub fn tenant_ids(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.id.as_str()).collect()
    }

    /// A tenant's session (e.g. to [`Session::restore_from_store`] its
    /// chain after a run, or read its [`Session::telemetry`]).
    pub fn session(&self, id: &str) -> Option<&Session> {
        self.tenants.iter().find(|t| t.id == id).map(|t| &t.session)
    }

    /// Run every tenant's program concurrently and report per tenant.
    ///
    /// `programs` maps tenant id → program; every tenant must appear
    /// exactly once. Worlds run on the shared bounded pool, epochs flow
    /// through the one shared committer (and tier, if attached), and a
    /// tenant failing — injected fault, store error, rank panic — does
    /// not disturb any sibling.
    pub fn run(&self, programs: &[(&str, &dyn MpiProgram)]) -> StoolResult<ClusterReport> {
        let by_id: BTreeMap<&str, &dyn MpiProgram> =
            programs.iter().map(|(id, p)| (*id, *p)).collect();
        if by_id.len() != programs.len() {
            return Err(StoolError::Config(
                "duplicate tenant id in the program list".into(),
            ));
        }
        for (id, _) in programs {
            if !self.tenants.iter().any(|t| t.id == *id) {
                return Err(StoolError::Config(format!(
                    "program for unknown tenant {id:?}"
                )));
            }
        }

        let pool = WorkerPool::new(self.worker_threads);
        let shared_tier = match &self.tier {
            None => None,
            Some(policy) => {
                let tier: Arc<dyn ObjectTier> = Arc::new(
                    FsTier::open(&policy.dir)
                        .map_err(|e| StoolError::Store(StoreError::Tier(e)))?,
                );
                Some(SharedTier::new(tier, policy.config))
            }
        };

        // Open every storing tenant's chain up front — claiming its
        // TENANT marker, attaching its tagged recorder and (namespaced)
        // shared tier lane — then hand all the stores to ONE committer.
        let mut recorders = Vec::with_capacity(self.tenants.len());
        let mut lanes: Vec<Option<usize>> = Vec::with_capacity(self.tenants.len());
        let mut tier_stats = Vec::with_capacity(self.tenants.len());
        let mut stores = Vec::new();
        for tenant in &self.tenants {
            let tel = recorder_for(&tenant.session.config, Some(tenant.id.clone()));
            let (lane, stats) = match &tenant.session.config.durability.store {
                None => (None, None),
                Some(policy) => {
                    let mut store = policy.open_store().map_err(StoolError::Store)?;
                    store.attach_telemetry(tel.clone());
                    if let Some(st) = &shared_tier {
                        let ns = tenant_namespace(&tenant.id)
                            .map_err(|e| StoolError::Store(StoreError::Tier(e)))?;
                        store
                            .attach_shared_tier(st, &ns)
                            .map_err(StoolError::Store)?;
                    }
                    let stats = store.tier_stats_handle();
                    stores.push((store, tenant.quota));
                    (Some(stores.len() - 1), stats)
                }
            };
            recorders.push(tel);
            lanes.push(lane);
            tier_stats.push(stats);
        }
        let writer =
            (!stores.is_empty()).then(|| Arc::new(SharedStoreWriter::spawn_stores(stores)));

        // One driver thread per tenant; each runs the tenant's world
        // through the exact single-session wiring path, gang-admitted
        // onto the shared pool.
        let outcomes: Vec<StoolResult<RunOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .tenants
                .iter()
                .zip(recorders.iter())
                .zip(lanes.iter().zip(tier_stats.iter()))
                .map(|((tenant, tel), (lane, stats))| {
                    let program = by_id.get(tenant.id.as_str()).copied();
                    let shared = TenantShared {
                        pool: &pool,
                        writer: lane.and_then(|l| writer.as_ref().map(|w| (w.clone(), l))),
                        tier_stats: stats.clone(),
                        tel: tel.clone(),
                    };
                    s.spawn(move || match program {
                        None => Err(StoolError::Config(format!(
                            "no program supplied for tenant {:?}",
                            tenant.id
                        ))),
                        Some(p) => tenant.session.run_shared(p, &shared),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tenant driver thread"))
                .collect()
        });

        let mut tenants = BTreeMap::new();
        for (i, (tenant, outcome)) in self.tenants.iter().zip(outcomes).enumerate() {
            let (epochs, quota_waits, store_error) = match (&writer, lanes[i]) {
                (Some(w), Some(lane)) => {
                    (w.lane_stats(lane), w.quota_waits(lane), w.lane_error(lane))
                }
                _ => (Vec::new(), 0, None),
            };
            tenants.insert(
                tenant.id.clone(),
                TenantReport {
                    outcome,
                    epochs,
                    quota_waits,
                    store_error,
                },
            );
        }
        // Shut the shared committer down (drains every lane, joins the
        // thread, drops the stores — which flushes their tier lanes).
        if let Some(w) = writer {
            drop(w);
        }
        Ok(ClusterReport { tenants })
    }
}
