//! Criterion: ≥ 512-rank worlds — striped mailboxes, tree-barrier
//! rendezvous, and the vendor stacks at 64…1024 ranks.
//!
//! As a side effect (in both `cargo bench` and `--test` smoke mode) this
//! bench emits `BENCH_scale.json` at the workspace root so CI records the
//! scale trajectory and `benchgate` can compare it against the committed
//! baselines:
//!
//! * `rendezvous_wallclock` — wall-clock of one full checkpoint
//!   rendezvous round (gather → counters → image → finish) over the
//!   **flat** and **tree** coordinator barriers, per world size. This is
//!   the tentpole curve: flat grows linearly with the world (one lock,
//!   N-thread thundering herd), the radix-32 tree stays near-logarithmic.
//! * `p2p_drain` / `allreduce` / `ckpt_rendezvous` — deterministic
//!   **virtual-time** makespans through the full Session stack under both
//!   vendors (these gate hard in benchgate; wall-clock only warns).
//! * `cluster` — the multi-tenant saturation battery: a fixed-config
//!   [`stool::cluster::Cluster`] of checkpointing tenants churning
//!   through ONE shared committer and ONE shared tier. Tenant count and
//!   total committed epochs gate exactly; the fairness spread
//!   ((max − min) / mean of the tenants' virtual makespans) gates at
//!   benchgate's tolerance; wall-clock only warns.
//!
//! `BENCH_SCALE_MAX` caps the largest world (default 1024) so constrained
//! environments can trim the sweep; benchgate then compares only the rows
//! present on both sides but requires ≥ 512 ranks in the fresh emit.
//! `BENCH_CLUSTER_TENANTS` (nightly stress knob) additionally runs a
//! bigger tenant sweep, printed and completion-asserted only — the gated
//! `cluster` JSON section always comes from the fixed config.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dmtcp_sim::replica::Clock;
use dmtcp_sim::{
    BarrierPhase, BarrierTopology, CkptMode, Coordinator, Poll, RankImage, ReplicaConfig,
    ReplicaFault, ReplicaGroup, TestClock,
};
use mpi_abi::{Handle, ReduceOp};
use simnet::{ClusterSpec, Fabric, Interconnect};
use std::sync::Arc;
use stool::cluster::{Cluster, TenantSpec};
use stool::programs::RingPings;
use stool::{AppCtx, Checkpointer, MpiProgram, Session, StoolResult, Vendor};

/// World sizes for the sweep; ranks per node stays at 64 (16 nodes at the
/// top end), mirroring a fat modern CPU partition.
const SIZES: &[usize] = &[64, 128, 256, 512, 1024];
const RANKS_PER_NODE: usize = 64;

fn sizes() -> Vec<usize> {
    let max = std::env::var("BENCH_SCALE_MAX")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1024);
    SIZES.iter().copied().filter(|&n| n <= max).collect()
}

fn cluster(nranks: usize) -> ClusterSpec {
    ClusterSpec::builder()
        .nodes(nranks.div_ceil(RANKS_PER_NODE))
        .ranks_per_node(RANKS_PER_NODE.min(nranks))
        .interconnect(Interconnect::HundredGbE)
        .build()
}

// ---------------------------------------------------------------------------
// Coordinator rendezvous: flat vs tree barrier, wall clock
// ---------------------------------------------------------------------------

/// Average wall-clock milliseconds of one checkpoint rendezvous round
/// (counter-exchange barrier → image staging → double finish barrier)
/// over `n` agent threads.
///
/// The cut is pinned with `schedule_checkpoint_at` (the policy-driven
/// path), so each rank polls exactly once per round and the measured
/// region is the *rendezvous* — barrier cascades and sharded staging —
/// not the gather's safe-point polling.
fn rendezvous_round_ms(n: usize, topology: BarrierTopology) -> f64 {
    /// One untimed warmup round (absorbs thread start-up and first-touch
    /// costs) followed by the timed rounds.
    const WARMUP: u64 = 1;
    const TIMED: u64 = 6;
    let coord = Coordinator::with_topology(n, topology);
    let warm = std::sync::Barrier::new(n + 1);
    let done = std::sync::Barrier::new(n + 1);
    let ms = std::thread::scope(|s| {
        for rank in 0..n {
            let coord = coord.clone();
            let warm = &warm;
            let done = &done;
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn_scoped(s, move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    for round in 0..WARMUP + TIMED {
                        if round == WARMUP {
                            warm.wait();
                        }
                        // Every rank announces the same pinned cut; the
                        // first caller opens the round, the rest merge.
                        coord.schedule_checkpoint_at(round, CkptMode::Continue);
                        match agent.poll(round).expect("poll") {
                            Poll::Enter(session) => {
                                session
                                    .exchange_counters(&zeros, &zeros)
                                    .expect("exchange_counters");
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("finish");
                            }
                            _ => unreachable!("pinned cut must enter at its own step"),
                        }
                    }
                    done.wait();
                })
                .expect("spawn agent thread");
        }
        warm.wait();
        let start = Instant::now();
        done.wait();
        start.elapsed().as_secs_f64() * 1e3 / TIMED as f64
    });
    assert_eq!(coord.completed_rounds(), WARMUP + TIMED);
    // Keep wall-clock rows strictly positive for the gate's schema.
    ms.max(1e-6)
}

// ---------------------------------------------------------------------------
// Virtual-time programs through the full Session stack
// ---------------------------------------------------------------------------

/// Neighbor p2p drain: each rank pushes `rounds` messages at its right
/// neighbor, then drains the matching inbound traffic — the striped
/// mailbox + indexed-matcher path under load.
struct RingDrain {
    rounds: usize,
    count: usize,
}

impl MpiProgram for RingDrain {
    fn name(&self) -> &'static str {
        "scale-ring-drain"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let me = app.rank() as i32;
        let n = app.nranks() as i32;
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let payload = vec![me as f64; self.count];
        let mut incoming = vec![0.0; self.count];
        let mut p = app.pmpi();
        for round in 0..self.rounds {
            p.send_f64s(&payload, next, round as i32, Handle::COMM_WORLD)?;
        }
        for round in 0..self.rounds {
            p.recv_f64s(&mut incoming, prev, round as i32, Handle::COMM_WORLD)?;
        }
        Ok(())
    }
}

/// A couple of allreduces: the collective tree at scale.
struct AllreduceSweep {
    repeats: usize,
}

impl MpiProgram for AllreduceSweep {
    fn name(&self) -> &'static str {
        "scale-allreduce"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        let mine = app.rank() as f64;
        let n = app.nranks() as f64;
        let expect = n * (n - 1.0) / 2.0;
        for _ in 0..self.repeats {
            let total = app
                .pmpi()
                .allreduce_f64(mine, ReduceOp::Sum, Handle::COMM_WORLD)?;
            assert!((total - expect).abs() <= 1e-6 * expect.max(1.0));
        }
        Ok(())
    }
}

/// A short stepped loop with one policy-driven checkpoint in the middle:
/// the full-stack rendezvous (MANA drain + image encode + coordinator
/// barrier) in virtual time.
struct CkptOnce {
    steps: u64,
}

impl MpiProgram for CkptOnce {
    fn name(&self) -> &'static str {
        "scale-ckpt-once"
    }

    fn run(&self, app: &mut AppCtx<'_>) -> StoolResult<()> {
        app.mem.f64s_mut("state", 4);
        for step in app.resume_step()..self.steps {
            if app.checkpoint_point(step)?.is_stop() {
                return Ok(());
            }
            app.mem.f64s_mut("state", 4)[0] += step as f64;
        }
        Ok(())
    }
}

fn virt_makespan(nranks: usize, vendor: Vendor, program: &dyn MpiProgram, ckpt: bool) -> f64 {
    let mut builder = Session::builder().cluster(cluster(nranks)).vendor(vendor);
    if ckpt {
        builder = builder
            .checkpointer(Checkpointer::mana())
            .checkpoint_at_step(2, CkptMode::Continue);
    }
    let session = builder.build().expect("session");
    let out = session.launch(program).expect("launch");
    out.makespan().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Coordinator failover battery (deterministic)
// ---------------------------------------------------------------------------

/// Run the replicated-coordinator failover battery and return the total
/// leader takeovers recovered across it: one scenario per barrier phase
/// (arrive, pre-seal, post-seal, release), each a fresh 3-rank world with
/// a fresh 3-replica group whose leader is killed at that phase of the
/// middle round. Every scenario must complete all three rounds with
/// exactly one election-timeout takeover, so the metric is exactly 4 —
/// fully deterministic, gated as such.
fn failover_recovery_rounds() -> u64 {
    const PHASES: [BarrierPhase; 4] = [
        BarrierPhase::Arrive,
        BarrierPhase::PreSeal,
        BarrierPhase::PostSeal,
        BarrierPhase::Release,
    ];
    let n = 3;
    let mut recoveries = 0;
    for phase in PHASES {
        let coord = Coordinator::new(n);
        let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
        let group = Arc::new(ReplicaGroup::in_memory(ReplicaConfig::default(), clock));
        group.script_faults([ReplicaFault::KillLeaderAt(phase)]);
        coord.attach_replicas(group.clone());
        std::thread::scope(|s| {
            for rank in 0..n {
                let coord = coord.clone();
                s.spawn(move || {
                    let mut agent = coord.agent(rank);
                    let zeros = vec![0u64; n];
                    let mut step = 0u64;
                    while step < 40 {
                        if rank == 0 && [5, 15, 25].contains(&step) {
                            coord.request_checkpoint(CkptMode::Continue);
                        }
                        match agent.poll(step).expect("poll") {
                            Poll::None | Poll::KeepRunning => step += 1,
                            Poll::Enter(session) => {
                                session
                                    .exchange_counters(&zeros, &zeros)
                                    .expect("exchange_counters");
                                session.submit_image(RankImage::new(rank, n, session.epoch()));
                                session.finish().expect("failover must not poison finish");
                                step += 1;
                            }
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(coord.completed_rounds(), 3, "{phase:?}");
        let stats = group.stats();
        assert_eq!(stats.commits, 3, "{phase:?}");
        recoveries += stats.recoveries;
    }
    recoveries
}

// ---------------------------------------------------------------------------
// Multi-tenant cluster saturation (deterministic fairness, wall warns)
// ---------------------------------------------------------------------------

/// Tenants in the *gated* saturation run. Fixed: the emitted `cluster`
/// section must be a pure function of this config so benchgate can gate
/// it, whatever knobs a nightly sweep adds on top.
const CLUSTER_TENANTS: usize = 4;

struct ClusterNumbers {
    tenants: usize,
    epochs_total: u64,
    fairness_spread: f64,
    wall_ms: f64,
}

/// Run `tenants` checkpointing worlds concurrently through ONE shared
/// committer and ONE shared tier, alternating vendors, and distill the
/// run into the gated numbers:
///
/// * `epochs_total` — committed epochs summed over every tenant lane.
///   The per-tenant policy is fixed, so this is exact-deterministic.
/// * `fairness_spread` — `(max − min) / mean` of the tenants' virtual
///   makespans. Virtual time is per-world and independent of pool
///   scheduling, so the spread is a deterministic function of the
///   vendor mix: it widening means a shared component started taxing
///   some tenants more than others.
/// * `wall_ms` — wall-clock of the whole cluster run (machine-bound).
fn cluster_saturation(tenants: usize) -> ClusterNumbers {
    let root = std::env::temp_dir().join(format!(
        "stool-bench-cluster-{}-{tenants}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let mut builder = Cluster::builder().worker_threads(4).tier(root.join("tier"));
    for i in 0..tenants {
        let vendor = if i.is_multiple_of(2) {
            Vendor::Mpich
        } else {
            Vendor::OpenMpi
        };
        let session = Session::builder()
            .cluster(ClusterSpec::builder().nodes(1).ranks_per_node(2).build())
            .vendor(vendor)
            .checkpointer(Checkpointer::mana())
            .checkpoint_every(2)
            .checkpoint_store(root.join(format!("chain_{i}")))
            .build()
            .expect("tenant session");
        builder = builder.tenant(format!("t{i}"), TenantSpec::new(session));
    }
    let cluster = builder.build().expect("cluster");
    let program = RingPings {
        rounds: 6,
        payload: 64,
    };
    let ids: Vec<String> = (0..tenants).map(|i| format!("t{i}")).collect();
    let programs: Vec<(&str, &dyn MpiProgram)> = ids
        .iter()
        .map(|id| (id.as_str(), &program as &dyn MpiProgram))
        .collect();
    let start = Instant::now();
    let report = cluster.run(&programs).expect("cluster run");
    let wall_ms = (start.elapsed().as_secs_f64() * 1e3).max(1e-6);
    assert!(
        report.all_completed(),
        "every saturation tenant must complete"
    );
    let epochs_total = report.tenants.values().map(|t| t.epochs.len() as u64).sum();
    let makespans: Vec<f64> = report
        .tenants
        .values()
        .map(|t| match &t.outcome {
            Ok(o) => o.makespan().as_secs_f64(),
            Err(e) => unreachable!("completed tenant with error: {e}"),
        })
        .collect();
    let max = makespans.iter().fold(f64::MIN, |a, &b| a.max(b));
    let min = makespans.iter().fold(f64::MAX, |a, &b| a.min(b));
    let mean = makespans.iter().sum::<f64>() / makespans.len() as f64;
    let _ = std::fs::remove_dir_all(&root);
    ClusterNumbers {
        tenants,
        epochs_total,
        fairness_spread: (max - min) / mean,
        wall_ms,
    }
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

struct Measurements {
    rendezvous: Vec<(usize, f64, f64)>,
    p2p: Vec<(usize, &'static str, f64)>,
    allreduce: Vec<(usize, &'static str, f64)>,
    ckpt: Vec<(usize, &'static str, f64)>,
    failover_recovery_rounds: u64,
    cluster: ClusterNumbers,
}

fn vendor_rows(json: &mut String, key: &str, rows: &[(usize, &'static str, f64)]) {
    json.push_str(&format!("  \"{key}\": [\n"));
    for (i, (ranks, vendor, s)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ranks\": {ranks}, \"vendor\": \"{vendor}\", \"virt_makespan_s\": {s:.9}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]");
}

fn emit_json(m: &Measurements, stripes: usize) {
    let mut json = String::from("{\n  \"bench\": \"scale\",\n");
    json.push_str(&format!("  \"stripes\": {stripes},\n"));
    json.push_str(&format!(
        "  \"failover_recovery_rounds\": {},\n",
        m.failover_recovery_rounds
    ));
    json.push_str("  \"rendezvous_wallclock\": [\n");
    for (i, (ranks, flat, tree)) in m.rendezvous.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ranks\": {ranks}, \"flat_ms\": {flat:.6}, \"tree_ms\": {tree:.6}}}{}\n",
            if i + 1 == m.rendezvous.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    vendor_rows(&mut json, "p2p_drain", &m.p2p);
    json.push_str(",\n");
    vendor_rows(&mut json, "allreduce", &m.allreduce);
    json.push_str(",\n");
    vendor_rows(&mut json, "ckpt_rendezvous", &m.ckpt);
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"cluster\": {{\"tenants\": {}, \"epochs_total\": {}, \
         \"fairness_spread\": {:.9}, \"wall_ms\": {:.6}}}\n",
        m.cluster.tenants, m.cluster.epochs_total, m.cluster.fairness_spread, m.cluster.wall_ms
    ));
    json.push_str("}\n");
    // Land at the workspace root regardless of the bench CWD, so CI picks
    // one stable path up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
}

fn measure_all() -> Measurements {
    let sizes = sizes();
    let mut m = Measurements {
        rendezvous: Vec::new(),
        p2p: Vec::new(),
        allreduce: Vec::new(),
        ckpt: Vec::new(),
        failover_recovery_rounds: 0,
        cluster: cluster_saturation(CLUSTER_TENANTS),
    };
    m.failover_recovery_rounds = failover_recovery_rounds();
    println!(
        "scale/failover battery: {} takeovers recovered",
        m.failover_recovery_rounds
    );
    println!(
        "scale/cluster: {} tenants, {} epochs, fairness spread {:.6}, {:.1} ms wall",
        m.cluster.tenants, m.cluster.epochs_total, m.cluster.fairness_spread, m.cluster.wall_ms
    );
    // Nightly stress knob: a bigger tenant sweep, printed and
    // completion-asserted only — never fed into the gated JSON above.
    if let Some(n) = std::env::var("BENCH_CLUSTER_TENANTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > CLUSTER_TENANTS {
            let big = cluster_saturation(n);
            println!(
                "scale/cluster nightly sweep: {} tenants, {} epochs, fairness spread {:.6}, \
                 {:.1} ms wall (not gated)",
                big.tenants, big.epochs_total, big.fairness_spread, big.wall_ms
            );
        }
    }
    let p2p = RingDrain {
        rounds: 4,
        count: 16,
    };
    let allreduce = AllreduceSweep { repeats: 2 };
    let ckpt = CkptOnce { steps: 4 };
    for &n in &sizes {
        let flat = rendezvous_round_ms(n, BarrierTopology::Flat);
        let tree = rendezvous_round_ms(
            n,
            BarrierTopology::Tree {
                radix: BarrierTopology::DEFAULT_RADIX,
            },
        );
        println!("scale/rendezvous {n} ranks: flat {flat:.3} ms, tree {tree:.3} ms");
        m.rendezvous.push((n, flat, tree));
        for vendor in [Vendor::Mpich, Vendor::OpenMpi] {
            let label = vendor.name();
            let p = virt_makespan(n, vendor, &p2p, false);
            let a = virt_makespan(n, vendor, &allreduce, false);
            let c = virt_makespan(n, vendor, &ckpt, true);
            println!(
                "scale/{label} {n} ranks: p2p {p:.6} s, allreduce {a:.6} s, ckpt {c:.6} s (virtual)"
            );
            m.p2p.push((n, label, p));
            m.allreduce.push((n, label, a));
            m.ckpt.push((n, label, c));
        }
    }
    m
}

fn scale_benches(c: &mut Criterion) {
    let m = measure_all();
    let (fabric, _eps) = Fabric::new(&cluster(64));
    emit_json(&m, fabric.stripes());

    // Wall-clock criterion samples of the tree rendezvous at a mid size
    // (the sweep above already recorded the full curves).
    let mut group = c.benchmark_group("scale_rendezvous");
    group.sample_size(10);
    group.bench_function("tree_256", |b| {
        b.iter(|| {
            rendezvous_round_ms(
                256,
                BarrierTopology::Tree {
                    radix: BarrierTopology::DEFAULT_RADIX,
                },
            )
        });
    });
    group.bench_function("flat_256", |b| {
        b.iter(|| rendezvous_round_ms(256, BarrierTopology::Flat));
    });
    group.finish();
}

criterion_group!(benches, scale_benches);
criterion_main!(benches);
