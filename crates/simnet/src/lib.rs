//! # simnet — deterministic virtual-time cluster substrate
//!
//! The paper's experiments ran on a real 4-node cluster (48 Intel Xeon cores,
//! 10 GbE, CentOS 7 / Linux 3.10). This crate replaces that hardware with a
//! faithful synthetic equivalent:
//!
//! * **Ranks are real OS threads** exchanging **real byte buffers** over
//!   lock-free channels — correctness is exercised, not just timing.
//! * **Time is virtual.** Every rank carries a logical clock (nanoseconds)
//!   advanced by a LogGP-style cost model: per-link latency `α`, inverse
//!   bandwidth `β`, and per-message CPU overheads `o_send`/`o_recv`.
//!   Latency figures reported by the benchmark harnesses are virtual time, so
//!   they are deterministic (bit-identical across runs when jitter is off)
//!   and independent of the host machine.
//! * **Topology matters.** Ranks are block-mapped onto nodes; intra-node
//!   messages use a shared-memory link model, inter-node messages use the
//!   configured interconnect (default: 10 GbE, as in the paper).
//! * **The kernel matters.** [`KernelVersion`] models the one OS feature the
//!   paper calls out: user-space access to the FSGSBASE register (Linux
//!   ≥ 5.9). On older kernels a split-process context switch needs a syscall,
//!   which is the paper's stated cause of MANA's small-message overhead.
//!
//! The crate is MPI-agnostic: it moves [`Envelope`]s between endpoints in
//! FIFO order per sender/receiver pair and accounts time. Message *matching*
//! (communicator/tag/source semantics) is driven by the vendor MPI
//! libraries built on top (`mpich-sim`, `ompi-sim`), which share the
//! indexed matching core in [`matching`] while keeping their own cost
//! models, mirroring how real MPI progress engines differ in tuning but
//! agree on matching semantics.
//!
//! ## Transport architecture: event-driven mailboxes + indexed matching
//!
//! The transport is designed so the *translation and checkpoint layers*
//! being measured on top of it — not the harness — dominate observed cost:
//!
//! * **Zero-poll striped fabric** ([`fabric`]). Each rank owns a
//!   mailbox split into lock **stripes** keyed by source rank, so
//!   concurrent senders to one destination contend per stripe, not on one
//!   lock; a per-destination arrival stamp merges the stripes back into
//!   global arrival order. Senders push under their stripe's lock and
//!   wake a registered receiver; blocked receivers sleep on the mailbox
//!   condvar. [`Fabric::shutdown`] and [`Fabric::fail_rank`] flip an
//!   atomic flag, briefly acquire each mailbox gate, and `notify_all`, so
//!   failure-detection latency is one condvar wakeup — there is no
//!   polling interval, and deadlocked or failed worlds unwind instantly.
//!   A single `AtomicUsize` failed-rank counter lets receivers check for
//!   failures without scanning per-rank flags.
//! * **Indexed matching** ([`matching`]). Unexpected messages are
//!   bucketed per exact `(ctx_id, src, tag)` triple (FIFO per bucket) and
//!   stamped with a global arrival sequence at ingest. Fully-specified
//!   receives are O(1) hash probes; `ANY_SOURCE`/`ANY_TAG` receives
//!   compare candidate bucket *fronts* by sequence, preserving
//!   non-overtaking and cross-sender arrival order without a linear scan
//!   of the queue.
//! * **Small-message fast path**. Payloads ≤ 64 B are stored inline in
//!   the `Bytes` handle itself (see the workspace `bytes` shim): no heap
//!   allocation at send time, no refcount traffic on clone. Progress
//!   calls batch-drain every queued envelope under one lock acquisition
//!   ([`Endpoint::drain_raw_into`]) instead of locking per message.
//!
//! ## Example
//!
//! ```
//! use simnet::{ClusterSpec, World};
//!
//! let spec = ClusterSpec::builder().nodes(2).ranks_per_node(2).build();
//! let outcome = World::run(&spec, |ctx| {
//!     // A trivial ring: rank r sends its rank id to (r+1) % n.
//!     let n = ctx.nranks();
//!     let next = (ctx.rank() + 1) % n;
//!     let prev = (ctx.rank() + n - 1) % n;
//!     ctx.endpoint().send_raw(next, 0, 7, bytes::Bytes::from(vec![ctx.rank() as u8]), &ctx);
//!     let env = ctx.endpoint().recv_raw_blocking(&ctx).unwrap();
//!     assert_eq!(env.src, prev);
//!     Ok(ctx.now())
//! })
//! .unwrap();
//! assert_eq!(outcome.results.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod envelope;
pub mod error;
pub mod fabric;
pub mod link;
pub mod matching;
pub mod noise;
pub mod pool;
pub mod rank;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod world;

pub use cluster::{ClusterSpec, ClusterSpecBuilder, Interconnect, KernelVersion};
pub use envelope::Envelope;
pub use error::{SimError, SimResult};
pub use fabric::{Endpoint, Fabric};
pub use link::{LinkClass, LinkModel};
pub use matching::{ArrivalModel, MatchCore, MatchedMsg, SrcPattern, TagPattern, WireArrival};
pub use noise::NoiseModel;
pub use pool::{PoolGuard, WorkerPool};
pub use rank::RankCtx;
pub use stats::{mean, median, stddev, Summary};
pub use telemetry::{
    Counter, Event, EventKind, Gauge, Histogram, MetricValue, MetricsRegistry, Telemetry,
    TelemetryConfig,
};
pub use time::VirtualTime;
pub use world::{RunPlan, World, WorldOutcome};
