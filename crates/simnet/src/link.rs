//! Link cost model: the α/β (latency/bandwidth) half of LogGP.

use crate::time::VirtualTime;

/// Which kind of link connects two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Both ranks on the same node: shared-memory transport.
    IntraNode,
    /// Ranks on different nodes: the cluster interconnect.
    InterNode,
}

/// An α/β link model: transferring an `m`-byte message costs
/// `α + m·β` of wire time, where `β = 1 / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way small-message latency.
    pub alpha: VirtualTime,
    /// Bandwidth in bytes per second (β is its inverse).
    pub beta_inv_bps: f64,
}

impl LinkModel {
    /// Construct from latency and bandwidth (bytes/second).
    pub fn new(alpha: VirtualTime, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        LinkModel {
            alpha,
            beta_inv_bps: bandwidth_bps,
        }
    }

    /// Pure serialization time for `m` bytes (the `m·β` term).
    pub fn serialize_time(&self, bytes: usize) -> VirtualTime {
        let ns = bytes as f64 / self.beta_inv_bps * 1e9;
        VirtualTime::from_nanos(ns.round() as u64)
    }

    /// Full one-way transfer time for `m` bytes: `α + m·β`.
    pub fn transfer_time(&self, bytes: usize) -> VirtualTime {
        self.alpha + self.serialize_time(bytes)
    }

    /// The message size at which the bandwidth term equals the latency term
    /// (`m* = α·bandwidth`); a useful calibration diagnostic because latency
    /// dominates below it and bandwidth above it.
    pub fn crossover_bytes(&self) -> usize {
        (self.alpha.as_nanos() as f64 / 1e9 * self.beta_inv_bps).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_alpha_plus_m_beta() {
        // 1 GB/s, 10 us alpha.
        let link = LinkModel::new(VirtualTime::from_micros(10), 1e9);
        // 1000 bytes at 1 GB/s = 1 us.
        assert_eq!(link.serialize_time(1000), VirtualTime::from_micros(1));
        assert_eq!(link.transfer_time(1000), VirtualTime::from_micros(11));
        // Zero bytes costs exactly alpha.
        assert_eq!(link.transfer_time(0), VirtualTime::from_micros(10));
    }

    #[test]
    fn crossover_scales_with_alpha_and_bandwidth() {
        let link = LinkModel::new(VirtualTime::from_micros(10), 1e9);
        assert_eq!(link.crossover_bytes(), 10_000);
        let faster = LinkModel::new(VirtualTime::from_micros(10), 2e9);
        assert_eq!(faster.crossover_bytes(), 20_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(VirtualTime::ZERO, 0.0);
    }

    #[test]
    fn serialize_time_monotone_in_bytes() {
        let link = LinkModel::new(VirtualTime::from_micros(1), 1.1e9);
        let mut last = VirtualTime::ZERO;
        for m in [0usize, 1, 64, 4096, 1 << 20] {
            let t = link.serialize_time(m);
            assert!(t >= last);
            last = t;
        }
    }
}
