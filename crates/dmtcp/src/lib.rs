//! # dmtcp-sim — a DMTCP-like transparent checkpointing platform
//!
//! DMTCP (Distributed MultiThreaded CheckPointing) is the platform MANA is
//! built on: a coordinator process orchestrates checkpoints across ranks,
//! each process's state is serialized into an image file, and *process
//! virtualization* lets the restarted process rebuild kernel resources from
//! virtual references.
//!
//! This crate reproduces the platform layer, MPI-agnostically:
//!
//! * [`codec`] — a self-describing, checksummed binary format for images
//!   (hand-rolled: the offline crate set has no serde format crate, and a
//!   checkpointing system wants explicit control of its wire format anyway);
//! * [`memory`] — [`memory::Memory`]: the "upper-half memory" abstraction,
//!   named typed segments that stand in for the application's writable
//!   address space (see DESIGN.md §1 for why Rust needs this cooperative
//!   substitute for raw page capture);
//! * [`image`] — per-rank checkpoint images ([`image::RankImage`]) grouped
//!   into a world image ([`image::WorldImage`]), with file save/load;
//! * [`coordinator`] — the checkpoint coordinator: epoch-based requests,
//!   phase barriers, counter exchange used by the MANA drain protocol, and
//!   image collection;
//! * [`store`] — the asynchronous delta-checkpoint store: epoch chains of
//!   content-hashed blocks with per-block CRC32, atomic commits and
//!   retention GC;
//! * [`replica`] — coordinator replication: a [`replica::ReplicaGroup`]
//!   quorum-commits every epoch record (single-decree Paxos per log slot)
//!   to `ObjectTier`-backed logs before the coordinator releases the final
//!   barrier, with timeout-driven leader failover so a dead coordinator
//!   leader poisons nothing.
//!
//! In the DMTCP analogy, the [`store`] plays the role of the checkpoint
//! *image sink* behind the coordinator: where stock DMTCP has every
//! process write its whole `ckpt_*.dmtcp` file synchronously at the
//! checkpoint barrier (and forked-checkpointing/incremental-page plugins
//! exist precisely because that write dominates checkpoint cost), here the
//! coordinator's final barrier hands the complete epoch to a background
//! writer pool and the ranks resume immediately. Only content-new blocks
//! reach the disk, so steady-state epochs cost proportional to *change*,
//! not to image size — and because the chain stores vendor-neutral
//! [`image::RankImage`]s, a chain written under one MPI library restarts
//! under another exactly like a plain image does.
//!
//! The MPI-specific parts (split process, virtual ids, drain) live in
//! `mana-sim`, which plugs into this platform exactly as MANA plugs into
//! DMTCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod coordinator;
pub mod image;
pub mod memory;
pub mod replica;
pub mod store;
pub mod tier;

pub use codec::{CodecError, Reader, Writer};
pub use coordinator::{
    BarrierTopology, CkptError, CkptMode, CkptSession, Coordinator, ImageSink, Poll, RankAgent,
};
pub use image::{ImageError, RankImage, WorldImage};
pub use memory::Memory;
pub use replica::{
    BarrierPhase, Clock, LivenessTimer, ReplicaConfig, ReplicaError, ReplicaFault, ReplicaGroup,
    ReplicaRecord, ReplicaStats, SystemClock, TestClock,
};
pub use store::{
    Compression, DeltaStore, EpochStats, ManifestFormat, ScrubReport, SharedStoreWriter,
    StoreConfig, StoreError, StoreWriter, TenantQuota, TenantSink,
};
pub use tier::{
    tenant_namespace, FlakyTier, FsTier, GetFault, MemTier, ObjectTier, PutFault, Scrubber,
    SharedTier, TierConfig, TierError, TierStats, TierStatsHandle,
};
