//! The unit of transport: a stamped message between two ranks.

use bytes::Bytes;

use crate::time::VirtualTime;

/// A message in flight on the simulated fabric.
///
/// The substrate guarantees FIFO delivery per (src, dst) pair and otherwise
/// attaches no meaning to `ctx_id`/`tag`: those fields exist so the vendor
/// MPI libraries built on top can implement their own (communicator, tag,
/// source) matching engines, exactly as real MPI libraries do above their
/// network layers.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Communicator context id (vendor-defined namespace).
    pub ctx_id: u64,
    /// Message tag (vendor-defined; vendors may reserve negative tags for
    /// internal protocol messages such as collective fragments).
    pub tag: i32,
    /// Payload bytes. `Bytes` is reference-counted, so fan-out sends of the
    /// same buffer do not copy.
    pub payload: Bytes,
    /// Sender's virtual clock when the message left.
    pub depart: VirtualTime,
    /// Bytes charged on the wire (payload + protocol headers).
    pub wire_bytes: usize,
    /// Per-sender sequence number (diagnostics, drain accounting).
    pub seq: u64,
}

impl Envelope {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty (control-only message).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_shares_payload_storage() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let a = Envelope {
            src: 0,
            dst: 1,
            ctx_id: 0,
            tag: 0,
            payload: payload.clone(),
            depart: VirtualTime::ZERO,
            wire_bytes: 1088,
            seq: 0,
        };
        let b = Envelope {
            dst: 2,
            payload: payload.clone(),
            ..a.clone()
        };
        // Bytes clones are pointer-equal views of one allocation.
        assert_eq!(a.payload.as_ptr(), b.payload.as_ptr());
        assert_eq!(a.len(), 1024);
        assert!(!a.is_empty());
    }
}
