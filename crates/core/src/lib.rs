//! # stool — the three-legged stool
//!
//! The paper's contribution is a *paradigm*: with a standard MPI ABI, three
//! concerns become independently replaceable —
//!
//! 1. **the application binary** (compiled once against the standard ABI),
//! 2. **the MPI library** (chosen at launch; made ABI-compliant by the
//!    Mukautuva-like shim), and
//! 3. **the transparent checkpointing package** (MANA, itself talking only
//!    to the standard ABI).
//!
//! This crate is that paradigm as an API. A [`Session`] binds the three
//! legs together at *run time*:
//!
//! ```
//! use stool::{Session, Vendor, Checkpointer};
//! use stool::programs::RingPings;
//! use simnet::ClusterSpec;
//!
//! let program = RingPings { rounds: 4, payload: 64 };
//! // Compiled once; now pick the legs independently:
//! let session = Session::builder()
//!     .cluster(ClusterSpec::builder().nodes(2).ranks_per_node(2).build())
//!     .vendor(Vendor::OpenMpi)          // leg 2: the MPI library
//!     .checkpointer(Checkpointer::mana()) // leg 3: the checkpointer
//!     .build()
//!     .unwrap();
//! let outcome = session.launch(&program).unwrap();
//! assert!(outcome.is_completed());
//! ```
//!
//! The headline capability (paper §5.3 / Fig. 6): [`Session::launch`] a
//! program under one vendor with a checkpoint policy, get back a
//! [`RunOutcome::Checkpointed`] world image, then [`Session::restore`] it
//! under the *other* vendor and run to completion.
//!
//! Applications implement [`MpiProgram`] against [`AppCtx`], which exposes
//! the standard ABI (plus typed convenience helpers in [`mpix`]), the
//! checkpointable [`dmtcp_sim::Memory`], and the virtual-time clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod mpix;
pub mod program;
pub mod programs;
pub mod scenario;
pub mod session;
pub mod stack;
pub mod telemetry;

pub use cluster::{Cluster, ClusterBuilder, ClusterReport, TenantReport, TenantSpec};
pub use dmtcp_sim::memory::Memory;
pub use dmtcp_sim::{
    tenant_namespace, FlakyTier, FsTier, GetFault, MemTier, ObjectTier, PutFault, ScrubReport,
    Scrubber, SharedTier, TierConfig, TierError, TierStats,
};
pub use dmtcp_sim::{
    BarrierPhase, ReplicaConfig, ReplicaError, ReplicaFault, ReplicaGroup, ReplicaRecord,
    ReplicaStats,
};
pub use dmtcp_sim::{BarrierTopology, CkptMode, ImageError, WorldImage};
pub use dmtcp_sim::{
    Compression, DeltaStore, EpochStats, ManifestFormat, SharedStoreWriter, StoreConfig,
    StoreError, TenantQuota, TenantSink,
};
pub use error::{StoolError, StoolResult};
pub use mana_sim::ManaConfig;
pub use muk::{MukOverhead, Vendor};
pub use program::{AppCtx, Flow, MpiProgram};
pub use scenario::{
    matrix_json, parse_matrix, run_scenario, DurabilityKind, FaultSchedule, KillEvent,
    ScenarioResult, ScenarioSpec, Straggler, Victims,
};
pub use session::{
    Checkpointer, CkptPolicy, DurabilityPolicy, FaultPlan, Recovery, ReplicaPolicy,
    ResilienceReport, RunOutcome, Session, SessionBuilder, StorePolicy, TierPolicy,
};
pub use telemetry::{
    Event, EventKind, MetricValue, MetricsRegistry, Telemetry, TelemetryConfig, TelemetrySnapshot,
};
