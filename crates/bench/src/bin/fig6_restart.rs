//! Fig. 6: launch the modified OSU alltoall under Open MPI (+Mukautuva
//! +MANA), checkpoint during its 10-second post-warmup sleep window,
//! restart under MPICH, and compare the measured latencies against the two
//! uninterrupted launches.
//!
//! Usage: `fig6_restart [--quick]`.

use mpi_apps::{OsuKernel, OsuLatency};
use stool_bench::{fig6_data, paper_cluster, print_restart_figure, quick_cluster};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = if quick {
        OsuLatency {
            kernel: OsuKernel::Alltoall,
            min_size: 1,
            max_size: 4 * 1024,
            warmup: 2,
            iters: 10,
            ckpt_window: None, // fig6_data sets the 10 s window itself
        }
    } else {
        OsuLatency::paper_config(OsuKernel::Alltoall)
    };
    let fig = if quick {
        fig6_data(|r| quick_cluster(r, 0.0), &bench)
    } else {
        fig6_data(|r| paper_cluster(r, 0.0), &bench)
    }
    .expect("fig6 run");
    print_restart_figure(&fig);
}
