//! Library-internal object tables, Open MPI style: objects are
//! heap-"allocated" records addressed by pointer-like handles.
//!
//! Unlike the MPICH flavour's slot-indexed arrays, these tables are keyed
//! by handle address, with a bump "allocator" handing out fresh addresses —
//! the same determinism property (addresses never reused) that MANA's
//! replay log needs, achieved through a different mechanism than MPICH's.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;

use crate::kernels::ElemKind;
use crate::ompi_h::{
    self, MpiComm, MpiDatatype, MpiOp, MpiRequest, MpiStatus, OmpiResult, HANDLE_STRIDE,
};

/// A user-defined reduction function.
pub type OmpiUserFn = fn(invec: &[u8], inoutvec: &mut [u8], elem_size: usize);

/// Communicator record.
#[derive(Debug, Clone)]
pub struct CommRec {
    /// Context-id base (p2p traffic = `ctx_base`, collectives = `+1`).
    pub ctx_base: u64,
    /// Members: index = communicator rank, value = world rank.
    pub ranks: Arc<Vec<usize>>,
    /// This process's rank within the communicator.
    pub my_rank: i32,
}

impl CommRec {
    /// Communicator size.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of a communicator rank.
    pub fn world_of(&self, comm_rank: i32) -> OmpiResult<usize> {
        usize::try_from(comm_rank)
            .ok()
            .and_then(|r| self.ranks.get(r).copied())
            .ok_or(ompi_h::MPI_ERR_RANK)
    }

    /// Communicator rank of a world rank, if a member.
    pub fn comm_rank_of_world(&self, world: usize) -> Option<i32> {
        self.ranks
            .iter()
            .position(|&w| w == world)
            .map(|p| p as i32)
    }

    /// Point-to-point context id.
    pub fn p2p_ctx(&self) -> u64 {
        self.ctx_base
    }

    /// Collective context id.
    pub fn coll_ctx(&self) -> u64 {
        self.ctx_base + 1
    }
}

/// Derived datatype record.
#[derive(Debug, Clone)]
pub struct TypeRec {
    /// Size in bytes of one element.
    pub size: usize,
    /// Element kind for reductions, when meaningful.
    pub elem: Option<ElemKind>,
    /// Whether committed.
    pub committed: bool,
}

/// User-defined op record.
pub struct OpRec {
    /// Combining function.
    pub func: OmpiUserFn,
    /// Commutativity flag.
    pub commute: bool,
}

/// Request state.
pub enum ReqRec {
    /// Eager send, complete at post.
    SendDone,
    /// Unmatched receive.
    RecvPending {
        /// Context id to match on.
        ctx_id: u64,
        /// Specific source world rank, or any.
        src_world: Option<usize>,
        /// Specific tag, or any.
        tag: Option<i32>,
        /// Posted capacity.
        max_bytes: usize,
        /// Member list for status translation.
        ranks: Arc<Vec<usize>>,
    },
    /// Receive completed early.
    RecvDone {
        /// Status.
        status: MpiStatus,
        /// Payload.
        payload: Bytes,
    },
}

/// The object "heap" of one library instance.
pub struct Heap {
    comms: HashMap<usize, CommRec>,
    types: HashMap<usize, TypeRec>,
    ops: HashMap<usize, OpRec>,
    requests: HashMap<usize, ReqRec>,
    next_comm: usize,
    next_type: usize,
    next_op: usize,
    next_request: usize,
}

impl Heap {
    /// Create the heap with `MPI_COMM_WORLD` and `MPI_COMM_SELF` installed
    /// at their sentinel addresses.
    pub fn new(world_size: usize, my_world_rank: usize) -> Heap {
        let mut comms = HashMap::new();
        comms.insert(
            ompi_h::MPI_COMM_WORLD.0,
            CommRec {
                ctx_base: 0,
                ranks: Arc::new((0..world_size).collect()),
                my_rank: my_world_rank as i32,
            },
        );
        comms.insert(
            ompi_h::MPI_COMM_SELF.0,
            CommRec {
                ctx_base: 2,
                ranks: Arc::new(vec![my_world_rank]),
                my_rank: 0,
            },
        );
        Heap {
            comms,
            types: HashMap::new(),
            ops: HashMap::new(),
            requests: HashMap::new(),
            next_comm: ompi_h::DYN_COMM_BASE,
            next_type: ompi_h::DYN_TYPE_BASE,
            next_op: ompi_h::DYN_OP_BASE,
            next_request: ompi_h::DYN_REQUEST_BASE,
        }
    }

    // ---- communicators -------------------------------------------------

    /// Resolve a communicator handle.
    pub fn comm(&self, c: MpiComm) -> OmpiResult<&CommRec> {
        self.comms.get(&c.0).ok_or(ompi_h::MPI_ERR_COMM)
    }

    /// Allocate a new communicator.
    pub fn add_comm(&mut self, rec: CommRec) -> MpiComm {
        let addr = self.next_comm;
        self.next_comm += HANDLE_STRIDE;
        self.comms.insert(addr, rec);
        MpiComm(addr)
    }

    /// Free a dynamic communicator.
    pub fn free_comm(&mut self, c: MpiComm) -> OmpiResult<()> {
        if c == ompi_h::MPI_COMM_WORLD || c == ompi_h::MPI_COMM_SELF {
            return Err(ompi_h::MPI_ERR_COMM);
        }
        self.comms
            .remove(&c.0)
            .map(|_| ())
            .ok_or(ompi_h::MPI_ERR_COMM)
    }

    // ---- datatypes -------------------------------------------------------

    /// Size in bytes of one element of `dt`.
    pub fn type_size(&self, dt: MpiDatatype) -> OmpiResult<usize> {
        if let Some(&(_, size)) = ompi_h::PREDEFINED_DATATYPES.iter().find(|(h, _)| *h == dt) {
            return Ok(size);
        }
        self.types
            .get(&dt.0)
            .map(|t| t.size)
            .ok_or(ompi_h::MPI_ERR_TYPE)
    }

    /// Element kind for reductions.
    pub fn elem_kind(&self, dt: MpiDatatype) -> OmpiResult<ElemKind> {
        if let Some(kind) = ElemKind::of_builtin(dt) {
            return Ok(kind);
        }
        self.types
            .get(&dt.0)
            .ok_or(ompi_h::MPI_ERR_TYPE)?
            .elem
            .ok_or(ompi_h::MPI_ERR_TYPE)
    }

    /// Resolve a derived type record.
    pub fn derived(&self, dt: MpiDatatype) -> OmpiResult<&TypeRec> {
        self.types.get(&dt.0).ok_or(ompi_h::MPI_ERR_TYPE)
    }

    /// Allocate a derived type.
    pub fn add_type(&mut self, rec: TypeRec) -> MpiDatatype {
        let addr = self.next_type;
        self.next_type += HANDLE_STRIDE;
        self.types.insert(addr, rec);
        MpiDatatype(addr)
    }

    /// Commit a derived type.
    pub fn commit_type(&mut self, dt: MpiDatatype) -> OmpiResult<()> {
        self.types
            .get_mut(&dt.0)
            .map(|t| t.committed = true)
            .ok_or(ompi_h::MPI_ERR_TYPE)
    }

    /// Free a derived type.
    pub fn free_type(&mut self, dt: MpiDatatype) -> OmpiResult<()> {
        self.types
            .remove(&dt.0)
            .map(|_| ())
            .ok_or(ompi_h::MPI_ERR_TYPE)
    }

    // ---- ops ---------------------------------------------------------------

    /// Whether `op` is predefined.
    pub fn is_builtin_op(op: MpiOp) -> bool {
        (ompi_h::MPI_MAX.0..=ompi_h::MPI_BXOR.0).contains(&op.0)
            && (op.0 - ompi_h::MPI_MAX.0).is_multiple_of(HANDLE_STRIDE)
    }

    /// Resolve a user op.
    pub fn user_op(&self, op: MpiOp) -> OmpiResult<&OpRec> {
        self.ops.get(&op.0).ok_or(ompi_h::MPI_ERR_OP)
    }

    /// Allocate a user op.
    pub fn add_op(&mut self, rec: OpRec) -> MpiOp {
        let addr = self.next_op;
        self.next_op += HANDLE_STRIDE;
        self.ops.insert(addr, rec);
        MpiOp(addr)
    }

    /// Free a user op.
    pub fn free_op(&mut self, op: MpiOp) -> OmpiResult<()> {
        self.ops.remove(&op.0).map(|_| ()).ok_or(ompi_h::MPI_ERR_OP)
    }

    // ---- requests -------------------------------------------------------

    /// Allocate a request.
    pub fn add_request(&mut self, rec: ReqRec) -> MpiRequest {
        let addr = self.next_request;
        self.next_request += HANDLE_STRIDE;
        self.requests.insert(addr, rec);
        MpiRequest(addr)
    }

    /// Take a request out (completes exactly once).
    pub fn take_request(&mut self, r: MpiRequest) -> OmpiResult<ReqRec> {
        if r == ompi_h::MPI_REQUEST_NULL {
            return Err(ompi_h::MPI_ERR_REQUEST);
        }
        self.requests.remove(&r.0).ok_or(ompi_h::MPI_ERR_REQUEST)
    }

    /// Reinstall a still-pending request (after a failed `test`).
    pub fn put_back_request(&mut self, r: MpiRequest, rec: ReqRec) -> OmpiResult<()> {
        if self.requests.insert(r.0, rec).is_some() {
            return Err(ompi_h::MPI_ERR_INTERN);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_comms_at_sentinel_addresses() {
        let h = Heap::new(6, 2);
        assert_eq!(h.comm(ompi_h::MPI_COMM_WORLD).unwrap().size(), 6);
        assert_eq!(h.comm(ompi_h::MPI_COMM_WORLD).unwrap().my_rank, 2);
        assert_eq!(h.comm(ompi_h::MPI_COMM_SELF).unwrap().size(), 1);
        assert!(h.comm(ompi_h::MPI_COMM_NULL).is_err());
        assert!(h.comm(MpiComm(0xdead_beef)).is_err());
    }

    #[test]
    fn comm_allocation_addresses_advance_by_stride() {
        let mut h = Heap::new(2, 0);
        let a = h.add_comm(CommRec {
            ctx_base: 4,
            ranks: Arc::new(vec![0]),
            my_rank: 0,
        });
        let b = h.add_comm(CommRec {
            ctx_base: 6,
            ranks: Arc::new(vec![0]),
            my_rank: 0,
        });
        assert_eq!(b.0 - a.0, HANDLE_STRIDE);
        h.free_comm(a).unwrap();
        let c = h.add_comm(CommRec {
            ctx_base: 8,
            ranks: Arc::new(vec![0]),
            my_rank: 0,
        });
        assert!(c.0 > b.0, "addresses are never reused");
        assert!(h.free_comm(ompi_h::MPI_COMM_WORLD).is_err());
    }

    #[test]
    fn type_sizes() {
        let mut h = Heap::new(2, 0);
        assert_eq!(h.type_size(ompi_h::MPI_DOUBLE).unwrap(), 8);
        assert_eq!(h.type_size(ompi_h::MPI_INT16_T).unwrap(), 2);
        let t = h.add_type(TypeRec {
            size: 40,
            elem: Some(ElemKind::Float(8)),
            committed: false,
        });
        assert_eq!(h.type_size(t).unwrap(), 40);
        h.commit_type(t).unwrap();
        assert!(h.derived(t).unwrap().committed);
        h.free_type(t).unwrap();
        assert!(h.type_size(t).is_err());
    }

    #[test]
    fn builtin_op_detection_respects_stride() {
        assert!(Heap::is_builtin_op(ompi_h::MPI_SUM));
        assert!(Heap::is_builtin_op(ompi_h::MPI_BXOR));
        assert!(!Heap::is_builtin_op(ompi_h::MPI_OP_NULL));
        // An address between two predefined ops is not a valid handle.
        assert!(!Heap::is_builtin_op(MpiOp(ompi_h::MPI_SUM.0 + 1)));
    }

    #[test]
    fn request_lifecycle() {
        let mut h = Heap::new(2, 0);
        let r = h.add_request(ReqRec::SendDone);
        assert!(matches!(h.take_request(r).unwrap(), ReqRec::SendDone));
        assert!(h.take_request(r).is_err());
        h.put_back_request(r, ReqRec::SendDone).unwrap();
        assert!(h.take_request(r).is_ok());
        assert!(h.take_request(ompi_h::MPI_REQUEST_NULL).is_err());
    }
}
