//! Canonical (rank-ordered) reduction folding for the shim's
//! deterministic-reductions mode.
//!
//! Different MPI implementations associate floating-point reductions
//! differently (recursive doubling vs ring vs Rabenseifner), so the same
//! `MPI_Allreduce` can return different final bits under MPICH and
//! Open MPI — a real portability wart the MPI Forum's ABI discussions
//! call out, and one this repository's cross-vendor restart tests run
//! straight into. [`crate::MukShim`] can therefore route reductions
//! through a **canonical order**: gather all contributions, fold them in
//! world-rank order (a plain left fold, rank 0 first), and distribute the
//! result. The answer is then a pure function of the inputs — identical
//! bits under every vendor — at the price of a less scalable algorithm.
//!
//! This module provides the fold kernel on standard-ABI types. It
//! deliberately supports only predefined datatypes and operations: user
//! ops and derived types fall back to the vendor's native reduction
//! (MPI already requires user ops to tolerate implementation-defined
//! association).

use mpi_abi::{AbiError, AbiResult, Datatype, ReduceOp};

macro_rules! fold_as {
    ($ty:ty, $acc:expr, $next:expr, $f:expr) => {{
        const W: usize = std::mem::size_of::<$ty>();
        for (a, b) in $acc.chunks_exact_mut(W).zip($next.chunks_exact(W)) {
            let x = <$ty>::from_le_bytes(a.try_into().expect("chunk width"));
            let y = <$ty>::from_le_bytes(b.try_into().expect("chunk width"));
            let f: fn($ty, $ty) -> $ty = $f;
            a.copy_from_slice(&f(x, y).to_le_bytes());
        }
    }};
}

macro_rules! int_fold {
    ($ty:ty, $op:expr, $acc:expr, $next:expr) => {
        match $op {
            ReduceOp::Sum => fold_as!($ty, $acc, $next, |x, y| x.wrapping_add(y)),
            ReduceOp::Prod => fold_as!($ty, $acc, $next, |x, y| x.wrapping_mul(y)),
            ReduceOp::Min => fold_as!($ty, $acc, $next, |x, y| x.min(y)),
            ReduceOp::Max => fold_as!($ty, $acc, $next, |x, y| x.max(y)),
            ReduceOp::Land => fold_as!($ty, $acc, $next, |x, y| ((x != 0) && (y != 0)) as $ty),
            ReduceOp::Lor => fold_as!($ty, $acc, $next, |x, y| ((x != 0) || (y != 0)) as $ty),
            ReduceOp::Lxor => fold_as!($ty, $acc, $next, |x, y| ((x != 0) ^ (y != 0)) as $ty),
            ReduceOp::Band => fold_as!($ty, $acc, $next, |x, y| x & y),
            ReduceOp::Bor => fold_as!($ty, $acc, $next, |x, y| x | y),
            ReduceOp::Bxor => fold_as!($ty, $acc, $next, |x, y| x ^ y),
        }
    };
}

macro_rules! float_fold {
    ($ty:ty, $op:expr, $acc:expr, $next:expr) => {
        match $op {
            ReduceOp::Sum => fold_as!($ty, $acc, $next, |x, y| x + y),
            ReduceOp::Prod => fold_as!($ty, $acc, $next, |x, y| x * y),
            ReduceOp::Min => fold_as!($ty, $acc, $next, |x, y| x.min(y)),
            ReduceOp::Max => fold_as!($ty, $acc, $next, |x, y| x.max(y)),
            ReduceOp::Land => fold_as!($ty, $acc, $next, |x, y| ((x != 0.0) && (y != 0.0)) as u8
                as $ty),
            ReduceOp::Lor => fold_as!($ty, $acc, $next, |x, y| ((x != 0.0) || (y != 0.0)) as u8
                as $ty),
            ReduceOp::Lxor => fold_as!($ty, $acc, $next, |x, y| ((x != 0.0) ^ (y != 0.0)) as u8
                as $ty),
            // Bitwise ops are undefined on floats in MPI.
            ReduceOp::Band | ReduceOp::Bor | ReduceOp::Bxor => return Err(AbiError::Op),
        }
    };
}

/// Fold `next` into `acc` (element-wise `acc = op(acc, next)`) on a
/// predefined datatype. Buffer lengths must match and be whole elements.
pub fn combine(op: ReduceOp, dt: Datatype, acc: &mut [u8], next: &[u8]) -> AbiResult<()> {
    if acc.len() != next.len() || !acc.len().is_multiple_of(dt.size()) {
        return Err(AbiError::Count);
    }
    match dt {
        Datatype::Byte | Datatype::Uint8 | Datatype::Char => int_fold!(u8, op, acc, next),
        Datatype::Int8 => int_fold!(i8, op, acc, next),
        Datatype::Int16 => int_fold!(i16, op, acc, next),
        Datatype::Uint16 => int_fold!(u16, op, acc, next),
        Datatype::Int32 => int_fold!(i32, op, acc, next),
        Datatype::Uint32 => int_fold!(u32, op, acc, next),
        Datatype::Int64 => int_fold!(i64, op, acc, next),
        Datatype::Uint64 => int_fold!(u64, op, acc, next),
        Datatype::Float => float_fold!(f32, op, acc, next),
        Datatype::Double => float_fold!(f64, op, acc, next),
    }
    Ok(())
}

/// Left-fold `n` rank-ordered contributions laid out contiguously in
/// `gathered` (rank 0's block first) into `out`.
pub fn fold_ranks(
    op: ReduceOp,
    dt: Datatype,
    gathered: &[u8],
    n: usize,
    out: &mut [u8],
) -> AbiResult<()> {
    if n == 0 || gathered.len() != out.len() * n {
        return Err(AbiError::Count);
    }
    let block = out.len();
    out.copy_from_slice(&gathered[..block]);
    for r in 1..n {
        combine(op, dt, out, &gathered[r * block..(r + 1) * block])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_sum_folds_in_rank_order() {
        let gathered: Vec<u8> = [1i32, 2, 3, 4]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let mut out = [0u8; 4];
        fold_ranks(ReduceOp::Sum, Datatype::Int32, &gathered, 4, &mut out).unwrap();
        assert_eq!(i32::from_le_bytes(out), 10);
    }

    #[test]
    fn float_fold_is_strict_left_fold() {
        // (a + b) + c with values chosen so association matters:
        // (1 + 1e16) - 1e16 = 0, but 1 + (1e16 - 1e16) = 1.
        let vals = [1.0f64, 1.0e16, -1.0e16];
        let gathered: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = [0u8; 8];
        fold_ranks(ReduceOp::Sum, Datatype::Double, &gathered, 3, &mut out).unwrap();
        let left = ((vals[0] + vals[1]) + vals[2]).to_bits();
        assert_eq!(f64::from_le_bytes(out).to_bits(), left);
        // Any other association gives a different answer on this input.
        assert_ne!(left, (vals[0] + (vals[1] + vals[2])).to_bits());
    }

    #[test]
    fn all_ops_work_on_unsigned() {
        for op in ReduceOp::ALL {
            let gathered: Vec<u8> = [0b1100u64, 0b1010]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let mut out = [0u8; 8];
            fold_ranks(op, Datatype::Uint64, &gathered, 2, &mut out).unwrap();
            let v = u64::from_le_bytes(out);
            let expect = match op {
                ReduceOp::Sum => 0b1100 + 0b1010,
                ReduceOp::Prod => 0b1100 * 0b1010,
                ReduceOp::Min => 0b1010,
                ReduceOp::Max => 0b1100,
                ReduceOp::Land | ReduceOp::Lor => 1,
                ReduceOp::Lxor => 0,
                ReduceOp::Band => 0b1000,
                ReduceOp::Bor => 0b1110,
                ReduceOp::Bxor => 0b0110,
            };
            assert_eq!(v, expect, "{op:?}");
        }
    }

    #[test]
    fn bitwise_on_floats_rejected() {
        let mut out = [0u8; 8];
        let err = fold_ranks(ReduceOp::Band, Datatype::Double, &[0u8; 16], 2, &mut out);
        assert_eq!(err, Err(AbiError::Op));
    }

    #[test]
    fn length_mismatches_rejected() {
        let mut out = [0u8; 8];
        assert_eq!(
            fold_ranks(ReduceOp::Sum, Datatype::Double, &[0u8; 12], 2, &mut out),
            Err(AbiError::Count)
        );
        let mut acc = [0u8; 7];
        assert_eq!(
            combine(ReduceOp::Sum, Datatype::Double, &mut acc, &[0u8; 7]),
            Err(AbiError::Count)
        );
    }
}
