//! The exploration engine: a token-passing scheduler plus a DFS over
//! the schedule-choice tree.
//!
//! One execution = one run of the model closure. Threads are real OS
//! threads, but only the thread holding the token executes; every
//! visible operation ends with [`Execution::schedule`], which picks the
//! next thread to run. Where more than one thread is runnable, that
//! pick is a recorded *branch*; [`explore`] re-runs the closure,
//! advancing the deepest unexhausted branch each time, until the whole
//! tree is visited.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Search bounds. Exceeding any bound fails the model — a proof that
/// no longer covers the space must say so, not silently truncate.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum live threads per execution (including the model thread).
    pub max_threads: usize,
    /// Maximum scheduling branches (choice points) per execution;
    /// tripping this usually means an unbounded spin loop in the model.
    pub max_branches: usize,
    /// Maximum executions (distinct interleavings) per model.
    pub max_executions: u64,
}

impl Default for Bounds {
    fn default() -> Bounds {
        Bounds {
            max_threads: 4,
            max_branches: 2_000,
            max_executions: 250_000,
        }
    }
}

/// One recorded choice point: which of `options` runnable threads ran.
#[derive(Debug, Clone, Copy)]
struct Choice {
    taken: usize,
    options: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOn {
    Lock(usize),
    Join(usize),
}

struct State {
    threads: Vec<ThreadState>,
    /// Thread currently holding the token.
    active: usize,
    /// Mutex slots registered this execution (`held_by` = owner tid).
    locks: Vec<Option<usize>>,
    /// The DFS path: prefix replayed from earlier executions, suffix
    /// appended as this execution reaches new choice points.
    path: Vec<Choice>,
    /// Next path slot this execution will consume.
    cursor: usize,
    /// Every unfinished thread must unwind now (a failure was recorded).
    abort: bool,
    /// First failure of this execution (assert, deadlock, bound).
    failure: Option<String>,
    bounds: Bounds,
}

pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// (execution, my thread id) for threads participating in a model.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's execution context; panics outside `model`.
pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

/// Bind a spawned OS thread to its model-thread identity.
pub(crate) fn adopt(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Clear the binding before the OS thread exits.
pub(crate) fn disown() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Execution {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record `msg` as this execution's failure and wake every thread
    /// so it can unwind.
    fn fail(&self, st: &mut State, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg.clone());
        }
        st.abort = true;
        self.cv.notify_all();
        panic!("loom execution failed: {msg}");
    }

    /// The scheduling point: pick the next thread to run (a recorded
    /// branch when several are runnable), hand it the token, and block
    /// until this thread is granted the token again (immediately, if it
    /// picked itself). `tid` may have marked itself `Blocked` first.
    pub(crate) fn schedule(&self, tid: usize) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic!("loom execution aborted");
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Runnable)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().any(|t| *t != ThreadState::Finished) {
                let held: Vec<usize> = st
                    .locks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, o)| o.map(|_| i))
                    .collect();
                let msg = format!(
                    "deadlock: every unfinished thread is blocked \
                     (threads {:?}, locks held {held:?}, schedule {})",
                    st.threads,
                    path_string(&st.path, st.cursor),
                );
                self.fail(&mut st, msg);
            }
            // Everything finished: nothing to hand the token to.
            return;
        }
        let chosen = if runnable.len() == 1 {
            runnable[0]
        } else {
            let branches_so_far = st.cursor;
            if branches_so_far >= st.bounds.max_branches {
                let msg = format!(
                    "branch bound {} exceeded (unbounded loop in the model?)",
                    st.bounds.max_branches
                );
                self.fail(&mut st, msg);
            }
            let idx = if st.cursor < st.path.len() {
                st.path[st.cursor].taken
            } else {
                st.path.push(Choice {
                    taken: 0,
                    options: runnable.len(),
                });
                0
            };
            st.cursor += 1;
            runnable[idx]
        };
        st.active = chosen;
        self.cv.notify_all();
        while !(st.abort || (st.active == tid && st.threads[tid] == ThreadState::Runnable)) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.abort {
            drop(st);
            panic!("loom execution aborted");
        }
    }

    /// Block until this thread is granted the token (no branch is
    /// recorded — the grant was someone else's scheduling decision).
    pub(crate) fn wait_for_token(&self, tid: usize) {
        let mut st = self.lock_state();
        while !(st.abort || (st.active == tid && st.threads[tid] == ThreadState::Runnable)) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.abort {
            drop(st);
            panic!("loom execution aborted");
        }
    }

    /// Register a new thread slot; the real OS thread is spawned by the
    /// caller. The new thread is runnable but waits for the token.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        if st.threads.len() >= st.bounds.max_threads {
            let msg = format!("thread bound {} exceeded", st.bounds.max_threads);
            self.fail(&mut st, msg);
        }
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Mark `tid` finished, wake joiners, and hand the token onward.
    pub(crate) fn finish_thread(&self, tid: usize, panicked: bool) {
        let mut st = self.lock_state();
        st.threads[tid] = ThreadState::Finished;
        if panicked && st.failure.is_none() {
            st.failure = Some(format!(
                "thread {tid} panicked (schedule {})",
                path_string(&st.path, st.cursor)
            ));
            st.abort = true;
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::Blocked(BlockOn::Join(tid)) {
                st.threads[t] = ThreadState::Runnable;
            }
        }
        // Hand off without waiting: this thread is done. Pick any
        // runnable successor deterministically (a single-candidate
        // handoff; if several are runnable the *next* schedule() by the
        // chosen thread records the real branch).
        if let Some(next) = (0..st.threads.len()).find(|&t| st.threads[t] == ThreadState::Runnable)
        {
            st.active = next;
        }
        self.cv.notify_all();
    }

    /// Block until `target` finishes (a scheduling point).
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        {
            let mut st = self.lock_state();
            if st.threads[target] != ThreadState::Finished {
                st.threads[tid] = ThreadState::Blocked(BlockOn::Join(target));
            }
        }
        self.schedule(tid);
    }

    /// Register a fresh mutex slot for this execution.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.locks.push(None);
        st.locks.len() - 1
    }

    /// Acquire mutex `id` (a scheduling point; blocks while held).
    pub(crate) fn lock_acquire(&self, tid: usize, id: usize) {
        loop {
            {
                let mut st = self.lock_state();
                if st.abort {
                    drop(st);
                    panic!("loom execution aborted");
                }
                match st.locks[id] {
                    None => {
                        st.locks[id] = Some(tid);
                        drop(st);
                        self.schedule(tid);
                        return;
                    }
                    Some(owner) if owner == tid => {
                        let msg = format!("thread {tid} re-locked mutex {id} (self-deadlock)");
                        self.fail(&mut st, msg);
                    }
                    Some(_) => {
                        st.threads[tid] = ThreadState::Blocked(BlockOn::Lock(id));
                    }
                }
            }
            // Blocked: hand the token off and re-contend when woken.
            self.schedule(tid);
        }
    }

    /// Release mutex `id`, waking its waiters (a scheduling point).
    pub(crate) fn lock_release(&self, tid: usize, id: usize) {
        self.lock_release_quiet(tid, id);
        self.schedule(tid);
    }

    /// Release without a scheduling point and without ever panicking —
    /// the path guard destructors take while a thread is unwinding
    /// (scheduling there would double-panic in a destructor).
    pub(crate) fn lock_release_quiet(&self, tid: usize, id: usize) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.locks[id], Some(tid), "unlock by non-owner");
        st.locks[id] = None;
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::Blocked(BlockOn::Lock(id)) {
                st.threads[t] = ThreadState::Runnable;
            }
        }
        self.cv.notify_all();
    }
}

/// Render a schedule path for failure messages: `2/3` = option 2 of 3.
fn path_string(path: &[Choice], upto: usize) -> String {
    let steps: Vec<String> = path
        .iter()
        .take(upto)
        .map(|c| format!("{}/{}", c.taken, c.options))
        .collect();
    format!("[{}]", steps.join(" "))
}

/// Advance `path` to the next unexplored interleaving (DFS backtrack).
/// Returns `false` when the whole tree has been visited.
fn next_path(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.taken + 1 < last.options {
            last.taken += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Run `f` under every interleaving within `bounds`.
pub(crate) fn explore(bounds: Bounds, f: Arc<dyn Fn() + Send + Sync>) {
    let mut path: Vec<Choice> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        if executions >= bounds.max_executions {
            panic!(
                "loom: execution bound {} exceeded after {executions} interleavings",
                bounds.max_executions
            );
        }
        executions += 1;

        let exec = Arc::new(Execution {
            state: Mutex::new(State {
                threads: vec![ThreadState::Runnable],
                active: 0,
                locks: Vec::new(),
                path: std::mem::take(&mut path),
                cursor: 0,
                abort: false,
                failure: None,
                bounds,
            }),
            cv: Condvar::new(),
        });

        CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), 0)));
        let result = catch_unwind(AssertUnwindSafe(|| f()));
        CURRENT.with(|c| *c.borrow_mut() = None);

        // Whatever happened, no spawned thread may outlive the
        // execution: abort stragglers and wait for them to unwind.
        {
            let mut st = exec.lock_state();
            let leaked = st.threads[1..].iter().any(|t| *t != ThreadState::Finished);
            if leaked {
                if result.is_ok() && st.failure.is_none() {
                    st.failure = Some("model closure returned with unjoined threads".to_string());
                }
                st.abort = true;
                exec.cv.notify_all();
            }
            while st.threads[1..].iter().any(|t| *t != ThreadState::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            st.threads[0] = ThreadState::Finished;
        }

        let st = exec.lock_state();
        if result.is_err() || st.failure.is_some() {
            let detail = st
                .failure
                .clone()
                .unwrap_or_else(|| "assertion failed in model thread".to_string());
            panic!(
                "loom: failing interleaving #{executions}: {detail} — schedule {}",
                path_string(&st.path, st.cursor)
            );
        }
        path = st.path.clone();
        drop(st);

        if !next_path(&mut path) {
            return;
        }
    }
}
