//! Criterion: the real cost of the Mukautuva translation layer and the
//! MANA virtual-id layer — the mechanisms whose *modelled* costs drive the
//! paper's overhead numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_abi::{Handle, MpiAbi};
use muk::{registry::open_vendor, MukOverhead, MukShim, Vendor};
use simnet::{ClusterSpec, World};

fn translation(c: &mut Criterion) {
    let spec = ClusterSpec::builder().nodes(1).ranks_per_node(1).build();

    let mut group = c.benchmark_group("translation");
    group.sample_size(20);

    group.bench_function("native_comm_rank", |b| {
        b.iter(|| {
            World::run(&spec, |ctx| {
                let mut lib = open_vendor(Vendor::Mpich, ctx.clone());
                for _ in 0..10_000 {
                    lib.comm_rank(Handle::COMM_WORLD).unwrap();
                }
                Ok(())
            })
            .unwrap()
        });
    });

    group.bench_function("muk_comm_rank", |b| {
        b.iter(|| {
            World::run(&spec, |ctx| {
                let mut shim =
                    MukShim::load_with_overhead(Vendor::Mpich, ctx.clone(), MukOverhead::default());
                for _ in 0..10_000 {
                    shim.comm_rank(Handle::COMM_WORLD).unwrap();
                }
                Ok(())
            })
            .unwrap()
        });
    });

    group.bench_function("mana_muk_comm_rank", |b| {
        b.iter(|| {
            World::run(&spec, |ctx| {
                let shim = MukShim::load(Vendor::Mpich, ctx.clone());
                let mut mana = mana_sim::ManaMpi::launch(
                    ctx.clone(),
                    mana_sim::ManaConfig::default(),
                    Box::new(shim),
                );
                for _ in 0..10_000 {
                    mana.comm_rank(Handle::COMM_WORLD).unwrap();
                }
                Ok(())
            })
            .unwrap()
        });
    });

    group.bench_function("dynamic_handle_translation", |b| {
        b.iter(|| {
            World::run(&spec, |ctx| {
                let mut shim = MukShim::load(Vendor::OpenMpi, ctx.clone());
                let dup = shim.comm_dup(Handle::COMM_WORLD).unwrap();
                for _ in 0..10_000 {
                    shim.comm_rank(dup).unwrap();
                }
                shim.comm_free(dup).unwrap();
                Ok(())
            })
            .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, translation);
criterion_main!(benches);
