//! MPICH-flavour tuning: per-message software costs and collective
//! algorithm selection thresholds.
//!
//! These knobs are what make this library *perform* like the MPICH family:
//! a heavier per-message software path than the Open MPI flavour, Bruck /
//! pairwise alltoall, binomial / van-de-Geijn broadcast, recursive-doubling
//! / Rabenseifner allreduce, with MPICH-like switchover points.

use simnet::VirtualTime;

/// Tuning parameters for the MPICH-flavoured library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// CPU time charged on the sender per message (matching, descriptor
    /// setup, copy into the eager buffer).
    pub o_send: VirtualTime,
    /// CPU time charged on the receiver per matched message.
    pub o_recv: VirtualTime,
    /// Messages larger than this use the rendezvous protocol, which costs
    /// an extra round trip of the link latency before data flows.
    pub eager_threshold: usize,
    /// Alltoall: use Bruck's algorithm for block sizes up to this.
    pub alltoall_bruck_max: usize,
    /// Alltoall: use pairwise exchange for block sizes from this up
    /// (between the two: posted nonblocking all-to-all).
    pub alltoall_pairwise_min: usize,
    /// Bcast: binomial tree up to this payload; above it, the van de Geijn
    /// scatter + allgather algorithm. On the paper testbed's high-latency
    /// 10 GbE the allgather phase is latency-bound until well past the OSU
    /// sweep, so the switchover sits far above MPICH's low-latency-fabric
    /// default of 12 KiB.
    pub bcast_binomial_max: usize,
    /// Allreduce: recursive doubling up to this payload; above it,
    /// Rabenseifner's reduce-scatter + allgather.
    pub allreduce_recdbl_max: usize,
    /// Allgather: Bruck up to this payload, ring above.
    pub allgather_bruck_max: usize,
    /// ch3:sock progress-engine latency added to each small inter-node
    /// message. MPICH 3.3.2 over plain 10 GbE runs the sock channel, whose
    /// poll-driven progress loop wakes noticeably later than Open MPI's
    /// leaner btl/tcp event path. Collectives hide most of it (few
    /// inter-node hops on the critical path); latency-bound halo exchanges
    /// like `wave_mpi` feel the full cost per step — which is what makes
    /// the paper's Fig. 5 wave bars differ by ~3x between vendors while
    /// Figs. 2-4 stay within ~1.3x.
    pub sock_small_latency: VirtualTime,
    /// Payloads up to this size pay `sock_small_latency`.
    pub sock_small_max: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            o_send: VirtualTime::from_nanos(1_800),
            o_recv: VirtualTime::from_nanos(1_800),
            eager_threshold: 64 * 1024,
            alltoall_bruck_max: 256,
            alltoall_pairwise_min: 32 * 1024,
            bcast_binomial_max: 512 * 1024,
            allreduce_recdbl_max: 32 * 1024,
            allgather_bruck_max: 4 * 1024,
            sock_small_latency: VirtualTime::from_micros(60),
            sock_small_max: 256,
        }
    }
}

impl Tuning {
    /// Library version string advertised through the ABI.
    pub const VERSION: &'static str = "mpich-sim 3.3.2 (native ABI: integer handles)";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        let t = Tuning::default();
        assert!(t.alltoall_bruck_max < t.alltoall_pairwise_min);
        assert!(t.o_send > VirtualTime::ZERO);
        // The sock-channel penalty only applies to genuinely small
        // messages (it models per-wakeup latency, not bandwidth).
        assert!(t.sock_small_max <= t.eager_threshold);
        assert!(t.sock_small_latency > VirtualTime::ZERO);
    }
}
