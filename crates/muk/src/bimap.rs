//! Bidirectional handle table used by the wrap libraries.
//!
//! Maps standard-ABI dynamic handle slots to vendor-native handles and
//! back. Slot allocation is monotonic (never reused) so the mapping stays
//! deterministic across a MANA replay.

use std::collections::HashMap;
use std::hash::Hash;

use mpi_abi::{Handle, HandleKind};

/// A bidirectional map between standard dynamic handles (of one kind) and
/// native handles of type `N`.
pub(crate) struct BiMap<N> {
    kind: HandleKind,
    to_native: HashMap<u32, N>,
    from_native: HashMap<N, u32>,
    next_slot: u32,
}

impl<N: Copy + Eq + Hash> BiMap<N> {
    pub(crate) fn new(kind: HandleKind) -> BiMap<N> {
        BiMap {
            kind,
            to_native: HashMap::new(),
            from_native: HashMap::new(),
            next_slot: Handle::FIRST_DYNAMIC_INDEX,
        }
    }

    /// Register a native handle, returning its standard handle (idempotent:
    /// re-registering returns the existing mapping).
    pub(crate) fn intern(&mut self, native: N) -> Handle {
        if let Some(&slot) = self.from_native.get(&native) {
            return Handle::dynamic(self.kind, slot);
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.to_native.insert(slot, native);
        self.from_native.insert(native, slot);
        Handle::dynamic(self.kind, slot)
    }

    /// Resolve a standard handle to its native handle.
    pub(crate) fn native_of(&self, h: Handle) -> Option<N> {
        if h.kind() != self.kind {
            return None;
        }
        self.to_native.get(&h.index()).copied()
    }

    /// Remove a mapping (on free/completion). Returns the native handle.
    pub(crate) fn remove(&mut self, h: Handle) -> Option<N> {
        if h.kind() != self.kind {
            return None;
        }
        let native = self.to_native.remove(&h.index())?;
        self.from_native.remove(&native);
        Some(native)
    }

    /// Number of live mappings (diagnostics; exercised by tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.to_native.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_bijective() {
        let mut m: BiMap<i32> = BiMap::new(HandleKind::Comm);
        let a = m.intern(0x4400_1234);
        let b = m.intern(0x4400_5678);
        assert_ne!(a, b);
        assert_eq!(m.intern(0x4400_1234), a);
        assert_eq!(m.native_of(a), Some(0x4400_1234));
        assert_eq!(m.native_of(b), Some(0x4400_5678));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn remove_clears_both_directions() {
        let mut m: BiMap<i32> = BiMap::new(HandleKind::Request);
        let a = m.intern(7);
        assert_eq!(m.remove(a), Some(7));
        assert_eq!(m.native_of(a), None);
        assert_eq!(m.remove(a), None);
        // Slot is not recycled.
        let b = m.intern(7);
        assert_ne!(a, b);
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut m: BiMap<i32> = BiMap::new(HandleKind::Comm);
        let a = m.intern(1);
        let wrong = Handle::dynamic(HandleKind::Datatype, a.index());
        assert_eq!(m.native_of(wrong), None);
        assert_eq!(m.remove(wrong), None);
    }
}
