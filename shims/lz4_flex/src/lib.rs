//! Offline stand-in for the `lz4_flex` crate.
//!
//! Implements the LZ4 *block* format (the real crate's `block` module
//! surface this workspace uses): a greedy hash-table matcher on the
//! compression side, LSIC-extended literal/match lengths, 16-bit offsets,
//! and an overlap-aware copy on the decompression side. Every read on the
//! decode path is bounds-checked and the output is capped at the caller's
//! expected size, so malformed or hostile input returns
//! [`DecompressError`] — it can never panic or balloon memory.
//!
//! Format rules honored (LZ4 block spec): a match is at least 4 bytes, a
//! match never starts within the last 12 bytes of the input, the last 5
//! bytes are always literals, and the final sequence is literals-only.

#![forbid(unsafe_code)]

use std::fmt;

/// Shortest representable match.
const MIN_MATCH: usize = 4;
/// A match must not start within this many bytes of the input end.
const MFLIMIT: usize = 12;
/// The last bytes of the input are always emitted as literals.
const LAST_LITERALS: usize = 5;
/// log2 of the matcher hash-table size.
const HASH_BITS: u32 = 13;

/// Why decompression failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The compressed stream ended inside a token, length, offset or run.
    Truncated,
    /// A match offset was zero or reached before the output start.
    BadOffset,
    /// The output exceeded the size the caller declared.
    OutputTooLarge {
        /// The declared expected size.
        expected: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed block truncated"),
            DecompressError::BadOffset => write!(f, "match offset outside decoded output"),
            DecompressError::OutputTooLarge { expected } => {
                write!(f, "decoded output exceeds expected {expected} bytes")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

fn hash(seq: u32) -> usize {
    (seq.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Append an LSIC-extended length (already reduced by the 15 carried in
/// the token nibble).
fn push_lsic(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn emit(out: &mut Vec<u8>, literals: &[u8], m: Option<(u16, usize)>) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = m.map_or(0, |(_, len)| (len - MIN_MATCH).min(15));
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if literals.len() >= 15 {
        push_lsic(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&offset.to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_lsic(out, len - MIN_MATCH - 15);
        }
    }
}

/// Compress `input` as one LZ4 block. Deterministic; an incompressible
/// input grows by at most `input.len()/255 + 16` bytes of framing.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MFLIMIT + 1 {
        emit(&mut out, input, None);
        return out;
    }
    // Positions are stored +1 so 0 means "empty slot".
    let mut table = vec![0usize; 1 << HASH_BITS];
    let match_limit = n - MFLIMIT;
    let extend_limit = n - LAST_LITERALS;
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i < match_limit {
        let seq = u32::from_le_bytes(input[i..i + 4].try_into().expect("4 bytes"));
        let slot = hash(seq);
        let cand = table[slot];
        table[slot] = i + 1;
        if cand != 0 {
            let c = cand - 1;
            if i - c <= u16::MAX as usize && input[c..c + 4] == input[i..i + 4] {
                let mut len = MIN_MATCH;
                while i + len < extend_limit && input[c + len] == input[i + len] {
                    len += 1;
                }
                emit(&mut out, &input[anchor..i], Some(((i - c) as u16, len)));
                i += len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit(&mut out, &input[anchor..], None);
    out
}

/// Decompress one LZ4 block. `expected` is the uncompressed size the
/// caller recorded at compression time; output beyond it is an error
/// (the bound is what keeps hostile input from ballooning memory).
pub fn decompress(input: &[u8], expected: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0usize;
    let read_lsic = |i: &mut usize, base: usize| -> Result<usize, DecompressError> {
        let mut len = base;
        if base == 15 {
            loop {
                let b = *input.get(*i).ok_or(DecompressError::Truncated)?;
                *i += 1;
                len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        Ok(len)
    };
    loop {
        let token = *input.get(i).ok_or(DecompressError::Truncated)?;
        i += 1;
        let lit_len = read_lsic(&mut i, (token >> 4) as usize)?;
        let lits = input
            .get(i..i + lit_len)
            .ok_or(DecompressError::Truncated)?;
        i += lit_len;
        if out.len() + lit_len > expected {
            return Err(DecompressError::OutputTooLarge { expected });
        }
        out.extend_from_slice(lits);
        if i == input.len() {
            // The final sequence is literals-only.
            return Ok(out);
        }
        let off = input.get(i..i + 2).ok_or(DecompressError::Truncated)?;
        let offset = u16::from_le_bytes(off.try_into().expect("2 bytes")) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::BadOffset);
        }
        let match_len = read_lsic(&mut i, (token & 0x0F) as usize)? + MIN_MATCH;
        if out.len() + match_len > expected {
            return Err(DecompressError::OutputTooLarge { expected });
        }
        // Byte-by-byte copy: offsets shorter than the match length
        // legitimately overlap (run-length encoding of periodic data).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

/// Compress with the uncompressed size prepended as a little-endian u32
/// (the real crate's convenience framing).
pub fn compress_prepend_size(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 20);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    out.extend_from_slice(&compress(input));
    out
}

/// Decompress a [`compress_prepend_size`] buffer.
pub fn decompress_size_prepended(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let size = input.get(..4).ok_or(DecompressError::Truncated)?;
    let expected = u32::from_le_bytes(size.try_into().expect("4 bytes")) as usize;
    let out = decompress(&input[4..], expected)?;
    if out.len() != expected {
        return Err(DecompressError::Truncated);
    }
    Ok(out)
}

/// The real crate exposes the block API under `block` too.
pub mod block {
    pub use super::{
        compress, compress_prepend_size, decompress, decompress_size_prepended, DecompressError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for len {}", data.len());
        let framed = compress_prepend_size(data);
        assert_eq!(decompress_size_prepended(&framed).unwrap(), data);
    }

    #[test]
    fn roundtrips_edge_sizes() {
        for len in [0usize, 1, 4, 11, 12, 13, 64, 255, 256, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn roundtrips_incompressible() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compresses_runs_and_periodic_data() {
        let runs = vec![0xABu8; 10_000];
        assert!(compress(&runs).len() < 100);
        roundtrip(&runs);
        let periodic: Vec<u8> = (0..8192).map(|i| (i % 16) as u8).collect();
        assert!(compress(&periodic).len() < periodic.len() / 4);
        roundtrip(&periodic);
    }

    #[test]
    fn long_literal_and_match_lsic_paths() {
        // > 255+15 literals then a long run exercises both LSIC loops.
        let mut data: Vec<u8> = (0..300).map(|i| (i * 17 % 251) as u8).collect();
        data.extend(std::iter::repeat_n(0x5A, 600));
        roundtrip(&data);
    }

    #[test]
    fn hostile_input_errors_never_panics() {
        // Truncations of a valid stream.
        let data: Vec<u8> = (0..512).map(|i| (i % 9) as u8).collect();
        let c = compress(&data);
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut], data.len());
        }
        // Bad offset (reaches before output start).
        let bad = [0x01u8, 0x41, 0xFF, 0xFF];
        assert!(decompress(&bad, 64).is_err());
        // Output larger than declared.
        assert!(matches!(
            decompress(&c, data.len() - 1),
            Err(DecompressError::OutputTooLarge { .. })
        ));
        // Zero offset.
        let zero = [0x11u8, 0x41, 0x00, 0x00, 0x00];
        assert!(matches!(
            decompress(&zero, 64),
            Err(DecompressError::BadOffset)
        ));
    }

    #[test]
    fn empty_input() {
        assert_eq!(decompress(&compress(&[]), 0).unwrap(), Vec::<u8>::new());
    }
}
